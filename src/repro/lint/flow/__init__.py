"""Whole-program flow analysis layer (``repro lint --flow``).

Builds a project symbol table and call graph over the analyzed files,
then runs interprocedural passes on top of them:

* :mod:`repro.lint.flow.units` — dB/linear unit inference
  (RL010-RL012);
* :mod:`repro.lint.flow.rngflow` — RNG-determinism taint tracking
  (RL013-RL015);
* :mod:`repro.lint.flow.par` — parallelism-safety and cache-purity
  analysis for the campaign engine (RL020-RL025, ``--par``);
* :mod:`repro.lint.flow.shapes` — numpy shape/dtype inference and
  vectorization-readiness lints (RL030-RL036, ``--vec``);
* :mod:`repro.lint.flow.destime` — discrete-event sim-time and
  event-handler soundness (RL040-RL046, ``--des``);
* :mod:`repro.lint.flow.dims` — physical-dimension and unit-scale
  inference (RL050-RL056, ``--dim``).

Findings use the same :class:`repro.lint.engine.Finding` type as the
per-file rules, honor the same inline ``# replint: disable=...``
suppressions, per-file ignores, and baseline machinery, and merge into
the same CLI output.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import _SUPPRESS_RE, Finding, iter_python_files
from repro.lint.flow.callgraph import build_call_graph
from repro.lint.flow.destime import DesPass
from repro.lint.flow.dims import DimPass
from repro.lint.flow.par import ParPass
from repro.lint.flow.rngflow import RngPass
from repro.lint.flow.shapes import VecPass
from repro.lint.flow.symbols import ModuleInfo, SymbolTable, build_symbol_table
from repro.lint.flow.units import UnitPass

#: Rule catalog for the flow passes (code -> (name, summary)), merged
#: into ``repro lint --list-rules`` alongside the per-file registry.
FLOW_RULES: Dict[str, Tuple[str, str]] = {
    "RL010": (
        "unit-conflicting-argument",
        "call argument or cross-call arithmetic mixes dB and linear domains",
    ),
    "RL011": (
        "unit-conflicting-return",
        "return value conflicts with the unit the function declares",
    ),
    "RL012": (
        "undeclared-unit-api",
        "public phy/mac API with a physical return but no unit suffix/annotation",
    ),
    "RL013": (
        "rng-not-injected",
        "function builds a fixed-seed RNG instead of accepting a Generator",
    ),
    "RL014": (
        "module-global-rng",
        "RNG stored on a module/class global shares one stream process-wide",
    ),
    "RL015": (
        "rng-chain-dropped",
        "seeded generator not forwarded to a callee that accepts one",
    ),
}

#: Rule catalog for the parallelism-safety pass (``--par``).
PAR_RULES: Dict[str, Tuple[str, str]] = {
    "RL020": (
        "unpicklable-pool-callable",
        "lambda/closure/bound method submitted to a process pool",
    ),
    "RL021": (
        "shared-mutable-state-in-cell",
        "campaign cell reads module-level mutable state mutated elsewhere",
    ),
    "RL022": (
        "cache-key-impurity",
        "cell reads env/file/clock input not captured by the spec hash",
    ),
    "RL023": (
        "order-dependent-reduction",
        "shard results merged in completion or unordered-set order",
    ),
    "RL024": (
        "unhandled-broken-pool",
        "Future.result() without a BrokenProcessPool/Exception handler",
    ),
    "RL025": (
        "post-handoff-mutation",
        "result object mutated after handoff to the cache/store layer",
    ),
}

#: Rule catalog for the vectorization-readiness pass (``--vec``).
VEC_RULES: Dict[str, Tuple[str, str]] = {
    "RL030": (
        "scalar-hot-loop",
        "scalar python loop over a vectorizable domain doing float math",
    ),
    "RL031": (
        "broadcast-shape-conflict",
        "broadcast shape mismatch or silent rank promotion",
    ),
    "RL032": (
        "dtype-drift",
        "float64->float32 narrowing or complex->real truncation unannotated",
    ),
    "RL033": (
        "array-growth-in-loop",
        "np.append/concatenate or list-append-then-asarray grows arrays in a loop",
    ),
    "RL034": (
        "python-float-roundtrip",
        "float(...) coerces array elements to python scalars inside a loop",
    ),
    "RL035": (
        "false-vectorization",
        "np.vectorize or scalar-only math.* applied to arrays",
    ),
    "RL036": (
        "missing-shape-contract",
        "public array-returning API without a '# replint: shape=...' contract",
    ),
}

#: Rule catalog for the DES-time soundness pass (``--des``).
DES_RULES: Dict[str, Tuple[str, str]] = {
    "RL040": (
        "schedule-delay-unsound",
        "schedule()/schedule_at() delay may be negative, NaN, or non-finite",
    ),
    "RL041": (
        "sim-time-accumulation-drift",
        "float sim-time accumulated in a loop (t += dt) instead of t0 + k*dt",
    ),
    "RL042": (
        "stale-now-capture",
        "sim.now captured into a variable read inside a later-scheduled callback",
    ),
    "RL043": (
        "impure-event-handler",
        "wall-clock/global-RNG/env read reachable from event-handler context",
    ),
    "RL044": (
        "missing-cache-invalidation",
        "pose/beam write not followed by coupling-cache invalidation before SNR eval",
    ),
    "RL045": (
        "zero-delay-self-reschedule",
        "handler reschedules itself at delay 0 (same-timestamp event storm)",
    ),
    "RL046": (
        "sim-time-float-equality",
        "float ==/!= on sim-time values or event tuple without counter tiebreak",
    ),
}

#: Rule catalog for the physical-dimension pass (``--dim``).
DIM_RULES: Dict[str, Tuple[str, str]] = {
    "RL050": (
        "trig-on-degrees",
        "trig on a degree-scaled angle, or degree/radian mixing",
    ),
    "RL051": (
        "cross-dimension-arithmetic",
        "arithmetic/comparison mixes physical dimensions (m + s, Hz vs GHz)",
    ),
    "RL052": (
        "unit-scale-boundary-mismatch",
        "km/h into an m/s parameter, ms into a seconds schedule delay",
    ),
    "RL053": (
        "unit-ambiguous-api",
        "public phy/geometry/mobility parameter with no unit suffix/annotation",
    ),
    "RL054": (
        "wavelength-frequency-confusion",
        "c*f where wavelength is c/f, or a frequency used as a wavelength",
    ),
    "RL055": (
        "angle-wraparound-compare",
        "comparison on a raw angle difference without wrap normalization",
    ),
    "RL056": (
        "redundant-unit-conversion",
        "double/cancelling conversion (deg2rad(radians(x)), *3.6 then /3.6)",
    ),
}

#: Pass names accepted by :func:`analyze_files`, in execution order.
PASS_NAMES = ("units", "rng", "par", "vec", "des", "dim")


@dataclass
class FlowStats:
    """Shape of the ``flow`` section in ``repro lint --json`` output."""

    files: int = 0
    modules: int = 0
    functions: int = 0
    call_edges: int = 0
    findings: int = 0
    suppressed: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)
    passes: Tuple[str, ...] = ("units", "rng")

    def to_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "modules": self.modules,
            "functions": self.functions,
            "call_edges": self.call_edges,
            "findings": self.findings,
            "suppressed": self.suppressed,
            "by_rule": dict(sorted(self.by_rule.items())),
            "passes": list(self.passes),
        }


class Reporter:
    """Finding sink applying config/suppression filtering for the passes."""

    def __init__(self, config: LintConfig):
        self.config = config
        self.findings: List[Finding] = []
        self.suppressed_count = 0
        self._suppressions: Dict[str, Dict[int, frozenset]] = {}

    def _module_suppressions(self, module: ModuleInfo) -> Dict[int, frozenset]:
        cached = self._suppressions.get(module.rel_path)
        if cached is None:
            cached = {}
            for lineno, text in enumerate(module.lines, start=1):
                match = _SUPPRESS_RE.search(text)
                if match:
                    cached[lineno] = frozenset(
                        c.strip().upper()
                        for c in match.group(1).split(",")
                        if c.strip()
                    )
            self._suppressions[module.rel_path] = cached
        return cached

    def report(
        self,
        module: ModuleInfo,
        node: ast.AST,
        code: str,
        message: str,
        context: str = "",
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if code in self.config.disable:
            return
        if self.config.is_ignored(module.rel_path, code):
            return
        codes = self._module_suppressions(module).get(lineno)
        if codes is not None and (code.upper() in codes or "ALL" in codes):
            self.suppressed_count += 1
            return
        line_text = (
            module.lines[lineno - 1].strip() if 1 <= lineno <= len(module.lines) else ""
        )
        self.findings.append(
            Finding(
                path=module.rel_path,
                line=lineno,
                col=col + 1,
                code=code,
                message=message,
                line_text=line_text,
                context=context,
            )
        )


def analyze_files(
    files: List[Tuple[str, str]],
    config: Optional[LintConfig] = None,
    passes: Tuple[str, ...] = ("units", "rng"),
) -> Tuple[List[Finding], FlowStats]:
    """Run the selected flow passes over ``(rel_path, source)`` pairs."""
    config = config if config is not None else LintConfig()
    unknown = set(passes) - set(PASS_NAMES)
    if unknown:
        raise ValueError(f"unknown flow pass(es): {sorted(unknown)}")
    table: SymbolTable = build_symbol_table(files)
    graph = build_call_graph(table)
    reporter = Reporter(config)
    if "units" in passes:
        UnitPass(table, graph, config, reporter).run()
    if "rng" in passes:
        RngPass(table, graph, config, reporter).run()
    if "par" in passes:
        ParPass(table, graph, config, reporter).run()
    if "vec" in passes:
        VecPass(table, graph, config, reporter).run()
    if "des" in passes:
        DesPass(table, graph, config, reporter).run()
    if "dim" in passes:
        DimPass(table, graph, config, reporter).run()
    findings = sorted(reporter.findings, key=Finding.sort_key)
    stats = FlowStats(
        files=len(files),
        modules=len(table.modules),
        functions=len(table.functions),
        call_edges=graph.edge_count,
        findings=len(findings),
        suppressed=reporter.suppressed_count,
        passes=tuple(name for name in PASS_NAMES if name in passes),
    )
    for finding in findings:
        stats.by_rule[finding.code] = stats.by_rule.get(finding.code, 0) + 1
    return findings, stats


def analyze_paths(
    paths: Iterable[pathlib.Path],
    root: pathlib.Path,
    config: LintConfig,
    passes: Tuple[str, ...] = ("units", "rng"),
) -> Tuple[List[Finding], FlowStats]:
    """Run the selected flow passes over python files under ``paths``."""
    files: List[Tuple[str, str]] = []
    for path in iter_python_files(list(paths), config):
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = pathlib.Path(path.name)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue  # the per-file engine reports unreadable files
        files.append((rel.as_posix(), source))
    return analyze_files(files, config, passes=passes)


__all__ = [
    "DES_RULES",
    "DIM_RULES",
    "FLOW_RULES",
    "PAR_RULES",
    "VEC_RULES",
    "PASS_NAMES",
    "FlowStats",
    "Reporter",
    "analyze_files",
    "analyze_paths",
]
