"""End-to-end tests for ``python -m repro campaign`` and the migrated
sweeps — including the acceptance scenario: the beam-pattern semicircle
sweep runs across 2 workers, a second invocation is served >= 90% from
cache, and the manifest reports counts, cache hits, failures, and
wall-clock.
"""

import json

import numpy as np
import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.telemetry import read_manifest
from repro.cli import main


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "cache"


def run_beam_campaign(cache_dir, out_dir, workers=2):
    return main(
        [
            "campaign",
            "run",
            "beam-patterns",
            "--workers",
            str(workers),
            "--set",
            "positions=16",
            "--cache-dir",
            str(cache_dir),
            "--output",
            str(out_dir),
        ]
    )


class TestCampaignCli:
    def test_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "beam-patterns" in out
        assert "range-vs-distance" in out

    def test_unknown_campaign_raises(self):
        with pytest.raises(KeyError):
            main(["campaign", "run", "no-such-campaign"])

    def test_beam_patterns_two_workers_then_cached(
        self, cache_dir, tmp_path, capsys
    ):
        """The acceptance criteria of the campaign subsystem."""
        first_out = tmp_path / "run1"
        assert run_beam_campaign(cache_dir, first_out, workers=2) == 0
        manifest = read_manifest(first_out / "manifest.json")
        assert manifest["workers"] == 2
        assert manifest["scenarios"]["total"] == 9
        assert manifest["scenarios"]["completed"] == 9
        assert manifest["scenarios"]["cached"] == 0
        assert manifest["scenarios"]["failed"] == 0
        assert manifest["failures"] == []
        assert manifest["timing"]["wall_clock_s"] > 0
        assert sum(manifest["shard_sizes"]) == 9

        # Second invocation: served >= 90% from cache.
        second_out = tmp_path / "run2"
        assert run_beam_campaign(cache_dir, second_out, workers=2) == 0
        manifest2 = read_manifest(second_out / "manifest.json")
        assert manifest2["scenarios"]["cached"] >= 0.9 * manifest2["scenarios"]["total"]
        assert manifest2["cache_hit_ratio"] >= 0.9

        # Bit-for-bit: cached results equal the computed ones.
        rows1 = [
            json.loads(line)
            for line in (first_out / "results.jsonl").read_text().splitlines()
        ]
        rows2 = [
            json.loads(line)
            for line in (second_out / "results.jsonl").read_text().splitlines()
        ]
        assert [r["result"] for r in rows1] == [r["result"] for r in rows2]

        out = capsys.readouterr().out
        assert "cached" in out
        assert "manifest" in out

    def test_status_reports_cache_coverage(self, cache_dir, tmp_path, capsys):
        args = ["--set", "positions=16", "--cache-dir", str(cache_dir)]
        assert main(["campaign", "status", "beam-patterns", *args]) == 0
        assert "0/9 cells cached" in capsys.readouterr().out
        run_beam_campaign(cache_dir, tmp_path / "run", workers=1)
        capsys.readouterr()
        assert main(["campaign", "status", "beam-patterns", *args]) == 0
        assert "9/9 cells cached" in capsys.readouterr().out

    def test_seed_option_rebases_seeds(self, cache_dir, tmp_path, capsys):
        rc = main(
            [
                "campaign",
                "run",
                "beam-patterns",
                "--seed",
                "100",
                "--set",
                "positions=16",
                "--set",
                "setup=laptop",
                "--workers",
                "1",
                "--cache-dir",
                str(cache_dir),
                "--output",
                str(tmp_path / "seeded"),
            ]
        )
        assert rc == 0
        rows = [
            json.loads(line)
            for line in (tmp_path / "seeded" / "results.jsonl").read_text().splitlines()
        ]
        assert sorted({r["seed"] for r in rows}) == [100, 101, 102]
        assert {r["params"]["setup"] for r in rows} == {"laptop"}


class TestObsCli:
    @pytest.fixture()
    def traced_run(self, cache_dir, tmp_path):
        out = tmp_path / "traced"
        rc = main(
            [
                "campaign",
                "run",
                "beam-patterns",
                "--workers",
                "2",
                "--set",
                "positions=8",
                "--no-cache",
                "--trace",
                "--output",
                str(out),
            ]
        )
        assert rc == 0
        return out

    def test_trace_flag_produces_manifest_and_trace(self, capsys, traced_run):
        manifest = read_manifest(traced_run / "manifest.json")
        assert manifest["schema_version"] == 3
        assert manifest["spans_file"] == "trace.json"
        assert (traced_run / "trace.json").is_file()
        counters = manifest["metrics"]["counters"]
        # Runner-level counters are always present on a traced run even
        # if the campaign's cells hit no instrumented hot paths.
        assert counters["campaign.cells.total"] == manifest["scenarios"]["total"]
        assert counters["campaign.cells.completed"] == counters["campaign.cells.total"]
        out = capsys.readouterr().out
        assert "tracing on" in out
        assert "trace" in out

    def test_obs_report(self, traced_run, capsys):
        assert main(["obs", "report", str(traced_run)]) == 0
        out = capsys.readouterr().out
        assert "campaign beam-patterns" in out
        assert "metrics:" in out
        assert "spans:" in out

    def test_obs_report_json_byte_deterministic(self, traced_run, capsys):
        assert main(["obs", "report", str(traced_run), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["obs", "report", str(traced_run), "--json"]) == 0
        assert capsys.readouterr().out == first
        doc = json.loads(first)
        assert doc["campaign"] == "beam-patterns"
        assert doc["metrics"]["counters"]["campaign.cells.total"] == 9
        assert doc["dropped_spans"] == 0

    def test_obs_export_check(self, traced_run, capsys):
        assert main(["obs", "export", str(traced_run), "--check"]) == 0
        assert "valid trace-event JSON" in capsys.readouterr().out

    def test_obs_export_copies_to_output(self, traced_run, tmp_path, capsys):
        dest = tmp_path / "out" / "perfetto.json"
        assert main(["obs", "export", str(traced_run), "-o", str(dest)]) == 0
        assert dest.is_file()
        assert json.loads(dest.read_text())["traceEvents"]
        assert "perfetto" in capsys.readouterr().out

    def test_missing_run_dir_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["obs", "report", str(missing)]) == 2
        assert main(["obs", "export", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "no manifest.json" in err

    def test_export_without_trace_exits_2(self, cache_dir, tmp_path, capsys):
        out = tmp_path / "untraced"
        assert run_beam_campaign(cache_dir, out, workers=1) == 0
        assert main(["obs", "export", str(out)]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_report_works_without_trace(self, cache_dir, tmp_path, capsys):
        out = tmp_path / "untraced"
        assert run_beam_campaign(cache_dir, out, workers=1) == 0
        assert main(["obs", "report", str(out)]) == 0
        report = capsys.readouterr().out
        assert "no metrics recorded" in report
        assert "no trace.json" in report


class TestMigratedSweeps:
    def test_pattern_report_matches_engine_output(self, tmp_path):
        from repro.experiments.beam_patterns import (
            directional_pattern_report_campaign,
        )

        cache = ResultCache(tmp_path / "cache")
        serial = directional_pattern_report_campaign(positions=16, workers=1)
        parallel = directional_pattern_report_campaign(
            positions=16, workers=2, cache=cache
        )
        assert serial == parallel
        # And the cache now short-circuits a third run.
        cached = directional_pattern_report_campaign(
            positions=16, workers=1, cache=cache
        )
        assert cached == serial
        labels = [row.label for row in serial]
        assert labels == ["laptop", "dock aligned", "dock rotated 70"]

    def test_range_campaign_matches_serial_and_caches(self, tmp_path):
        from repro.experiments.range_vs_distance import (
            cliff_statistics,
            throughput_vs_distance_campaign,
        )

        cache = ResultCache(tmp_path / "cache")
        distances = tuple(float(d) for d in range(4, 20, 2))
        serial_runs, serial_avg = throughput_vs_distance_campaign(
            distances_m=distances, runs=6, seed=3, workers=1
        )
        parallel_runs, parallel_avg = throughput_vs_distance_campaign(
            distances_m=distances, runs=6, seed=3, workers=2, cache=cache
        )
        assert np.array_equal(serial_avg, parallel_avg)
        for a, b in zip(serial_runs, parallel_runs):
            assert np.array_equal(a.throughput_bps, b.throughput_bps)
            assert a.cliff_m == b.cliff_m
        # Runs share an offset per seed: each run has one cliff beyond
        # which the link stays dead.
        lo, hi = cliff_statistics(serial_runs)
        assert 4.0 <= lo <= hi <= 20.0
        # Cached re-run computes nothing new.
        rerun, rerun_avg = throughput_vs_distance_campaign(
            distances_m=distances, runs=6, seed=3, workers=1, cache=cache
        )
        assert np.array_equal(rerun_avg, serial_avg)
