"""Mobility: trajectories, beam re-training under motion, handovers.

The paper's "bane" — 60 GHz links live and die by beam alignment — is
sharpest when the client itself moves.  This package adds that missing
axis: pure deterministic trajectory models sampled on the DES clock
(:mod:`~repro.mobility.trajectory`), a :class:`MobileStation` adapter
that moves a device between MAC events and re-trains its beams through
the real sector-sweep machinery with airtime charged to the medium
(:mod:`~repro.mobility.station`), and multi-AP handover policies with
contact-time accounting (:mod:`~repro.mobility.handover`).
"""

from repro.mobility.handover import (
    SERVING_FLOOR_SNR_DB,
    HandoverEvent,
    HandoverPolicy,
    HandoverStats,
    HysteresisHandover,
    MultiAPController,
    StickyStrongest,
    WiFiAssistedSteering,
    predicted_snr_db,
)
from repro.mobility.station import (
    RETRAIN_AIRTIME_BUCKETS_MS,
    MobileStation,
    MobilityStats,
    RetrainConfig,
    sync_station,
)
from repro.mobility.trajectory import (
    KMH_PER_MPS,
    PEDESTRIAN_SPEED_MPS,
    LinearTrajectory,
    Trajectory,
    VehiclePass,
    WaypointWalker,
    kmh_to_mps,
    mps_to_kmh,
)

__all__ = [
    "KMH_PER_MPS",
    "PEDESTRIAN_SPEED_MPS",
    "RETRAIN_AIRTIME_BUCKETS_MS",
    "SERVING_FLOOR_SNR_DB",
    "HandoverEvent",
    "HandoverPolicy",
    "HandoverStats",
    "HysteresisHandover",
    "LinearTrajectory",
    "MobileStation",
    "MobilityStats",
    "MultiAPController",
    "RetrainConfig",
    "StickyStrongest",
    "Trajectory",
    "VehiclePass",
    "WaypointWalker",
    "WiFiAssistedSteering",
    "kmh_to_mps",
    "mps_to_kmh",
    "predicted_snr_db",
    "sync_station",
]
