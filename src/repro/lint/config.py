"""Configuration for the domain-aware linter.

Settings live in ``pyproject.toml`` under ``[tool.repro-lint]``::

    [tool.repro-lint]
    disable = []                       # rule codes switched off globally
    baseline = "lint-baseline.json"    # committed baseline location
    exclude = ["*/build/*"]            # path globs never scanned
    physics-packages = ["repro.phy"]   # where RL005 applies
    wall-clock-packages = ["repro.mac"]  # where RL002 applies
    rng-entry-points = []              # modules exempt from RL001
    dbmath-modules = ["repro.analysis.dbmath"]  # RL003's own home
    flow-unit-packages = ["repro.phy", "repro.mac"]  # RL012 scope
    flow-rng-packages = ["repro.phy", "repro.mac"]   # RL013/RL015 scope
    par-packages = ["repro.campaign"]  # RL023-RL025 scope (--par)
    clock-modules = ["repro.obs.clock"]  # sanctioned clock shims
    vec-packages = ["repro.phy"]       # RL030-RL036 scope (--vec)
    des-packages = ["repro.mac"]       # RL040-RL046 scope (--des)
    dim-packages = ["repro.phy"]       # RL053/RL055 scope (--dim)

    [tool.repro-lint.per-file-ignores]
    "src/repro/campaign/telemetry.py" = ["RL002"]

TOML parsing uses the stdlib ``tomllib`` (Python 3.11+); on older
interpreters without a toml parser the defaults below apply and a
warning is printed, so the linter degrades rather than crashes.
"""

from __future__ import annotations

import fnmatch
import pathlib
import sys
from dataclasses import dataclass
from typing import Tuple

try:  # pragma: no cover - exercised implicitly on py3.11+
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

#: Packages whose code must read time from the DES clock, not the wall
#: clock (RL002 scope).
DEFAULT_WALL_CLOCK_PACKAGES = (
    "repro.mac",
    "repro.phy",
    "repro.core",
    "repro.experiments",
    "repro.devices",
    "repro.campaign",
    "repro.obs",
)

#: The sanctioned clock shims — the only modules allowed to read the
#: wall/monotonic clock.  RL002 skips them entirely and the --par
#: cache-purity pass (RL022) treats calls into them as pure, so every
#: *other* clock read in the tree still fires.
DEFAULT_CLOCK_MODULES = ("repro.obs.clock",)

#: Packages doing link-budget / geometry math where float equality
#: comparisons are suspect (RL005 scope).
DEFAULT_PHYSICS_PACKAGES = (
    "repro.phy",
    "repro.core",
    "repro.geometry",
    "repro.analysis",
)

#: Modules allowed to contain inline dB conversions (the helpers
#: themselves).
DEFAULT_DBMATH_MODULES = ("repro.analysis.dbmath",)

#: Packages whose *public* API must declare units by suffix or
#: ``# replint: unit=...`` annotation (RL012 scope).
DEFAULT_FLOW_UNIT_PACKAGES = ("repro.phy", "repro.mac")

#: Packages whose functions are checked for RNG injection and dropped
#: seed chains (RL013/RL015 scope).
DEFAULT_FLOW_RNG_PACKAGES = (
    "repro.phy",
    "repro.mac",
    "repro.core",
    "repro.experiments",
    "repro.devices",
    "repro.campaign",
)

#: Packages that orchestrate process pools and define campaign cells;
#: RL023-RL025 (ordered reduction, Future handling, post-handoff
#: mutation) apply here.  RL020-RL022 follow cells project-wide.
DEFAULT_PAR_PACKAGES = ("repro.campaign", "repro.experiments")

#: Packages holding the numpy kernels targeted by the vectorization
#: arc; RL030-RL036 (shape/dtype flow, loop-growth, shape contracts)
#: apply here (``--vec``).
DEFAULT_VEC_PACKAGES = ("repro.phy", "repro.core", "repro.experiments")

#: Packages that schedule simulator events and define event handlers;
#: RL040-RL046 (delay soundness, timestamp drift, stale-now capture,
#: handler purity, cache-invalidation typestate) apply here (``--des``).
DEFAULT_DES_PACKAGES = ("repro.mac", "repro.mobility", "repro.experiments")

#: Packages whose geometry/mobility math must carry explicit unit
#: scales; RL053 (unit-ambiguous public API) and RL055 (angle
#: wraparound) apply here (``--dim``).  RL050-RL052/RL054/RL056 run
#: tree-wide like the dB pass.
DEFAULT_DIM_PACKAGES = ("repro.phy", "repro.geometry", "repro.mobility")


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration."""

    disable: frozenset = frozenset()
    per_file_ignores: Tuple[Tuple[str, frozenset], ...] = ()
    baseline: str = "lint-baseline.json"
    exclude: Tuple[str, ...] = ()
    wall_clock_packages: Tuple[str, ...] = DEFAULT_WALL_CLOCK_PACKAGES
    physics_packages: Tuple[str, ...] = DEFAULT_PHYSICS_PACKAGES
    rng_entry_points: Tuple[str, ...] = ()
    dbmath_modules: Tuple[str, ...] = DEFAULT_DBMATH_MODULES
    flow_unit_packages: Tuple[str, ...] = DEFAULT_FLOW_UNIT_PACKAGES
    flow_rng_packages: Tuple[str, ...] = DEFAULT_FLOW_RNG_PACKAGES
    par_packages: Tuple[str, ...] = DEFAULT_PAR_PACKAGES
    clock_modules: Tuple[str, ...] = DEFAULT_CLOCK_MODULES
    vec_packages: Tuple[str, ...] = DEFAULT_VEC_PACKAGES
    des_packages: Tuple[str, ...] = DEFAULT_DES_PACKAGES
    dim_packages: Tuple[str, ...] = DEFAULT_DIM_PACKAGES

    def is_ignored(self, rel_path: str, code: str) -> bool:
        """True if ``code`` is switched off for ``rel_path`` by config."""
        for pattern, codes in self.per_file_ignores:
            if code in codes and (
                fnmatch.fnmatch(rel_path, pattern)
                or fnmatch.fnmatch(rel_path, f"*/{pattern}")
            ):
                return True
        return False


def module_in(module: str, packages: Tuple[str, ...]) -> bool:
    """True if a dotted module name falls under any listed package."""
    return any(module == pkg or module.startswith(pkg + ".") for pkg in packages)


def find_root(start: pathlib.Path) -> pathlib.Path:
    """Walk up from ``start`` to the nearest directory with a pyproject."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def _codes(raw: object) -> frozenset:
    if not isinstance(raw, (list, tuple)):
        return frozenset()
    return frozenset(str(c).upper() for c in raw)


def _strings(raw: object, default: Tuple[str, ...]) -> Tuple[str, ...]:
    if not isinstance(raw, (list, tuple)):
        return default
    return tuple(str(s) for s in raw)


def load_config(root: pathlib.Path) -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``root/pyproject.toml``."""
    pyproject = root / "pyproject.toml"
    if _toml is None:  # pragma: no cover - py<3.11 without tomli
        print(
            "repro lint: no TOML parser available; using default config",
            file=sys.stderr,
        )
        return LintConfig()
    if not pyproject.is_file():
        return LintConfig()
    try:
        with open(pyproject, "rb") as fh:
            data = _toml.load(fh)
    except (OSError, _toml.TOMLDecodeError) as exc:  # type: ignore[union-attr]
        print(f"repro lint: could not read {pyproject}: {exc}", file=sys.stderr)
        return LintConfig()
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return LintConfig()
    ignores_raw = section.get("per-file-ignores", {})
    ignores: Tuple[Tuple[str, frozenset], ...] = ()
    if isinstance(ignores_raw, dict):
        ignores = tuple(
            (str(pattern), _codes(codes)) for pattern, codes in sorted(ignores_raw.items())
        )
    return LintConfig(
        disable=_codes(section.get("disable", [])),
        per_file_ignores=ignores,
        baseline=str(section.get("baseline", "lint-baseline.json")),
        exclude=_strings(section.get("exclude", []), ()),
        wall_clock_packages=_strings(
            section.get("wall-clock-packages"), DEFAULT_WALL_CLOCK_PACKAGES
        ),
        physics_packages=_strings(
            section.get("physics-packages"), DEFAULT_PHYSICS_PACKAGES
        ),
        rng_entry_points=_strings(section.get("rng-entry-points"), ()),
        dbmath_modules=_strings(section.get("dbmath-modules"), DEFAULT_DBMATH_MODULES),
        flow_unit_packages=_strings(
            section.get("flow-unit-packages"), DEFAULT_FLOW_UNIT_PACKAGES
        ),
        flow_rng_packages=_strings(
            section.get("flow-rng-packages"), DEFAULT_FLOW_RNG_PACKAGES
        ),
        par_packages=_strings(section.get("par-packages"), DEFAULT_PAR_PACKAGES),
        clock_modules=_strings(section.get("clock-modules"), DEFAULT_CLOCK_MODULES),
        vec_packages=_strings(section.get("vec-packages"), DEFAULT_VEC_PACKAGES),
        des_packages=_strings(section.get("des-packages"), DEFAULT_DES_PACKAGES),
        dim_packages=_strings(section.get("dim-packages"), DEFAULT_DIM_PACKAGES),
    )
