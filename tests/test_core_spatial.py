"""Unit tests for the spatial-reuse planning tools."""

import math

import numpy as np
import pytest

from repro.core.spatial import (
    Link,
    conflict_graph,
    coverage_map,
    greedy_schedule,
    link_margins,
    recommend_mac_behavior,
)
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.geometry.vec import Vec2
from repro.mac.coupling import DeviceCoupling
from repro.phy.channel import LinkBudget


def make_link(name: str, dock_pos: Vec2, laptop_pos: Vec2, seed: int) -> Link:
    dock = make_d5000_dock(name=f"dock-{name}", position=dock_pos, unit_seed=seed)
    laptop = make_e7440_laptop(
        name=f"laptop-{name}", position=laptop_pos, unit_seed=seed + 100
    )
    dock.orientation_rad = (laptop_pos - dock_pos).angle()
    laptop.orientation_rad = (dock_pos - laptop_pos).angle()
    dock.train_toward(laptop.position)
    laptop.train_toward(dock.position)
    return Link(tx=laptop, rx=dock)


def coupling_for(links):
    devices = {}
    for link in links:
        devices[link.tx.name] = link.tx
        devices[link.rx.name] = link.rx
    return DeviceCoupling(devices, budget=LinkBudget())


class TestMargins:
    def test_margin_rows_cover_all_pairs(self):
        links = [
            make_link("a", Vec2(0, 0), Vec2(3, 0), seed=1),
            make_link("b", Vec2(0, 6), Vec2(3, 6), seed=2),
        ]
        rows = link_margins(links, coupling_for(links))
        assert len(rows) == 2  # one aggressor per victim with two links

    def test_far_parallel_links_have_margin(self):
        links = [
            make_link("a", Vec2(0, 0), Vec2(3, 0), seed=1),
            make_link("b", Vec2(0, 8), Vec2(3, 8), seed=2),
        ]
        rows = link_margins(links, coupling_for(links))
        assert all(r.margin_db > 20.0 for r in rows)

    def test_collinear_links_conflict(self):
        # Link B fires straight down link A's corridor.
        links = [
            make_link("a", Vec2(0, 0), Vec2(3, 0), seed=1),
            make_link("b", Vec2(5, 0), Vec2(8, 0), seed=2),
        ]
        rows = link_margins(links, coupling_for(links))
        assert any(r.margin_db < 20.0 for r in rows)


class TestConflictGraph:
    def test_no_edges_for_isolated_links(self):
        links = [
            make_link("a", Vec2(0, 0), Vec2(3, 0), seed=1),
            make_link("b", Vec2(0, 9), Vec2(3, 9), seed=2),
        ]
        assert conflict_graph(links, coupling_for(links)) == []

    def test_edge_for_collinear_links(self):
        links = [
            make_link("a", Vec2(0, 0), Vec2(3, 0), seed=1),
            make_link("b", Vec2(5, 0), Vec2(8, 0), seed=2),
        ]
        edges = conflict_graph(links, coupling_for(links))
        assert len(edges) == 1

    def test_schedule_groups_conflicting_links_apart(self):
        links = [
            make_link("a", Vec2(0, 0), Vec2(3, 0), seed=1),
            make_link("b", Vec2(5, 0), Vec2(8, 0), seed=2),
            make_link("c", Vec2(0, 9), Vec2(3, 9), seed=3),
        ]
        groups = greedy_schedule(links, coupling_for(links))
        # a and b conflict -> different groups; c coexists with one.
        locate = {name: i for i, group in enumerate(groups) for name in group}
        assert locate["laptop-a->dock-a"] != locate["laptop-b->dock-b"]
        assert len(groups) == 2

    def test_schedule_single_group_when_clean(self):
        links = [
            make_link("a", Vec2(0, 0), Vec2(3, 0), seed=1),
            make_link("b", Vec2(0, 9), Vec2(3, 9), seed=2),
        ]
        groups = greedy_schedule(links, coupling_for(links))
        assert len(groups) == 1


class TestCoverageMap:
    def test_main_lobe_direction_strongest(self):
        dock = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
        dock.train_toward(Vec2(4, 0))
        xs, ys, snr = coverage_map(
            dock, LinkBudget(), bounds=(-4.0, -4.0, 4.0, 4.0), resolution_m=1.0
        )
        ahead = snr[np.searchsorted(ys, 0.0), np.searchsorted(xs, 3.0)]
        behind = snr[np.searchsorted(ys, 0.0), np.searchsorted(xs, -3.0)]
        assert ahead > behind + 5.0

    def test_device_cell_is_inf(self):
        dock = make_d5000_dock(position=Vec2(0, 0))
        xs, ys, snr = coverage_map(
            dock, LinkBudget(), bounds=(-1.0, -1.0, 1.0, 1.0), resolution_m=1.0
        )
        assert math.isinf(snr[np.searchsorted(ys, 0.0), np.searchsorted(xs, 0.0)])

    def test_invalid_bounds(self):
        dock = make_d5000_dock()
        with pytest.raises(ValueError):
            coverage_map(dock, LinkBudget(), bounds=(0, 0, 0, 1))

    def test_traced_map_blocked_region(self):
        from repro.geometry.materials import get_material
        from repro.geometry.room import Room
        from repro.geometry.segments import Segment
        from repro.phy.raytracing import RayTracer

        wall = Segment(Vec2(2.0, -5.0), Vec2(2.0, 5.0), get_material("metal"))
        tracer = RayTracer(Room([wall]), max_order=0)
        dock = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
        xs, ys, snr = coverage_map(
            dock, LinkBudget(), bounds=(-1.0, -1.0, 5.0, 1.0),
            resolution_m=1.0, tracer=tracer,
        )
        beyond = snr[np.searchsorted(ys, 0.0), np.searchsorted(xs, 4.0)]
        assert math.isinf(beyond) and beyond < 0  # -inf: no path


class TestMacRecommendation:
    def test_consumer_device_gets_rts_cts(self):
        dock = make_d5000_dock()
        dock.train_toward(Vec2(2, 0))
        assert recommend_mac_behavior(dock) == "rts-cts"

    def test_boundary_beam_gets_conservative(self):
        dock = make_d5000_dock()
        dock.train_toward(Vec2.from_polar(2.0, math.radians(70)))
        assert recommend_mac_behavior(dock) == "conservative"

    def test_clean_array_gets_aggressive_reuse(self):
        import numpy as np

        from repro.devices.base import RadioDevice
        from repro.phy.antenna import PhaseShifterModel, UniformRectangularArray
        from repro.phy.codebook import Codebook

        clean = UniformRectangularArray(
            4, 16, 60.48e9,
            phase_shifter=PhaseShifterModel(None),
            amplitude_error_std_db=0.0,
            phase_error_std_rad=0.0,
            scatter_level_db=-300.0,
            rng=np.random.default_rng(0),
        )
        codebook = Codebook.build(clean, num_directional=8, num_quasi_omni=2)
        device = RadioDevice("lab-grade", clean, codebook)
        device.train_toward(Vec2(2, 0))
        assert recommend_mac_behavior(device) == "aggressive-reuse"
