"""Ablation: phase-shifter resolution vs side-lobe level.

The cost-effective design the paper blames for strong side lobes:
consumer arrays use coarse (2-bit) phase shifters.  This ablation
sweeps the shifter resolution with all other imperfections removed to
isolate the quantization contribution.
"""

import math

import numpy as np

from repro.phy.antenna import PhaseShifterModel, UniformRectangularArray

FREQ = 60.48e9
STEER = math.radians(37.0)  # off-grid angle where quantization bites


def sweep_bits():
    rows = []
    for bits in (1, 2, 3, 4, None):
        arr = UniformRectangularArray(
            2, 8, FREQ,
            phase_shifter=PhaseShifterModel(bits=bits),
            amplitude_error_std_db=0.0,
            phase_error_std_rad=0.0,
            scatter_level_db=-300.0,
            rng=np.random.default_rng(0),
        )
        p = arr.steered_pattern(STEER)
        rows.append((
            "ideal" if bits is None else f"{bits}-bit",
            p.side_lobe_level_db(),
            p.peak_gain_dbi(),
        ))
    return rows


def test_phase_quantization_vs_side_lobes(benchmark, report):
    rows = benchmark.pedantic(sweep_bits, rounds=1, iterations=1)
    report.add("Ablation: phase shifter resolution (steered 37 deg, no other errors)")
    report.add(f"{'shifter':>8} {'side lobes dB':>14} {'peak dBi':>9}")
    for label, sll, peak in rows:
        report.add(f"{label:>8} {sll:14.1f} {peak:9.1f}")

    slls = [sll for _, sll, _ in rows]
    # Coarser phases -> stronger side lobes, monotone within tolerance.
    assert slls[0] > slls[-1] + 3.0  # 1-bit much worse than ideal
    assert slls[1] > slls[-1] + 1.0  # 2-bit worse than ideal
    # Finer control never hurts much (individual steps can go either
    # way by a couple of dB - quantization is a lottery per angle).
    for coarse, fine in zip(slls, slls[1:]):
        assert fine <= coarse + 2.5
