"""Ablation: sector-level-sweep training vs an exhaustive oracle.

Codebook beam steering (Section 2) trades optimality for training
cost: an SLS measures each side against a quasi-omni listener instead
of testing all sector pairs.  This ablation quantifies both sides of
the trade at several link distances: protocol airtime vs SNR left on
the table.
"""

import math

import numpy as np

from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.geometry.vec import Vec2
from repro.mac.beam_training import SectorSweepTrainer


def run_sweep():
    rows = []
    for distance in (1.0, 3.0, 6.0, 10.0):
        dock = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
        laptop = make_e7440_laptop(
            position=Vec2(distance, 0), orientation_rad=math.pi
        )
        trainer = SectorSweepTrainer(rng=np.random.default_rng(3))
        result = trainer.train(dock, laptop)
        oracle = trainer.oracle_snr_db(dock, laptop)
        rows.append(
            (
                distance,
                result.success,
                result.link_snr_db if result.success else float("nan"),
                oracle,
                result.duration_s,
                result.initiator_sweep.heard,
            )
        )
    return rows


def test_sls_vs_oracle(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report.add("Ablation: SLS training vs exhaustive oracle (64 sector pairs)")
    report.add(
        f"{'d (m)':>6} {'SLS SNR dB':>11} {'oracle dB':>10} {'gap dB':>7} "
        f"{'airtime ms':>11} {'sectors heard':>14}"
    )
    for d, ok, sls, oracle, duration, heard in rows:
        gap = oracle - sls if ok else float("nan")
        report.add(
            f"{d:6.1f} {sls:11.1f} {oracle:10.1f} {gap:7.1f} "
            f"{duration * 1e3:11.2f} {heard:14d}"
        )
    report.add("")
    report.add(
        "the 64-sector SLS costs ~1 ms of airtime (one D5000 beacon "
        "interval) and stays within a few dB of the oracle"
    )

    for d, ok, sls, oracle, duration, heard in rows:
        assert ok, f"training failed at {d} m"
        assert oracle - sls < 5.0
        assert 0.5e-3 < duration < 2e-3
    # Farther links hear fewer sectors through the quasi-omni listener.
    assert rows[-1][5] <= rows[0][5]
