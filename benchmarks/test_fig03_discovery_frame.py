"""Figure 3: the D5000 device discovery frame.

Paper: a ~1 ms frame of 32 sub-elements, each with relatively constant
amplitude, each transmitted over a different quasi-omni pattern.  The
benchmark captures one discovery frame, splits it, and reports the
per-sub-element amplitudes (the staircase of Figure 3).
"""


from repro.core.discovery import is_discovery_frame, subelement_amplitudes, subelement_variation_db
from repro.core.frames import FrameDetector
from repro.experiments.frame_level import capture_with_vubiq, run_unassociated_dock
from repro.mac.frames import DISCOVERY_SUBELEMENTS, FrameKind


def capture_discovery_frame():
    setup = run_unassociated_dock(duration_s=0.25)
    disc = [r for r in setup.medium.history if r.kind == FrameKind.DISCOVERY][0]
    trace = capture_with_vubiq(
        setup, disc.start_s - 50e-6, disc.duration_s + 100e-6, behind_dock=False
    )
    # Sub-element amplitudes span >20 dB (different quasi-omni
    # patterns), so detection needs a low threshold and a merge gap
    # wide enough to bridge runs of weak sub-elements.
    frames = FrameDetector(threshold_v=0.02, merge_gap_s=90e-6).detect(trace)
    frame = max(frames, key=lambda f: f.duration_s)
    amps = subelement_amplitudes(trace, frame, DISCOVERY_SUBELEMENTS)
    return frame, amps


def test_fig03_discovery_frame_structure(benchmark, report):
    frame, amps = benchmark.pedantic(capture_discovery_frame, rounds=1, iterations=1)
    report.add("Figure 3 - D5000 device discovery frame")
    report.add(f"frame duration: {frame.duration_s * 1e3:.3f} ms (paper: ~1 ms)")
    report.add(f"sub-elements: {DISCOVERY_SUBELEMENTS} (paper: 32)")
    report.add(f"amplitude spread: {subelement_variation_db(amps[amps > 0.01]):.1f} dB")
    report.add("per-sub-element mean amplitude (V):")
    for i in range(0, 32, 8):
        row = "  " + " ".join(f"{a:6.3f}" for a in amps[i: i + 8])
        report.add(row)

    # Shape assertions: ~1 ms frame, 32 sub-elements with a clearly
    # non-constant amplitude staircase.
    assert is_discovery_frame(frame)
    assert amps.shape == (32,)
    visible = amps[amps > 0.01]
    assert visible.size >= 16
    assert subelement_variation_db(visible) > 3.0
