"""Command-line interface: quick looks at the paper's experiments.

Usage::

    python -m repro patterns [--rotated 70]
    python -m repro sweep
    python -m repro range [--runs 10]
    python -m repro interference [--distances 0 1 2 3]
    python -m repro nlos
    python -m repro blockage [--no-failover] [--no-wall]
    python -m repro mobility [--speeds 50 70 110]
    python -m repro campaign list
    python -m repro campaign run beam-patterns --workers 4
    python -m repro campaign status beam-patterns
    python -m repro campaign verify beam-patterns --workers 4
    python -m repro campaign run beam-patterns --trace --profile
    python -m repro obs report campaign_runs/beam-patterns [--json]
    python -m repro obs export campaign_runs/beam-patterns --check
    python -m repro obs top campaign_runs/beam-patterns
    python -m repro obs diff <run_a> <run_b>
    python -m repro obs bench report
    python -m repro obs bench check --baseline <dir>
    python -m repro lint [--flow] [--par] [--baseline] [--json] [paths...]
    python -m repro sanitize -- python -m repro nlos

Each subcommand runs a time-scaled version of the corresponding
measurement (Section 3.2 setups) and prints the headline rows.  The
full, asserted reproductions live in ``benchmarks/``.  Every
subcommand takes ``--seed`` so runs are reproducible from the command
line; the defaults match the historical per-experiment seeds.

``campaign`` drives the sharded parallel engine
(:mod:`repro.campaign`): ``run`` executes a built-in campaign across
worker processes with content-addressed result caching and writes
``results.jsonl`` plus a ``manifest.json`` run manifest; ``status``
shows how much of a campaign the cache already covers; ``verify``
proves the engine's determinism claim — workers=1 and workers=N with
shuffled shard submission must merge to byte-identical result stores
— and audits cells for reads outside the spec-derived cache key.

``lint`` runs the domain-aware static analysis (:mod:`repro.lint`):
AST rules RL001-RL008 covering determinism (unseeded RNG, wall-clock
reads, frozen-spec mutation, unordered hashing) and dB-unit safety
(inline conversions, log/linear mixing, float equality); ``--flow``
adds the whole-program unit/RNG passes, ``--par`` the
parallelism-safety and cache-purity pass (RL020-RL025).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
from typing import Optional, Sequence


def _cmd_patterns(args: argparse.Namespace) -> int:
    from repro.experiments.beam_patterns import (
        PatternMetrics,
        measure_dock_pattern,
        measure_laptop_pattern,
    )

    print("Beam pattern campaign (3.2 m semicircle, 100 positions)...")
    rows = [
        PatternMetrics.from_measurement(
            "laptop", measure_laptop_pattern(seed=args.seed)
        ),
        PatternMetrics.from_measurement(
            "dock aligned", measure_dock_pattern(0.0, seed=args.seed + 1)
        ),
    ]
    if args.rotated:
        rows.append(
            PatternMetrics.from_measurement(
                f"dock rotated {args.rotated:.0f}",
                measure_dock_pattern(math.radians(args.rotated), seed=args.seed + 1),
            )
        )
    for row in rows:
        print("  " + row.row())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.frame_level import aggregation_sweep

    print("TCP operating-point sweep (Figures 9-11)...")
    for report in aggregation_sweep(
        duration_s=args.duration, warmup_s=0.04, seed=args.seed
    ):
        print("  " + report.row())
    return 0


def _cmd_range(args: argparse.Namespace) -> int:
    from repro.experiments.range_vs_distance import (
        cliff_statistics,
        throughput_vs_distance,
    )

    runs, average = throughput_vs_distance(runs=args.runs, seed=args.seed)
    print(f"Throughput vs distance ({args.runs} runs, Figure 13):")
    for d, avg in zip(runs[0].distances_m, average):
        bar = "#" * int(avg / 940e6 * 40)
        print(f"  {d:4.0f} m {avg / 1e6:7.0f} mbps |{bar}")
    lo, hi = cliff_statistics(runs)
    print(f"  link-break cliffs span {lo:.0f}-{hi:.0f} m (paper: 10-17 m)")
    return 0


def _cmd_interference(args: argparse.Namespace) -> int:
    from repro.experiments.interference import (
        interference_free_baseline,
        run_interference_point,
    )

    base = interference_free_baseline(duration_s=args.duration, seed=args.seed + 89)
    print(f"baseline: util {base.utilization * 100:.0f}%, "
          f"rate {base.link_rate_bps / 1e9:.2f} Gbps")
    print(f"{'d (m)':>6} {'util %':>7} {'rate Gbps':>10} {'retx':>6}")
    for i, d in enumerate(args.distances):
        p = run_interference_point(d, duration_s=args.duration, seed=args.seed + i)
        print(f"{d:6.1f} {p.utilization * 100:7.1f} "
              f"{p.link_rate_bps / 1e9:10.2f} {p.retransmissions:6d}")
    return 0


def _cmd_nlos(args: argparse.Namespace) -> int:
    from repro.experiments.reflection_range import run_nlos_throughput

    result = run_nlos_throughput(duration_s=0.24, intervals=4, seed=args.seed)
    print(f"LOS blocked: {result.los_blocked}")
    print(f"NLOS: {result.nlos_throughput.mean / 1e6:.0f} mbps "
          f"(+-{result.nlos_throughput.half_width / 1e6:.0f})")
    print(f"LOS:  {result.los_throughput_bps / 1e6:.0f} mbps "
          f"(NLOS/LOS = {result.nlos_over_los:.2f}; paper: 550 mbps, 'more than half')")
    return 0


def _cmd_blockage(args: argparse.Namespace) -> int:
    from repro.experiments.blockage import run_blockage_crossing

    result = run_blockage_crossing(
        failover=not args.no_failover,
        with_wall=not args.no_wall,
        seed=args.seed,
    )
    print(f"failover={'off' if args.no_failover else 'on'}, "
          f"wall={'absent' if args.no_wall else 'present'}:")
    print(f"  retrains: {result.retrain_count}")
    print(f"  outage:   {result.outage_s(20e-3) * 1e3:.0f} ms")
    print(f"  min rate: {result.min_rate_bps() / 1e9:.2f} Gbps")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.experiments.link_recovery import run_break_and_recover

    result = run_break_and_recover(outage_duration_s=args.outage, seed=args.seed)
    print(f"outage: {result.outage_start_s:.2f} - {result.outage_end_s:.2f} s")
    if result.break_detected_s is None:
        print("link survived (no break declared)")
        return 0
    print(f"break detected:  {result.break_detected_s:.3f} s "
          f"(+{result.detection_delay_s * 1e3:.0f} ms)")
    print(f"re-associated:   {result.reassociated_s:.3f} s")
    print(f"traffic resumed: {result.traffic_resumed_s:.3f} s")
    print(f"protocol share of downtime: "
          f"{result.protocol_recovery_s * 1e3:.0f} ms "
          f"(mostly waiting for the 102.4 ms discovery sweep)")
    return 0


def _cmd_mobility(args: argparse.Namespace) -> int:
    from repro.experiments.mobility import (
        contact_time_by_policy,
        retraining_overhead_vs_speed,
    )

    print("Vehicular pass: throughput and re-training overhead vs speed")
    print(f"{'km/h':>6} {'goodput mbps':>13} {'retrains':>9} "
          f"{'sweep ms':>9} {'overhead %':>11}")
    for row in retraining_overhead_vs_speed(
        speeds_kmh=args.speeds, seed=args.seed
    ):
        print(f"{row['speed_kmh']:6.0f} {row['goodput_bps'] / 1e6:13.0f} "
              f"{row['retrains']:9d} {row['retrain_airtime_s'] * 1e3:9.2f} "
              f"{row['overhead_fraction'] * 100:11.2f}")
    print("Corridor walk: handover policies and AP contact time")
    for policy, row in contact_time_by_policy(
        policies=args.policies, seed=args.seed
    ).items():
        contact = ", ".join(
            f"{ap} {t:.1f}s" for ap, t in row["contact_time_s"].items()
        )
        print(f"  {policy:<10} handovers={row['handovers']} "
              f"goodput={row['mean_goodput_bps'] / 1e6:.0f} mbps "
              f"outage={row['outage_fraction'] * 100:.1f}%  [{contact}]")
    return 0


def _cmd_spatial(args: argparse.Namespace) -> int:
    import math

    from repro.core.spatial import Link, conflict_graph, greedy_schedule
    from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
    from repro.geometry.vec import Vec2
    from repro.mac.coupling import DeviceCoupling
    from repro.phy.channel import LinkBudget

    links = []
    devices = {}
    for i in range(args.links):
        y = 2.5 * i
        dock = make_d5000_dock(
            name=f"dock-{i}", position=Vec2(0, y), unit_seed=args.seed + i
        )
        laptop = make_e7440_laptop(name=f"laptop-{i}", position=Vec2(3, y),
                                   orientation_rad=math.pi,
                                   unit_seed=args.seed + 69 + i)
        dock.train_toward(laptop.position)
        laptop.train_toward(dock.position)
        links.append(Link(tx=laptop, rx=dock))
        devices[dock.name] = dock
        devices[laptop.name] = laptop
    coupling = DeviceCoupling(devices, budget=LinkBudget())
    edges = conflict_graph(links, coupling)
    groups = greedy_schedule(links, coupling)
    print(f"{args.links} parallel links, 2.5 m row spacing")
    print(f"conflicts: {edges or 'none'}")
    print(f"schedule:  {groups} ({len(groups)}x airtime division)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.experiments.frame_level import run_idle_wigig, run_unassociated_dock
    from repro.mac.frames import FrameKind

    idle = run_idle_wigig(duration_s=0.02, seed=args.seed)
    beacons = sorted(
        r.start_s
        for r in idle.medium.history
        if r.kind == FrameKind.BEACON and r.source == idle.dock.name
    )
    unassoc = run_unassociated_dock(duration_s=0.45, seed=args.seed + 1)
    disc = sorted(
        r.start_s for r in unassoc.medium.history if r.kind == FrameKind.DISCOVERY
    )
    print("Table 1 (D5000 side):")
    print(f"  beacon interval:    {np.median(np.diff(beacons)) * 1e3:.3f} ms (paper 1.1)")
    print(f"  discovery interval: {np.median(np.diff(disc)) * 1e3:.3f} ms (paper 102.4)")
    return 0


def _parse_override(text: str):
    """Parse a ``--set key=value`` override (int/float/bool/str)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"override {text!r} must look like key=value")
    key, _, raw = text.partition("=")
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return key, lowered == "true"
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            pass
    return key, raw


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.campaign import get_campaign

    spec = get_campaign(args.name)
    overrides = dict(args.set or [])
    seeds = None
    if args.seed is not None:
        seeds = tuple(args.seed + i for i in range(len(spec.seeds)))
    if overrides or seeds is not None:
        spec = spec.with_overrides(overrides, seeds)
    return spec


def _campaign_cache(args: argparse.Namespace):
    from repro.campaign import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir) if args.cache_dir else ResultCache()


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from repro.campaign import builtin_campaigns

    print(f"{'name':<20} {'cells':>6}  description")
    for name, spec in sorted(builtin_campaigns().items()):
        print(f"{name:<20} {spec.scenario_count():>6}  {spec.description}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner, write_run

    spec = _campaign_spec_from_args(args)
    cache = _campaign_cache(args)
    runner = CampaignRunner(
        spec,
        cache=cache,
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        trace=args.trace,
        profile=args.profile,
    )
    print(f"campaign {spec.name}: {spec.scenario_count()} cells, "
          f"{args.workers} worker(s), cache "
          f"{'off' if cache is None else cache.root}"
          f"{', tracing on' if args.trace else ''}"
          f"{', profiling on' if args.profile else ''}")
    result = runner.run()
    out_dir = pathlib.Path(args.output) if args.output else (
        pathlib.Path("campaign_runs") / spec.name
    )
    write_run(result, out_dir)
    t = result.telemetry
    print(f"done: {t.summary()}")
    eps = t.events_per_second()
    if t.events_simulated and eps is not None:
        print(f"DES: {t.events_simulated} events, {eps:,.0f} events/s")
    for failure in t.failures:
        print(f"FAILED {failure['digest'][:12]} {failure['experiment']}: "
              f"{failure['error']} (attempts {failure['attempts']})")
    print(f"results: {out_dir / 'results.jsonl'}")
    print(f"manifest: {out_dir / 'manifest.json'}")
    if t.spans_file:
        print(f"trace: {out_dir / t.spans_file} "
              f"(open in https://ui.perfetto.dev or via 'repro obs report')")
    if t.profile:
        print(f"profile: merged into manifest "
              f"(inspect via 'repro obs top {out_dir}')")
    return 0 if any(o.ok for o in result.outcomes) else 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import report_run

    run_dir = pathlib.Path(args.run_dir)
    if not (run_dir / "manifest.json").is_file():
        print(f"error: no manifest.json in {run_dir}", file=sys.stderr)
        return 2
    print(report_run(run_dir, as_json=args.json), end="" if args.json else "\n")
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from repro.campaign.store import load_manifest
    from repro.obs.prof import render_top

    run_dir = pathlib.Path(args.run_dir)
    if not (run_dir / "manifest.json").is_file():
        print(f"error: no manifest.json in {run_dir}", file=sys.stderr)
        return 2
    print(render_top(load_manifest(run_dir), limit=args.limit))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.campaign.store import load_manifest
    from repro.obs.prof import diff_manifests, render_diff

    manifests = []
    for run_dir in (args.run_a, args.run_b):
        run_dir = pathlib.Path(run_dir)
        if not (run_dir / "manifest.json").is_file():
            print(f"error: no manifest.json in {run_dir}", file=sys.stderr)
            return 2
        manifests.append(load_manifest(run_dir))
    diff = diff_manifests(manifests[0], manifests[1])
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(render_diff(diff, show_all=args.all))
    return 0 if diff["counted_changed"] == 0 else 1


def _cmd_obs_bench_report(args: argparse.Namespace) -> int:
    from repro.obs.bench import load_results, render_report

    try:
        results = load_results(args.results)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(results))
    return 0


def _cmd_obs_bench_check(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        DEFAULT_TOLERANCE,
        check_results,
        load_results,
        render_check,
    )

    try:
        current = load_results(args.results)
        baseline = load_results(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no BENCH_*.json in baseline dir {args.baseline}",
              file=sys.stderr)
        return 2
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    rows = check_results(current, baseline, tolerance=tolerance)
    print(render_check(rows))
    return 0 if all(row["ok"] for row in rows) else 1


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.campaign.store import load_manifest
    from repro.obs.export import TRACE_FILENAME, read_trace, validate_trace
    from repro.obs.report import dropped_span_count

    run_dir = pathlib.Path(args.run_dir)
    if not (run_dir / "manifest.json").is_file():
        print(f"error: no manifest.json in {run_dir}", file=sys.stderr)
        return 2
    manifest = load_manifest(run_dir)
    trace_path = run_dir / (manifest.get("spans_file") or TRACE_FILENAME)
    if not trace_path.is_file():
        print(f"error: no trace file at {trace_path} "
              "(was the campaign run with --trace?)", file=sys.stderr)
        return 2
    doc = read_trace(trace_path)
    problems = validate_trace(doc)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    events = len(doc.get("traceEvents", []))
    dropped = dropped_span_count(doc)
    if args.check:
        print(f"{trace_path}: valid trace-event JSON ({events} events, "
              f"{dropped} dropped)")
        if dropped:
            print(f"WARNING: trace buffer dropped {dropped:,} span(s) — "
                  "the timeline is incomplete", file=sys.stderr)
        return 0
    out_path = pathlib.Path(args.output) if args.output else trace_path
    if out_path != trace_path:
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(trace_path.read_text(encoding="utf-8"), encoding="utf-8")
    print(f"trace: {out_path} ({events} events) — "
          "load in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    return args.obs_func(args)


def _cmd_campaign_verify(args: argparse.Namespace) -> int:
    from repro.campaign.cache import CACHE_DIR_ENV
    from repro.campaign.verify import render_report, verify_campaign

    spec = _campaign_spec_from_args(args)
    report = verify_campaign(
        spec,
        workers=args.workers,
        shuffle_seed=args.shuffle_seed,
        audit=not args.no_audit,
        audit_limit=args.audit_cells,
        cache_check=not args.no_cache_check,
        allowed_env=(CACHE_DIR_ENV,),
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0 if report.ok else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import ResultCache

    spec = _campaign_spec_from_args(args)
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    scenarios = spec.expand()
    cached = sum(1 for s in scenarios if cache.contains(s))
    print(f"campaign {spec.name}: {cached}/{len(scenarios)} cells cached "
          f"({cache.root}, {cache.entry_count()} entries total)")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    return args.campaign_func(args)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import list_rules, run_lint

    if args.list_rules:
        return list_rules()
    return run_lint(args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json
    import subprocess
    import tempfile

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        print("repro sanitize: no command given (usage: repro sanitize -- <cmd> ...)",
              file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as tmp:
        report_path = os.path.join(tmp, "report.json")
        env = dict(os.environ)
        env["REPRO_SANITIZE"] = args.mode
        env["REPRO_SANITIZE_REPORT"] = report_path
        proc = subprocess.run(cmd, env=env)
        try:
            with open(report_path, encoding="utf-8") as fh:
                report = json.load(fh)
        except (OSError, ValueError):
            report = None
    if report is None:
        print("repro sanitize: child wrote no report (does it import repro?)",
              file=sys.stderr)
        return proc.returncode or 2
    total = report.get("total", 0)
    for violation in report.get("violations", []):
        print(f"{violation['check']}: {violation['message']}")
        for frame in violation.get("stack", [])[-6:]:
            print(f"    {frame}")
    shown = len(report.get("violations", []))
    if total > shown:
        print(f"... and {total - shown} more (capped)")
    print(f"sanitizer: {total} violation(s), child exit {proc.returncode}")
    if proc.returncode:
        return proc.returncode
    return 1 if total else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Boon and Bane of 60 GHz Networks'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def seed_option(p: argparse.ArgumentParser, default: int) -> None:
        p.add_argument("--seed", type=int, default=default,
                       help=f"base RNG seed (default {default})")

    p = sub.add_parser("patterns", help="beam pattern metrics (Figure 17)")
    p.add_argument("--rotated", type=float, default=70.0,
                   help="also measure the dock misaligned by DEG (0 to skip)")
    seed_option(p, 0)
    p.set_defaults(func=_cmd_patterns)

    p = sub.add_parser("sweep", help="TCP aggregation sweep (Figures 9-11)")
    p.add_argument("--duration", type=float, default=0.1,
                   help="simulated seconds per operating point")
    seed_option(p, 1)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("range", help="throughput vs distance (Figure 13)")
    p.add_argument("--runs", type=int, default=10)
    seed_option(p, 5)
    p.set_defaults(func=_cmd_range)

    p = sub.add_parser("interference", help="side-lobe interference sweep (Figure 22)")
    p.add_argument("--distances", type=float, nargs="+", default=[0.0, 1.0, 2.0, 3.0])
    p.add_argument("--duration", type=float, default=0.25)
    seed_option(p, 10)
    p.set_defaults(func=_cmd_interference)

    p = sub.add_parser("nlos", help="NLOS reflection link (Figures 5/20)")
    seed_option(p, 7)
    p.set_defaults(func=_cmd_nlos)

    p = sub.add_parser("blockage", help="human blockage crossing + SLS fail-over")
    p.add_argument("--no-failover", action="store_true")
    p.add_argument("--no-wall", action="store_true")
    seed_option(p, 0)
    p.set_defaults(func=_cmd_blockage)

    p = sub.add_parser("recover", help="link break + re-association lifecycle")
    p.add_argument("--outage", type=float, default=0.25,
                   help="obstruction duration in seconds")
    seed_option(p, 20)
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser(
        "mobility",
        help="vehicular drive-by overhead + corridor handover figures",
    )
    p.add_argument("--speeds", type=float, nargs="+", default=[50.0, 70.0, 110.0],
                   help="vehicle speeds in km/h")
    p.add_argument("--policies", nargs="+",
                   default=["sticky", "hysteresis", "wifi"],
                   help="handover policies (sticky, hysteresis, wifi)")
    seed_option(p, 0)
    p.set_defaults(func=_cmd_mobility)

    p = sub.add_parser("spatial", help="conflict graph / schedule for N links")
    p.add_argument("--links", type=int, default=3)
    seed_option(p, 1)
    p.set_defaults(func=_cmd_spatial)

    p = sub.add_parser("table1", help="frame periodicities (Table 1)")
    seed_option(p, 3)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser(
        "campaign",
        help="sharded parallel campaign engine (list/run/status/verify)",
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)

    c = csub.add_parser("list", help="available campaigns")
    c.set_defaults(func=_cmd_campaign, campaign_func=_cmd_campaign_list)

    def campaign_target_options(c: argparse.ArgumentParser) -> None:
        c.add_argument("name", help="campaign name (see 'campaign list')")
        c.add_argument("--seed", type=int, default=None,
                       help="base seed replacing the campaign's seed list")
        c.add_argument("--set", type=_parse_override, action="append",
                       metavar="KEY=VALUE",
                       help="override a base parameter or pin a grid axis")
        c.add_argument("--cache-dir", default=None,
                       help="result cache directory "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro/campaigns)")

    c = csub.add_parser("run", help="execute a campaign")
    campaign_target_options(c)
    c.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = serial in-process)")
    c.add_argument("--timeout", type=float, default=None,
                   help="per-scenario timeout in seconds")
    c.add_argument("--retries", type=int, default=2,
                   help="retries for transient cell failures")
    c.add_argument("--no-cache", action="store_true",
                   help="compute every cell, bypassing the result cache")
    c.add_argument("--output", default=None,
                   help="run directory (default campaign_runs/<name>)")
    c.add_argument("--trace", action="store_true",
                   help="record obs spans/metrics; writes trace.json "
                        "(Perfetto) and a metrics section in the manifest")
    c.add_argument("--profile", action="store_true",
                   help="attribute DES event wall time per handler; "
                        "writes a profile section in the manifest "
                        "(inspect with 'repro obs top')")
    c.set_defaults(func=_cmd_campaign, campaign_func=_cmd_campaign_run)

    c = csub.add_parser("status", help="cache coverage of a campaign")
    campaign_target_options(c)
    c.set_defaults(func=_cmd_campaign, campaign_func=_cmd_campaign_status)

    c = csub.add_parser(
        "verify",
        help="prove workers=1 ≡ workers=N with shuffled shards and "
        "audit cache purity",
    )
    campaign_target_options(c)
    c.add_argument("--workers", type=int, default=4,
                   help="pool size for the parallel leg (default 4)")
    c.add_argument("--shuffle-seed", type=int, default=1,
                   help="seed for the shuffled submission order")
    c.add_argument("--audit-cells", type=int, default=16,
                   help="max cells executed under the purity auditor")
    c.add_argument("--no-audit", action="store_true",
                   help="skip the cache-purity audit")
    c.add_argument("--no-cache-check", action="store_true",
                   help="skip the cache replay equivalence check")
    c.add_argument("--json", action="store_true",
                   help="machine-readable report")
    c.set_defaults(func=_cmd_campaign, campaign_func=_cmd_campaign_verify)

    p = sub.add_parser(
        "obs",
        help="observability: traces, metrics, profiles, benchmarks",
    )
    osub = p.add_subparsers(dest="obs_command", required=True)

    o = osub.add_parser("report", help="summary table for a traced run")
    o.add_argument("run_dir", help="campaign run directory (manifest.json)")
    o.add_argument("--json", action="store_true",
                   help="byte-deterministic machine-readable report")
    o.set_defaults(func=_cmd_obs, obs_func=_cmd_obs_report)

    o = osub.add_parser(
        "export",
        help="validate/copy a run's Chrome trace-event JSON",
    )
    o.add_argument("run_dir", help="campaign run directory (manifest.json)")
    o.add_argument("--output", "-o", default=None,
                   help="copy the trace to this path after validation")
    o.add_argument("--check", action="store_true",
                   help="validate against the exporter schema and exit")
    o.set_defaults(func=_cmd_obs, obs_func=_cmd_obs_export)

    o = osub.add_parser(
        "top",
        help="hot-path table from a profiled run (handlers + span self-time)",
    )
    o.add_argument("run_dir", help="campaign run directory (manifest.json)")
    o.add_argument("--limit", type=int, default=30,
                   help="max rows per section (default 30)")
    o.set_defaults(func=_cmd_obs, obs_func=_cmd_obs_top)

    o = osub.add_parser(
        "diff",
        help="compare two run manifests (stable order, signed deltas; "
             "exit 1 when count-derived fields differ)",
    )
    o.add_argument("run_a", help="first run directory (manifest.json)")
    o.add_argument("run_b", help="second run directory (manifest.json)")
    o.add_argument("--all", action="store_true",
                   help="show unchanged fields too")
    o.add_argument("--json", action="store_true",
                   help="machine-readable diff")
    o.set_defaults(func=_cmd_obs, obs_func=_cmd_obs_diff)

    o = osub.add_parser(
        "bench",
        help="benchmark trajectory report / regression gate",
    )
    bsub = o.add_subparsers(dest="bench_command", required=True)

    b = bsub.add_parser("report", help="trajectory table over BENCH_*.json")
    b.add_argument("--results", default="benchmarks/results",
                   help="results directory (default benchmarks/results)")
    b.set_defaults(func=_cmd_obs, obs_func=_cmd_obs_bench_report)

    b = bsub.add_parser(
        "check",
        help="fail when a gated benchmark regressed past the tolerance",
    )
    b.add_argument("--results", default="benchmarks/results",
                   help="current results directory (default benchmarks/results)")
    b.add_argument("--baseline", required=True,
                   help="baseline results directory to compare against")
    b.add_argument("--tolerance", type=float, default=None,
                   help="default allowed degradation ratio "
                        "(default 3.0; per-entry 'tolerance' overrides)")
    b.set_defaults(func=_cmd_obs, obs_func=_cmd_obs_bench_check)

    p = sub.add_parser(
        "lint",
        help="domain-aware static analysis (determinism, dB-unit safety)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "sanitize",
        help="run a command under the runtime unit/RNG sanitizer",
    )
    p.add_argument("--mode", choices=["warn", "raise"], default="warn",
                   help="collect violations (warn) or fail at the call site (raise)")
    p.add_argument("cmd", nargs=argparse.REMAINDER,
                   help="command to run, after a literal -- separator")
    p.set_defaults(func=_cmd_sanitize)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
