"""Per-run counters, timers, and the JSON run manifest.

Every campaign run emits a manifest next to its results: how many
scenarios ran, how many were served from cache, how many failed (and
why), wall-clock versus summed worker time, and the discrete-event
simulator's throughput (events simulated per second) aggregated over
all cells that report it.  The manifest is the run's flight recorder —
the thing you read six months later to judge whether a result set is
trustworthy and how expensive a re-run would be.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.obs import clock

PathLike = Union[str, pathlib.Path]

#: Bump when the manifest layout changes incompatibly.  v2 adds the
#: ``metrics`` section (deterministic merged obs counters) and the
#: ``spans_file`` pointer to the Chrome trace-event export.  v3 adds
#: the ``profile`` section (merged handler attribution + span
#: self-time aggregates consumed by ``repro obs top`` / ``obs diff``
#: and ``repro lint --worklist --profile``).
MANIFEST_SCHEMA_VERSION = 3

MANIFEST_FILENAME = "manifest.json"

#: Below this many seconds a measured duration is noise, not a rate
#: denominator — derived rates report ``None`` (JSON ``null``) instead
#: of a nonsense/infinite value.
_MIN_DURATION_S = 1e-9


@dataclass
class RunTelemetry:
    """Counters and timers for one campaign run."""

    campaign: str = ""
    campaign_digest: str = ""
    workers: int = 1
    scenarios_total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    timeouts: int = 0
    retries: int = 0
    wall_clock_s: float = 0.0
    worker_time_s: float = 0.0
    events_simulated: int = 0
    shard_sizes: List[int] = field(default_factory=list)
    failures: List[Dict] = field(default_factory=list)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    metrics: Optional[Dict] = None
    spans_file: Optional[str] = None
    profile: Optional[Dict] = None
    _t0: Optional[float] = field(default=None, repr=False)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self.started_unix = clock.wall_time()
        self._t0 = clock.perf_counter()

    def finish(self) -> None:
        self.finished_unix = clock.wall_time()
        if self._t0 is not None:
            self.wall_clock_s = clock.perf_counter() - self._t0

    # -- recording -------------------------------------------------------------

    def record_cached(self) -> None:
        self.cached += 1

    def record_completed(self, elapsed_s: float, events: int = 0) -> None:
        self.completed += 1
        self.worker_time_s += elapsed_s
        self.events_simulated += events

    def record_failure(
        self,
        digest: str,
        experiment: str,
        error: str,
        attempts: int,
        timed_out: bool = False,
    ) -> None:
        self.failed += 1
        if timed_out:
            self.timeouts += 1
        self.failures.append(
            {
                "digest": digest,
                "experiment": experiment,
                "error": error,
                "attempts": attempts,
                "timed_out": timed_out,
            }
        )

    def record_retry(self) -> None:
        self.retries += 1

    # -- derived ---------------------------------------------------------------

    def events_per_second(self) -> Optional[float]:
        """DES events per summed worker-second.

        Returns 0.0 when no events were simulated, and ``None`` (JSON
        ``null``) when events were recorded but the measured duration
        is too close to zero to divide by — a rate derived from a
        sub-nanosecond denominator would be ``inf``/garbage, and a
        manifest must never contain non-JSON values.
        """
        if self.events_simulated <= 0:
            return 0.0
        if self.worker_time_s < _MIN_DURATION_S:
            return None
        return self.events_simulated / self.worker_time_s

    def cache_hit_ratio(self) -> float:
        if self.scenarios_total <= 0:
            return 0.0
        return self.cached / self.scenarios_total

    def speedup_vs_serial(self) -> Optional[float]:
        """Summed worker time over wall clock (parallel efficiency).

        ``None`` when worker time was accrued but the wall clock
        measured (near-)zero — same guard as :meth:`events_per_second`.
        """
        if self.worker_time_s <= 0:
            return 0.0
        if self.wall_clock_s < _MIN_DURATION_S:
            return None
        return self.worker_time_s / self.wall_clock_s

    # -- manifest --------------------------------------------------------------

    def as_manifest(self) -> Dict:
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "campaign": self.campaign,
            "campaign_digest": self.campaign_digest,
            "workers": self.workers,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "scenarios": {
                "total": self.scenarios_total,
                "completed": self.completed,
                "cached": self.cached,
                "failed": self.failed,
                "timeouts": self.timeouts,
                "retries": self.retries,
            },
            "timing": {
                "wall_clock_s": self.wall_clock_s,
                "worker_time_s": self.worker_time_s,
                "speedup_vs_serial": self.speedup_vs_serial(),
            },
            "des": {
                "events_simulated": self.events_simulated,
                "events_per_second": self.events_per_second(),
            },
            "cache_hit_ratio": self.cache_hit_ratio(),
            "shard_sizes": list(self.shard_sizes),
            "failures": list(self.failures),
            "metrics": self.metrics,
            "spans_file": self.spans_file,
            "profile": self.profile,
        }

    def write_manifest(self, path: PathLike) -> pathlib.Path:
        """Write the JSON manifest; returns the path written."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_manifest(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        parts = [
            f"{self.scenarios_total} scenarios",
            f"{self.completed} computed",
            f"{self.cached} cached",
            f"{self.failed} failed",
            f"wall {self.wall_clock_s:.2f} s",
        ]
        eps = self.events_per_second()
        if self.events_simulated and eps is not None:
            parts.append(f"{eps:,.0f} DES events/s")
        return ", ".join(parts)


def upgrade_manifest(manifest: Dict) -> Dict:
    """Upgrade an older manifest dict to the current schema in place.

    v1 manifests predate observability: they gain ``metrics`` and
    ``spans_file`` as ``None``.  v2 manifests predate profiling: they
    gain ``profile`` as ``None``.  Unknown (newer or garbage) versions
    raise — a reader must not silently misinterpret them.
    """
    version = manifest.get("schema_version")
    if version in (1, 2):
        manifest.setdefault("metrics", None)
        manifest.setdefault("spans_file", None)
        manifest.setdefault("profile", None)
        manifest["schema_version"] = MANIFEST_SCHEMA_VERSION
        return manifest
    if version != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported manifest schema version {version} "
            f"(expected <= {MANIFEST_SCHEMA_VERSION})"
        )
    return manifest


def read_manifest(path: PathLike) -> Dict:
    """Load a manifest written by :meth:`RunTelemetry.write_manifest`.

    Accepts the current schema plus v1/v2 (upgraded on read via
    :func:`upgrade_manifest`); anything else raises ``ValueError``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    return upgrade_manifest(manifest)
