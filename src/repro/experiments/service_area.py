"""Serviceable area of the dock: the 120-degree cone and beyond.

Section 3.1: "The serviced area with best reception is in a cone of
120 degree width in front of the docking station.  In indoor
environments, over short link distances, and with reflecting obstacles,
we found it, however, to perform over a much wider angular range."

This harness sweeps a peer around the dock at fixed distance and
reports the achievable MCS per bearing, in free space versus inside a
reflective room.  In free space the link dies outside the codebook's
sector; indoors, wall bounces keep it alive far beyond the cone —
the quantitative version of the paper's observation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.geometry.room import Room
from repro.geometry.vec import Vec2
from repro.mac.coupling import DeviceCoupling
from repro.phy.channel import LinkBudget
from repro.phy.mcs import MCS, select_mcs
from repro.phy.raytracing import RayTracer


@dataclass(frozen=True)
class ServicePoint:
    """Achievable service at one peer bearing."""

    bearing_deg: float
    snr_db: float
    mcs: Optional[MCS]

    @property
    def usable(self) -> bool:
        return self.mcs is not None


def sweep_service_area(
    distance_m: float = 4.0,
    step_deg: float = 10.0,
    room: Optional[Room] = None,
    dock_position: Vec2 = Vec2(6.0, 5.0),
) -> List[ServicePoint]:
    """Measure the achievable MCS for peers all around the dock.

    With ``room`` set, propagation is ray-traced (LOS + up to two
    bounces); otherwise free space.  The dock faces +x; its codebook
    spans the nominal 120-degree cone.
    """
    if step_deg <= 0:
        raise ValueError("step must be positive")
    budget = LinkBudget()
    tracer = RayTracer(room, max_order=2) if room is not None else None
    points: List[ServicePoint] = []
    for bearing_deg in np.arange(-180.0, 180.0, step_deg):
        bearing = math.radians(float(bearing_deg))
        dock = make_d5000_dock(position=dock_position, orientation_rad=0.0)
        peer_pos = dock_position + Vec2.from_polar(distance_m, bearing)
        laptop = make_e7440_laptop(
            position=peer_pos, orientation_rad=(dock_position - peer_pos).angle()
        )
        from repro.experiments.common import train_pair

        train_pair(dock, laptop, tracer)
        coupling = DeviceCoupling(
            {dock.name: dock, laptop.name: laptop}, budget=budget, tracer=tracer
        )
        snr = coupling.snr_db(laptop.name, dock.name)
        points.append(
            ServicePoint(
                bearing_deg=float(bearing_deg), snr_db=snr, mcs=select_mcs(snr)
            )
        )
    return points


def usable_span_deg(points: List[ServicePoint]) -> float:
    """Total angular span over which the link is usable."""
    if not points:
        return 0.0
    step = 360.0 / len(points)
    return step * sum(1 for p in points if p.usable)


def high_service_span_deg(points: List[ServicePoint], min_rate_bps: float = 3.0e9) -> float:
    """Angular span with "best reception" (16-QAM-class rates).

    The D5000's specified service area is "a cone of 120 degree width";
    in free space our model's 16-QAM-capable span comes out at almost
    exactly that cone, and reflecting walls widen it — the paper's
    Section 3.1 observation.
    """
    if not points:
        return 0.0
    step = 360.0 / len(points)
    return step * sum(
        1 for p in points if p.mcs is not None and p.mcs.phy_rate_bps >= min_rate_bps
    )


def service_room() -> Room:
    """An office with a strong reflector just in front of the dock.

    Sized so the default 4 m sweep stays inside the room; the metal
    plate (a monitor or whiteboard, 1.5 m ahead of the dock) is the
    "reflecting obstacle" of Section 3.1 — it folds the dock's forward
    sector back over the rear hemisphere.
    """
    from repro.geometry.room import Obstacle

    room = Room.rectangular(12.0, 10.0, materials=["brick", "glass", "glass", "brick"])
    room.add_obstacle(
        Obstacle.plate(Vec2(7.5, 4.2), Vec2(7.5, 5.8), material="metal", name="plate")
    )
    return room
