"""Unit-conversion helpers for geometry and mobility code.

The toolkit's quantities live in a handful of scales — road-sign km/h
vs SI m/s for vehicle speeds, the paper's figure degrees vs the math
library's radians for angles — and every conversion between them goes
through this module so the change of scale is *named* at the call
site and visible to ``repro lint --dim`` (the RL050-RL056 pass keys
its inference on these helpers by name).  Inline ``/3.6``-style magic
constants fire RL056.
"""

from __future__ import annotations

import math

#: Conversion factor between the road-sign unit and SI.
KMH_PER_MPS = 3.6


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert km/h to m/s."""
    return speed_kmh / KMH_PER_MPS


def mps_to_kmh(speed_mps: float) -> float:
    """Convert m/s to km/h."""
    return speed_mps * KMH_PER_MPS


def deg_wrap_180(angle_deg: float) -> float:
    """Wrap an angle in degrees into ``(-180, 180]``.

    The degree-domain counterpart of
    :func:`repro.geometry.vec.normalize_angle`: comparing raw angle
    differences without this wrap misreads nearly-aligned headings on
    either side of the ±180° seam as opposite (RL055).
    """
    wrapped = math.fmod(angle_deg, 360.0)
    if wrapped > 180.0:
        wrapped -= 360.0
    elif wrapped <= -180.0:
        wrapped += 360.0
    return wrapped


#: Road-speed alias matching the mobility module's historical name.
kmh_to_mps = kmh_to_ms

__all__ = ["KMH_PER_MPS", "deg_wrap_180", "kmh_to_ms", "kmh_to_mps", "mps_to_kmh"]
