"""Trajectory models: clamping, crossing times, walkers, vehicle passes."""

import math

import numpy as np
import pytest

from repro.geometry.vec import Vec2
from repro.mobility.trajectory import (
    KMH_PER_MPS,
    PEDESTRIAN_SPEED_MPS,
    LinearTrajectory,
    VehiclePass,
    WaypointWalker,
    kmh_to_mps,
    mps_to_kmh,
)


class TestSpeedConversions:
    def test_roundtrip(self):
        assert kmh_to_mps(mps_to_kmh(13.7)) == pytest.approx(13.7)
        assert mps_to_kmh(1.0) == pytest.approx(KMH_PER_MPS)

    def test_road_speeds(self):
        assert kmh_to_mps(36.0) == pytest.approx(10.0)
        assert kmh_to_mps(110.0) == pytest.approx(30.555, abs=1e-3)


class TestLinearTrajectory:
    def test_position_is_linear_in_time(self):
        traj = LinearTrajectory(Vec2(1.0, 2.0), Vec2(3.0, -1.0))
        p = traj.position(2.0)
        assert p.x == pytest.approx(7.0)
        assert p.y == pytest.approx(0.0)

    def test_clamps_before_start_and_after_duration(self):
        traj = LinearTrajectory(Vec2(0.0, 0.0), Vec2(2.0, 0.0), duration_s=3.0)
        assert traj.position(-5.0).x == pytest.approx(0.0)
        assert traj.position(99.0).x == pytest.approx(6.0)
        # Outside the defined motion the point is parked.
        assert traj.velocity_mps(-1.0).length() == 0.0
        assert traj.velocity_mps(4.0).length() == 0.0
        assert traj.velocity_mps(1.0).x == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            LinearTrajectory(Vec2(0, 0), Vec2(1, 0), duration_s=-1.0)

    def test_sample_positions_matches_position(self):
        traj = LinearTrajectory(Vec2(1.0, 1.0), Vec2(0.5, 2.0), duration_s=4.0)
        times = [-1.0, 0.0, 1.3, 4.0, 10.0]
        sampled = traj.sample_positions(times)
        assert sampled.shape == (5, 2)
        for row, t in zip(sampled, times):
            p = traj.position(t)
            assert row[0] == pytest.approx(p.x)
            assert row[1] == pytest.approx(p.y)

    def test_path_length(self):
        traj = LinearTrajectory(Vec2(0, 0), Vec2(3.0, 4.0), duration_s=2.0)
        assert traj.path_length_m() == pytest.approx(10.0)
        assert math.isinf(LinearTrajectory(Vec2(0, 0), Vec2(1, 0)).path_length_m())

    def test_heading_follows_velocity(self):
        traj = LinearTrajectory(Vec2(0, 0), Vec2(0.0, 2.0))
        assert traj.heading_rad(1.0) == pytest.approx(math.pi / 2.0)


class TestCrossingTime:
    def test_perpendicular_crossing(self):
        # Moving +x at 2 m/s from x=-4; the segment is the y-axis span.
        traj = LinearTrajectory(Vec2(-4.0, 0.0), Vec2(2.0, 0.0))
        t = traj.crossing_time_s(Vec2(0.0, -1.0), Vec2(0.0, 1.0))
        assert t == pytest.approx(2.0)

    def test_miss_beyond_segment_end(self):
        traj = LinearTrajectory(Vec2(-4.0, 5.0), Vec2(2.0, 0.0))
        # The crossing point (0, 5) lies outside the segment's y-span.
        assert traj.crossing_time_s(Vec2(0.0, -1.0), Vec2(0.0, 1.0)) is None

    def test_parallel_motion_never_crosses(self):
        traj = LinearTrajectory(Vec2(0.0, 1.0), Vec2(1.0, 0.0))
        assert traj.crossing_time_s(Vec2(0.0, 0.0), Vec2(5.0, 0.0)) is None

    def test_crossing_in_the_past_is_rejected(self):
        traj = LinearTrajectory(Vec2(4.0, 0.0), Vec2(2.0, 0.0))
        assert traj.crossing_time_s(Vec2(0.0, -1.0), Vec2(0.0, 1.0)) is None

    def test_crossing_after_duration_is_rejected(self):
        traj = LinearTrajectory(Vec2(-4.0, 0.0), Vec2(2.0, 0.0), duration_s=1.0)
        assert traj.crossing_time_s(Vec2(0.0, -1.0), Vec2(0.0, 1.0)) is None

    def test_oblique_crossing(self):
        traj = LinearTrajectory(Vec2(-2.0, -2.0), Vec2(1.0, 1.0))
        t = traj.crossing_time_s(Vec2(-1.0, 1.0), Vec2(1.0, -1.0))
        assert t == pytest.approx(2.0)
        p = traj.position(t)
        assert p.x == pytest.approx(0.0)
        assert p.y == pytest.approx(0.0)


class TestWaypointWalker:
    def test_visits_waypoints_in_order(self):
        walker = WaypointWalker(
            [Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)], speed_mps=1.0
        )
        assert walker.duration_s == pytest.approx(7.0)
        assert walker.path_length_m() == pytest.approx(7.0)
        mid = walker.position(1.5)
        assert mid.x == pytest.approx(1.5)
        assert mid.y == pytest.approx(0.0)
        end = walker.position(7.0)
        assert end.x == pytest.approx(3.0)
        assert end.y == pytest.approx(4.0)

    def test_dwell_pauses_hold_position(self):
        walker = WaypointWalker(
            [Vec2(0, 0), Vec2(2, 0), Vec2(2, 2)], speed_mps=1.0, pause_s=1.0
        )
        # Leg 1 spans [0, 2], dwell [2, 3], leg 2 spans [3, 5].
        assert walker.duration_s == pytest.approx(5.0)
        dwelling = walker.position(2.5)
        assert dwelling.x == pytest.approx(2.0)
        assert dwelling.y == pytest.approx(0.0)
        assert walker.velocity_mps(2.5).length() == 0.0
        assert walker.velocity_mps(3.5).y == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaypointWalker([Vec2(0, 0)])
        with pytest.raises(ValueError):
            WaypointWalker([Vec2(0, 0), Vec2(1, 0)], speed_mps=0.0)
        with pytest.raises(ValueError):
            WaypointWalker([Vec2(0, 0), Vec2(1, 0)], pause_s=-0.1)

    def test_conference_room_is_seed_deterministic(self):
        a = WaypointWalker.conference_room(6.0, 4.0, np.random.default_rng(7))
        b = WaypointWalker.conference_room(6.0, 4.0, np.random.default_rng(7))
        c = WaypointWalker.conference_room(6.0, 4.0, np.random.default_rng(8))
        assert a.waypoints == b.waypoints
        assert a.waypoints != c.waypoints
        assert a.speed == pytest.approx(PEDESTRIAN_SPEED_MPS)

    def test_conference_room_respects_margin(self):
        walker = WaypointWalker.conference_room(
            6.0, 4.0, np.random.default_rng(3), num_waypoints=16, margin_m=0.5
        )
        for p in walker.waypoints:
            assert 0.5 <= p.x <= 5.5
            assert 0.5 <= p.y <= 3.5

    def test_conference_room_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WaypointWalker.conference_room(6.0, 4.0, rng, num_waypoints=1)
        with pytest.raises(ValueError):
            WaypointWalker.conference_room(0.8, 4.0, rng, margin_m=0.5)


class TestVehiclePass:
    def test_pass_duration_shrinks_with_speed(self):
        slow = VehiclePass(50.0, approach_m=12.0)
        fast = VehiclePass(110.0, approach_m=12.0)
        assert slow.duration_s == pytest.approx(24.0 / kmh_to_mps(50.0))
        assert fast.duration_s < slow.duration_s
        # Same road segment regardless of speed.
        assert slow.path_length_m() == pytest.approx(24.0)
        assert fast.path_length_m() == pytest.approx(24.0)

    def test_geometry(self):
        traj = VehiclePass(70.0, lane_offset_m=4.0, approach_m=12.0)
        start = traj.position(0.0)
        assert start.x == pytest.approx(-12.0)
        assert start.y == pytest.approx(4.0)
        abeam = traj.position(traj.closest_approach_s())
        assert abeam.x == pytest.approx(0.0, abs=1e-9)
        assert abeam.y == pytest.approx(4.0)
        end = traj.position(traj.duration_s)
        assert end.x == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VehiclePass(0.0)
        with pytest.raises(ValueError):
            VehiclePass(50.0, approach_m=0.0)
