"""Unit tests for NAV virtual carrier sensing and channel separation."""

import pytest

from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind, FrameRecord
from repro.mac.simulator import (
    NAV_DECODE_THRESHOLD_DBM,
    Medium,
    Simulator,
    Station,
    StaticCoupling,
)


def three_stations(third_coupling_db=-50.0):
    """a -> b link plus a third station c that may overhear."""
    sim = Simulator(seed=1)
    coupling = StaticCoupling({
        ("a", "b"): -40.0,
        ("b", "a"): -40.0,
        ("a", "c"): third_coupling_db,
        ("b", "c"): third_coupling_db,
        ("c", "a"): third_coupling_db,
        ("c", "b"): third_coupling_db,
    })
    medium = Medium(sim, coupling)
    stations = {}
    for name, x in (("a", 0.0), ("b", 2.0), ("c", 4.0)):
        st = Station(name, Vec2(x, 0.0), cca_threshold_dbm=-60.0)
        medium.register(st)
        stations[name] = st
    return sim, medium, stations


def rts(nav_s=1e-3):
    return FrameRecord(
        start_s=0.0, duration_s=3e-6, source="a", destination="b",
        kind=FrameKind.RTS, nav_duration_s=nav_s,
    )


class TestNav:
    def test_overhearing_station_sets_nav(self):
        sim, medium, st = three_stations(third_coupling_db=-50.0)
        medium.transmit(rts(nav_s=1e-3))
        sim.run_until(10e-6)  # RTS over, NAV still running
        assert medium.channel_busy_for(st["c"])
        assert medium.nav_remaining_s(st["c"]) > 0.9e-3

    def test_nav_expires(self):
        sim, medium, st = three_stations()
        medium.transmit(rts(nav_s=1e-3))
        sim.run_until(2e-3)
        assert not medium.channel_busy_for(st["c"])
        assert medium.nav_remaining_s(st["c"]) == 0.0

    def test_hidden_station_ignores_nav(self):
        # Coupling below the control-PHY decode threshold: the third
        # station cannot read the duration field.
        weak = NAV_DECODE_THRESHOLD_DBM - 10.0 - 10.0  # power = 10 + coupling
        sim, medium, st = three_stations(third_coupling_db=weak)
        medium.transmit(rts(nav_s=1e-3))
        sim.run_until(10e-6)
        assert not medium.channel_busy_for(st["c"])

    def test_link_endpoints_exempt_from_nav(self):
        sim, medium, st = three_stations()
        medium.transmit(rts(nav_s=1e-3))
        sim.run_until(10e-6)
        assert medium.nav_remaining_s(st["a"]) == 0.0
        assert medium.nav_remaining_s(st["b"]) == 0.0

    def test_wait_for_idle_respects_nav(self):
        sim, medium, st = three_stations()
        medium.transmit(rts(nav_s=1e-3))
        sim.run_until(10e-6)
        fired = []
        medium.wait_for_idle(st["c"], lambda: fired.append(sim.now))
        sim.run_until(5e-3)
        assert len(fired) == 1
        # Fires at NAV expiry (frame end 3us + 1ms), not at frame end.
        assert fired[0] == pytest.approx(3e-6 + 1e-3, abs=5e-5)

    def test_plain_frames_set_no_nav(self):
        sim, medium, st = three_stations()
        medium.transmit(FrameRecord(0.0, 10e-6, "a", "b", FrameKind.DATA, mcs_index=8))
        sim.run_until(20e-6)
        assert medium.nav_remaining_s(st["c"]) == 0.0

    def test_wigig_rts_carries_txop_nav(self):
        from repro.mac.wigig import WiGigLink

        sim, medium, st = three_stations()
        link = WiGigLink(sim, medium, transmitter=st["a"], receiver=st["b"],
                         snr_hint_db=35.0, send_beacons=False)
        link.enqueue_mpdus(5)
        sim.run_until(1e-3)
        rts_frames = [r for r in medium.history if r.kind == FrameKind.RTS]
        assert rts_frames
        # The reservation covers (nearly) the whole 2 ms TXOP.
        assert rts_frames[0].nav_duration_s == pytest.approx(2e-3, rel=0.05)


class TestChannels:
    def make_pair_on_channels(self, ch_tx, ch_rx, ch_other):
        sim = Simulator(seed=2)
        coupling = StaticCoupling({
            ("a", "b"): -40.0,
            ("x", "b"): -42.0,
            ("x", "a"): -42.0,
        })
        medium = Medium(sim, coupling)
        a = Station("a", Vec2(0, 0), channel=ch_tx)
        b = Station("b", Vec2(2, 0), channel=ch_rx)
        x = Station("x", Vec2(1, 1), channel=ch_other)
        for s in (a, b, x):
            medium.register(s)
        return sim, medium, a, b, x

    def test_cross_channel_interference_ignored(self):
        sim, medium, a, b, x = self.make_pair_on_channels(2, 2, 3)
        results = []
        medium.transmit(
            FrameRecord(0.0, 10e-6, "a", "b", FrameKind.DATA, mcs_index=11),
            on_complete=lambda r, ok: results.append(ok),
        )
        medium.transmit(FrameRecord(0.0, 10e-6, "x", "", FrameKind.DATA))
        sim.run_until(1e-3)
        assert results == [True]  # would be lost if co-channel

    def test_co_channel_interference_applies(self):
        sim, medium, a, b, x = self.make_pair_on_channels(2, 2, 2)
        results = []
        medium.transmit(
            FrameRecord(0.0, 10e-6, "a", "b", FrameKind.DATA, mcs_index=11),
            on_complete=lambda r, ok: results.append(ok),
        )
        medium.transmit(FrameRecord(0.0, 10e-6, "x", "", FrameKind.DATA))
        sim.run_until(1e-3)
        assert results == [False]

    def test_cross_channel_not_sensed(self):
        sim, medium, a, b, x = self.make_pair_on_channels(2, 2, 3)
        medium.transmit(FrameRecord(0.0, 100e-6, "a", "b", FrameKind.DATA))
        assert not medium.channel_busy_for(x)

    def test_device_channel_propagates_to_station(self):
        from repro.devices.d5000 import make_d5000_dock

        dock = make_d5000_dock()
        dock.channel = 3
        assert dock.make_station().channel == 3
