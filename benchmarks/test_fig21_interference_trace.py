"""Figure 21: inter-system interference at the frame level.

Paper: overlapping D5000/WiHD operation shows (a) collisions — D5000
data frames over an elevated noise floor with missing ACKs, i.e.
retransmissions — and (b) dense WiHD frame series occupying enlarged
gaps in the D5000 flow, attributed to the D5000's carrier sensing.
"""


from repro.core.frames import FrameDetector
from repro.core.utilization import idle_gaps_s
from repro.experiments.interference import capture_interference_trace
from repro.mac.frames import FrameKind


def run_capture():
    return capture_interference_trace(wihd_offset_m=0.3, duration_s=1.5e-3, run_for_s=0.15)


def test_fig21_interference_effects(benchmark, report):
    trace, scenario = benchmark.pedantic(run_capture, rounds=1, iterations=1)
    stats = scenario.link_a.stats
    report.add("Figure 21 - inter-system interference (1.5 ms capture)")
    report.add(f"link A: {stats.data_frames_sent} data frames sent, "
               f"{stats.retransmissions} retransmissions, "
               f"{stats.cca_deferrals} carrier-sense deferrals")
    frames = FrameDetector(threshold_v=0.05).detect(trace)
    report.add(f"frames visible in capture: {len(frames)}")

    # (a) Collisions and retransmissions on the WiGig link.
    assert stats.retransmissions > 10
    retx_frames = [
        r
        for r in scenario.medium.history
        if r.kind == FrameKind.DATA and r.source == "laptop-a" and r.retransmission
    ]
    assert retx_frames
    report.add(f"retransmitted data frames in history: {len(retx_frames)}")

    # WiHD frames genuinely overlap WiGig frames (the elevated noise
    # floor of Figure 21a).
    wigig = sorted(
        (r for r in scenario.medium.history
         if r.source == "laptop-a" and r.kind == FrameKind.DATA),
        key=lambda r: r.start_s,
    )
    wihd = [
        r for r in scenario.medium.history
        if r.source == "wihd-tx" and r.kind == FrameKind.DATA
    ]
    overlaps = sum(
        1 for w in wihd if any(w.overlaps(g) for g in wigig[:2000])
    )
    report.add(f"WiHD frames overlapping WiGig data: {overlaps}")
    assert overlaps > 0

    # (b) Enlarged gaps in the WiGig flow occupied by WiHD frames
    # (carrier sensing).
    window = (scenario.sim.now - 20e-3, scenario.sim.now)
    gaps = idle_gaps_s(wigig, window[0], window[1])
    big_gaps = [(a, b) for a, b in gaps if b - a > 100e-6]
    occupied = 0
    for a, b in big_gaps:
        if any(a < w.start_s < b for w in wihd):
            occupied += 1
    report.add(f"large WiGig gaps: {len(big_gaps)}, occupied by WiHD: {occupied}")
    assert occupied > 0
