"""Sector-level-sweep (SLS) beam training, 802.11ad style.

The paper observes that "a complex association and beamforming process
between dock and remote station takes place" before data flows
(Section 4.1), and that beam selection is revisited during operation
(Figure 14).  This module implements that process rather than assuming
an oracle:

* **ISS** — the initiator transmits one short sector-sweep (SSW) frame
  on each directional codebook entry; the responder listens through a
  quasi-omni pattern and records the SNR of every decodable frame.
* **RSS** — the roles swap; the responder's SSW frames also carry
  feedback naming the best initiator sector.
* **Feedback/ACK** — the initiator reports the best responder sector.

Training is imperfect in the same ways real hardware is: each SNR
measurement carries estimation noise, frames below the control-PHY
sensitivity are simply not received, and quasi-omni listening patterns
have the deep gaps of Figure 16 — so the chosen sector is occasionally
not the truly best one, which is exactly the realignment churn the
paper sees in Figure 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import obs
from repro.devices.base import RadioDevice
from repro.phy.channel import LinkBudget
from repro.phy.codebook import CodebookEntry
from repro.phy.mcs import CONTROL_MCS
from repro.phy.raytracing import RayTracer
from repro.geometry.vec import Vec2

#: On-air duration of one SSW frame at the control PHY (~26 bytes at
#: 27.5 mbps plus preamble).
SSW_FRAME_S = 15.0e-6

#: Short beamforming interframe space between SSW frames.
SBIFS_S = 1.0e-6

#: Control-PHY sensitivity: SSW frames below this SNR are not decoded.
SSW_MIN_SNR_DB = CONTROL_MCS.min_snr_db


@dataclass
class SectorMeasurement:
    """One decoded SSW frame during a sweep."""

    sector_index: int
    snr_db: float


@dataclass
class SweepResult:
    """Outcome of one directional sweep (ISS or RSS)."""

    measurements: List[SectorMeasurement] = field(default_factory=list)

    @property
    def heard(self) -> int:
        return len(self.measurements)

    def best(self) -> Optional[SectorMeasurement]:
        if not self.measurements:
            return None
        return max(self.measurements, key=lambda m: m.snr_db)


@dataclass
class TrainingResult:
    """Outcome of a full SLS exchange between two devices."""

    success: bool
    initiator_sector: Optional[int]
    responder_sector: Optional[int]
    initiator_sweep: SweepResult
    responder_sweep: SweepResult
    duration_s: float
    link_snr_db: Optional[float]

    def summary(self) -> str:  # pragma: no cover - cosmetic
        if not self.success:
            return "SLS failed: no sector pair decodable"
        return (
            f"SLS ok: sectors ({self.initiator_sector}, {self.responder_sector}), "
            f"{self.duration_s * 1e3:.2f} ms, link SNR {self.link_snr_db:.1f} dB"
        )


class SectorSweepTrainer:
    """Runs SLS between two devices over a (possibly reflected) channel.

    Args:
        budget: Link budget for SNR computation.
        tracer: Optional ray tracer; with one, training operates on the
            combined multipath channel, so a blocked LOS makes training
            converge onto a reflection — the paper's Figure 5 scenario.
        snr_noise_std_db: Estimation noise per SSW measurement.
        rng: Randomness source.
    """

    def __init__(
        self,
        budget: LinkBudget = LinkBudget(),
        tracer: Optional[RayTracer] = None,
        snr_noise_std_db: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.budget = budget
        self.tracer = tracer
        self.snr_noise_std_db = snr_noise_std_db
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # -- channel evaluation ------------------------------------------------

    def _gain_pair_db(
        self,
        tx: RadioDevice,
        tx_entry: CodebookEntry,
        rx: RadioDevice,
        rx_entry: CodebookEntry,
    ) -> float:
        """Coupling (dB) for an explicit TX/RX pattern pair."""
        from repro.analysis.dbmath import power_sum_db

        def tx_gain(toward: Vec2) -> float:
            return tx_entry.pattern.gain_dbi(
                (toward - tx.position).angle() - tx.orientation_rad
            )

        def rx_gain(toward: Vec2) -> float:
            return rx_entry.pattern.gain_dbi(
                (toward - rx.position).angle() - rx.orientation_rad
            )

        if self.tracer is None:
            distance = tx.position.distance_to(rx.position)
            return (
                tx_gain(rx.position)
                + rx_gain(tx.position)
                - self.budget.propagation_loss_db(distance)
                - self.budget.implementation_loss_db
            )
        paths = self.tracer.trace(tx.position, rx.position)
        if not paths:
            return -300.0
        contributions = []
        for path in paths:
            departure = tx.position + Vec2.unit(path.departure_angle_rad())
            arrival = rx.position + Vec2.unit(path.arrival_angle_rad())
            loss = self.budget.propagation_loss_db(path.length_m())
            loss += path.extra_loss_db()
            contributions.append(
                tx_gain(departure) + rx_gain(arrival) - loss
                - self.budget.implementation_loss_db
            )
        return power_sum_db(contributions)

    def _snr_db(
        self,
        tx: RadioDevice,
        tx_entry: CodebookEntry,
        rx: RadioDevice,
        rx_entry: CodebookEntry,
        control: bool,
    ) -> float:
        power = tx.tx_power_dbm + (tx.control_power_boost_db if control else 0.0)
        coupling = self._gain_pair_db(tx, tx_entry, rx, rx_entry)
        return power + coupling - self.budget.noise_floor_dbm()

    # -- the protocol --------------------------------------------------------

    def _sweep(
        self,
        transmitter: RadioDevice,
        listener: RadioDevice,
        listen_entry: CodebookEntry,
    ) -> SweepResult:
        """One directional sweep: TX iterates sectors, RX listens."""
        result = SweepResult()
        with obs.span("mac.beam_training.sweep", transmitter=transmitter.name):
            for entry in transmitter.codebook.directional_entries:
                snr = self._snr_db(transmitter, entry, listener, listen_entry, control=True)
                snr += float(self.rng.normal(0.0, self.snr_noise_std_db))
                if snr >= SSW_MIN_SNR_DB:
                    result.measurements.append(SectorMeasurement(entry.index, snr))
        if obs.STATE.metrics:
            obs.add("mac.beam_training.sweeps")
            obs.add(
                "mac.beam_training.sectors_swept",
                len(transmitter.codebook.directional_entries),
            )
        return result

    def train(self, initiator: RadioDevice, responder: RadioDevice) -> TrainingResult:
        """Run the full SLS and apply the chosen sectors to the devices.

        The responder listens through its first quasi-omni pattern
        during the ISS (and vice versa during the RSS), as the devices
        under test do during discovery.
        """
        with obs.span(
            "mac.beam_training.sls",
            initiator=initiator.name,
            responder=responder.name,
        ):
            return self._train(initiator, responder)

    def _train(self, initiator: RadioDevice, responder: RadioDevice) -> TrainingResult:
        resp_listen = (
            responder.codebook.quasi_omni_entries[0]
            if responder.codebook.quasi_omni_entries
            else responder.active_beam
        )
        init_listen = (
            initiator.codebook.quasi_omni_entries[0]
            if initiator.codebook.quasi_omni_entries
            else initiator.active_beam
        )
        iss = self._sweep(initiator, responder, resp_listen)
        rss = self._sweep(responder, initiator, init_listen)
        sectors_total = len(initiator.codebook.directional_entries) + len(
            responder.codebook.directional_entries
        )
        duration = sectors_total * (SSW_FRAME_S + SBIFS_S) + 2 * SSW_FRAME_S

        best_init = iss.best()
        best_resp = rss.best()
        if best_init is None or best_resp is None:
            return TrainingResult(
                success=False,
                initiator_sector=None,
                responder_sector=None,
                initiator_sweep=iss,
                responder_sweep=rss,
                duration_s=duration,
                link_snr_db=None,
            )
        init_entry = initiator.codebook.entry(best_init.sector_index)
        resp_entry = responder.codebook.entry(best_resp.sector_index)
        initiator.select_beam(init_entry)
        responder.select_beam(resp_entry)
        link_snr = self._snr_db(initiator, init_entry, responder, resp_entry, control=False)
        return TrainingResult(
            success=True,
            initiator_sector=best_init.sector_index,
            responder_sector=best_resp.sector_index,
            initiator_sweep=iss,
            responder_sweep=rss,
            duration_s=duration,
            link_snr_db=link_snr,
        )

    def oracle_snr_db(self, initiator: RadioDevice, responder: RadioDevice) -> float:
        """Best achievable link SNR over all sector pairs (exhaustive).

        The reference SLS is compared against: a real SLS measures each
        side against a quasi-omni listener, so it can miss the jointly
        best pair.  The gap is the SLS suboptimality the tests bound.
        """
        best = -math.inf
        for ie in initiator.codebook.directional_entries:
            for re in responder.codebook.directional_entries:
                best = max(best, self._snr_db(initiator, ie, responder, re, control=False))
        return best
