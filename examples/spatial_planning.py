#!/usr/bin/env python3
"""Spatial-reuse planning: conflict graphs, scheduling, coverage maps.

Section 5 of the paper distills its measurements into design
principles; this example applies the library modules that implement
them to a four-link office floor:

1. compute every link's interference margin through the full model
   (side lobes + up to second-order reflections);
2. build the conflict graph and a greedy concurrent-transmission
   schedule (how much airtime the interference really costs);
3. apply transmit power control and show the conflict graph shrinking;
4. print an ASCII coverage map of one dock's beam in the room.

Run:  python examples/spatial_planning.py
"""

import math

from repro.core.spatial import (
    Link,
    apply_power_control,
    conflict_graph,
    coverage_map,
    greedy_schedule,
    link_margins,
    recommend_mac_behavior,
)
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.geometry.room import Room
from repro.geometry.vec import Vec2
from repro.mac.coupling import DeviceCoupling
from repro.phy.channel import LinkBudget
from repro.phy.raytracing import RayTracer

LINK_SPECS = [
    ("a", Vec2(0.5, 0.5), Vec2(3.5, 0.7)),
    ("b", Vec2(5.0, 0.5), Vec2(8.5, 0.7)),   # collinear with link a
    ("c", Vec2(0.5, 4.5), Vec2(3.5, 4.3)),
    ("d", Vec2(5.0, 4.5), Vec2(8.5, 4.3)),   # collinear with link c
]


def build_world():
    room = Room.rectangular(9.0, 5.0, materials=["brick", "glass", "drywall", "brick"])
    tracer = RayTracer(room, max_order=2)
    links = []
    devices = {}
    for i, (name, dock_pos, laptop_pos) in enumerate(LINK_SPECS):
        dock = make_d5000_dock(name=f"dock-{name}", position=dock_pos, unit_seed=i + 1)
        laptop = make_e7440_laptop(
            name=f"laptop-{name}", position=laptop_pos, unit_seed=i + 60
        )
        dock.orientation_rad = (laptop_pos - dock_pos).angle()
        laptop.orientation_rad = (dock_pos - laptop_pos).angle()
        dock.train_toward(laptop.position)
        laptop.train_toward(dock.position)
        links.append(Link(tx=laptop, rx=dock))
        devices[dock.name] = dock
        devices[laptop.name] = laptop
    coupling = DeviceCoupling(devices, budget=LinkBudget(), tracer=tracer)
    return room, tracer, links, coupling


def ascii_map(xs, ys, snr, device_pos) -> str:
    glyphs = " .:-=+*#%@"
    rows = []
    for j in range(len(ys) - 1, -1, -1):
        row = []
        for i in range(len(xs)):
            value = snr[j, i]
            if math.isinf(value) and value > 0:
                row.append("D")  # the device itself
                continue
            if math.isinf(value):
                row.append(" ")
                continue
            level = min(1.0, max(0.0, (value + 10.0) / 40.0))
            row.append(glyphs[int(level * (len(glyphs) - 1))])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    room, tracer, links, coupling = build_world()
    print("Four D5000 links in a 9 x 5 m office (brick/glass/drywall).")
    print()
    print("Interference margins (through side lobes and reflections):")
    for row in link_margins(links, coupling):
        print(f"  {row.aggressor:>10} -> {row.victim:<22} margin {row.margin_db:6.1f} dB")

    edges = conflict_graph(links, coupling)
    groups = greedy_schedule(links, coupling)
    print()
    print(f"conflict graph edges: {edges or 'none'}")
    print(f"greedy schedule: {groups}")
    print(f"airtime division factor: {len(groups)}x")

    print()
    print("Applying transmit power control (target SNR 20 dB)...")
    powers = apply_power_control(links, coupling)
    print(f"  chosen powers: { {k: round(v, 1) for k, v in powers.items()} } dBm")
    groups_after = greedy_schedule(links, coupling)
    print(f"  schedule after TPC: {groups_after} "
          f"({len(groups_after)}x airtime division)")

    print()
    print("Per-device MAC recommendation (Section 5, first principle):")
    for link in links:
        print(f"  {link.rx.name}: {recommend_mac_behavior(link.rx)}")

    print()
    dock = links[0].rx
    print(f"Coverage map of {dock.name}'s trained beam (D = dock, darker = more SNR):")
    xs, ys, snr = coverage_map(
        dock, LinkBudget(), bounds=(0.0, 0.0, 9.0, 5.0),
        resolution_m=0.25, tracer=tracer,
    )
    print(ascii_map(xs, ys, snr, dock.position))
    print()
    print("Note the energy beyond the main lobe: side lobes and wall")
    print("bounces are what the conflict graph is built from.")


if __name__ == "__main__":
    main()
