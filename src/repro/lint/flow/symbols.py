"""Project-wide symbol table for the whole-program lint passes.

The per-file rules (RL001-RL008) see one module at a time; the flow
passes need to answer questions like "which function does this call
resolve to?" and "what unit does that function return?" across module
boundaries.  This module parses every file once and builds:

* :class:`ModuleInfo` — per-module imports, top-level functions,
  classes/methods, and module-level assignments;
* :class:`FunctionInfo` — one entry per function or method, with its
  parameters, decorators, and any ``# replint: unit=...`` annotation
  on the ``def`` line;
* :class:`SymbolTable` — the project index, including the alias map
  that makes re-exported names (``from repro.phy.channel import
  LinkBudget`` in ``repro/phy/__init__.py``) resolve to their defining
  module.

Only statically-resolvable structure is modeled: top-level functions,
classes and their methods.  Functions nested inside other functions
are deliberately out of scope — they cannot be called across modules.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.engine import ImportMap, module_name_for

#: ``# replint: unit=dB`` / ``unit=linear`` annotation on a source line.
UNIT_ANNOTATION_RE = re.compile(r"#\s*replint:\s*unit=([A-Za-z\-]+)")

#: ``# replint: shape=(n,)`` / ``shape=scalar`` / ``shape=input``
#: annotation — the shape contract consumed by the --vec pass (RL036)
#: and the runtime shape checker in :mod:`repro.sanitize`.  May share
#: a comment with ``unit=``: ``# replint: unit=dBi shape=(points,)``.
SHAPE_ANNOTATION_RE = re.compile(r"#\s*replint:[^\n]*?\bshape=([^\s#]+)")

#: ``# replint: dtype=float32`` — blesses a deliberate dtype narrowing
#: or complex→real truncation on the annotated line (RL032).
DTYPE_ANNOTATION_RE = re.compile(r"#\s*replint:[^\n]*?\bdtype=([A-Za-z0-9_]+)")


@dataclass
class ParamInfo:
    """One formal parameter of a function."""

    name: str
    annotation: str = ""
    has_default: bool = False


@dataclass
class FunctionInfo:
    """A top-level function or a method, addressable by qualname."""

    qualname: str  #: e.g. ``repro.phy.channel.LinkBudget.snr_db``
    module: str  #: defining module, e.g. ``repro.phy.channel``
    name: str
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    params: List[ParamInfo] = field(default_factory=list)
    class_name: Optional[str] = None
    decorators: Tuple[str, ...] = ()
    #: Declared return unit from a ``# replint: unit=...`` def-line
    #: annotation ("" when absent).
    unit_annotation: str = ""
    #: Declared return-shape contract from a ``# replint: shape=...``
    #: def-line annotation ("" when absent).
    shape_annotation: str = ""
    #: Source text of the ``->`` return annotation ("" when absent).
    return_annotation: str = ""

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_property(self) -> bool:
        return "property" in self.decorators or "cached_property" in self.decorators

    def param(self, name: str) -> Optional[ParamInfo]:
        for p in self.params:
            if p.name == name:
                return p
        return None

    #: Parameters excluding a leading ``self``/``cls`` for methods.
    @property
    def call_params(self) -> List[ParamInfo]:
        if self.is_method and self.params and self.params[0].name in ("self", "cls"):
            return self.params[1:]
        return self.params


@dataclass
class ClassInfo:
    """A top-level class: its methods and textual base-class names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: Tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One parsed project module."""

    name: str
    rel_path: str
    source: str
    tree: ast.Module
    imports: ImportMap
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: line number -> declared unit from ``# replint: unit=...``.
    unit_annotations: Dict[int, str] = field(default_factory=dict)
    #: line number -> declared shape from ``# replint: shape=...``.
    shape_annotations: Dict[int, str] = field(default_factory=dict)
    #: line number -> blessed dtype from ``# replint: dtype=...``.
    dtype_annotations: Dict[int, str] = field(default_factory=dict)
    lines: List[str] = field(default_factory=list)


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Call):
        return _dotted(node.func)
    if isinstance(node, ast.Subscript):  # Optional[Generator] etc.
        return _dotted(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ""


def _params_of(node: ast.AST) -> List[ParamInfo]:
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    out: List[ParamInfo] = []
    n_defaults = len(args.defaults)
    for i, arg in enumerate(ordered):
        out.append(
            ParamInfo(
                name=arg.arg,
                annotation=_dotted(arg.annotation) if arg.annotation else "",
                has_default=i >= len(ordered) - n_defaults,
            )
        )
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        out.append(
            ParamInfo(
                name=arg.arg,
                annotation=_dotted(arg.annotation) if arg.annotation else "",
                has_default=default is not None,
            )
        )
    return out


def _scan_annotations(lines: List[str], pattern: "re.Pattern") -> Dict[int, str]:
    out: Dict[int, str] = {}
    for lineno, text in enumerate(lines, start=1):
        match = pattern.search(text)
        if match:
            out[lineno] = match.group(1)
    return out


class SymbolTable:
    """Index of every module, class, and function in the project."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Re-export / alias map: ``repro.phy.LinkBudget`` ->
        #: ``repro.phy.channel.LinkBudget`` (from module-level
        #: from-imports, most importantly ``__init__.py`` re-exports).
        self.aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_module(self, rel_path: str, source: str, tree: ast.Module) -> ModuleInfo:
        name = module_name_for(pathlib.PurePosixPath(rel_path))
        lines = source.splitlines()
        info = ModuleInfo(
            name=name,
            rel_path=rel_path,
            source=source,
            tree=tree,
            imports=ImportMap.scan(tree),
            unit_annotations=_scan_annotations(lines, UNIT_ANNOTATION_RE),
            shape_annotations=_scan_annotations(lines, SHAPE_ANNOTATION_RE),
            dtype_annotations=_scan_annotations(lines, DTYPE_ANNOTATION_RE),
            lines=lines,
        )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._function_info(info, node, class_name=None)
                info.functions[fn.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{name}.{node.name}",
                    module=name,
                    name=node.name,
                    node=node,
                    bases=tuple(_dotted(b) for b in node.bases if _dotted(b)),
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._function_info(info, item, class_name=node.name)
                        cls.methods[fn.name] = fn
                        self.functions[fn.qualname] = fn
                info.classes[node.name] = cls
                self.classes[cls.qualname] = cls
        # Module-level from-imports become aliases so re-exported names
        # resolve to their defining module.
        for local, origin in info.imports.names.items():
            self.aliases[f"{name}.{local}"] = origin
        self.modules[name] = info
        return info

    def _function_info(
        self, module: ModuleInfo, node: ast.AST, class_name: Optional[str]
    ) -> FunctionInfo:
        prefix = f"{module.name}.{class_name}." if class_name else f"{module.name}."
        decorators = tuple(
            _dotted(d).rsplit(".", 1)[-1] for d in node.decorator_list if _dotted(d)
        )
        returns = ""
        if node.returns is not None:
            try:
                returns = ast.unparse(node.returns)
            except (ValueError, AttributeError):  # pragma: no cover
                returns = _dotted(node.returns)
        # A multi-line signature may carry the annotation on any line
        # between ``def`` and the first body statement (typically the
        # closing ``) -> np.ndarray:`` line).
        shape_annotation = ""
        body_start = node.body[0].lineno if node.body else node.lineno + 1
        for lineno in range(node.lineno, body_start):
            if lineno in module.shape_annotations:
                shape_annotation = module.shape_annotations[lineno]
                break
        return FunctionInfo(
            qualname=f"{prefix}{node.name}",
            module=module.name,
            name=node.name,
            node=node,
            params=_params_of(node),
            class_name=class_name,
            decorators=decorators,
            unit_annotation=module.unit_annotations.get(node.lineno, ""),
            shape_annotation=shape_annotation,
            return_annotation=returns,
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve_alias(self, dotted: str, _depth: int = 0) -> str:
        """Follow the alias map (re-exports) to a canonical dotted name."""
        if _depth > 8 or not dotted:
            return dotted
        if dotted in self.aliases:
            return self.resolve_alias(self.aliases[dotted], _depth + 1)
        # ``repro.phy.LinkBudget.snr_db`` where the class itself is the
        # re-exported alias: rewrite the longest aliased prefix.
        head, _, tail = dotted.rpartition(".")
        if head and head in self.aliases and tail:
            return self.resolve_alias(f"{self.resolve_alias(head, _depth + 1)}.{tail}", _depth + 1)
        return dotted

    def function(self, dotted: str) -> Optional[FunctionInfo]:
        """Look up a function/method by (possibly aliased) dotted name.

        A dotted name resolving to a class yields that class's
        ``__init__`` so constructor call sites bind like calls.
        """
        dotted = self.resolve_alias(dotted)
        fn = self.functions.get(dotted)
        if fn is not None:
            return fn
        cls = self.classes.get(dotted)
        if cls is not None:
            return cls.methods.get("__init__")
        return None

    def class_info(self, dotted: str) -> Optional[ClassInfo]:
        return self.classes.get(self.resolve_alias(dotted))

    def method_on(self, cls: ClassInfo, name: str, _depth: int = 0) -> Optional[FunctionInfo]:
        """Resolve a method by name on a class, walking textual bases."""
        if name in cls.methods:
            return cls.methods[name]
        if _depth > 8:
            return None
        module = self.modules.get(cls.module)
        for base in cls.bases:
            dotted = base
            if module is not None and "." not in base:
                # A bare base name refers either to a class in the same
                # module or to a from-imported one.
                if base in module.classes:
                    dotted = f"{cls.module}.{base}"
                else:
                    dotted = module.imports.origin_of(base) or base
            base_cls = self.class_info(dotted)
            if base_cls is not None and base_cls is not cls:
                found = self.method_on(base_cls, name, _depth + 1)
                if found is not None:
                    return found
        return None


def build_symbol_table(files: List[Tuple[str, str]]) -> SymbolTable:
    """Build a :class:`SymbolTable` from ``(rel_path, source)`` pairs.

    Unparseable files are skipped — the per-file engine already
    reports them as RL000.
    """
    table = SymbolTable()
    for rel_path, source in files:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        table.add_module(rel_path, source, tree)
    return table
