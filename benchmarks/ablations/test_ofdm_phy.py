"""Ablation: what if the devices used the 802.11ad OFDM PHY?

The D5000's reported rates match the single-carrier table; OFDM
(MCS 13-24) was the standard's high-end option that consumer hardware
skipped.  This ablation re-runs the MCS-vs-distance ladder with the
OFDM table to quantify what the cost-effective design left behind —
and where it would not have mattered at all.
"""


from repro.experiments.range_vs_distance import link_snr_db
from repro.phy.mcs import MCS_TABLE, OFDM_MCS_TABLE, select_mcs


def run_ladder():
    rows = []
    for distance in (1.0, 2.0, 4.0, 8.0, 12.0, 16.0):
        snr = link_snr_db(distance)
        sc = select_mcs(snr, max_index=12, table=MCS_TABLE)
        ofdm = select_mcs(snr, max_index=24, table=OFDM_MCS_TABLE)
        rows.append((distance, snr, sc, ofdm))
    return rows


def test_ofdm_vs_single_carrier(benchmark, report):
    rows = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    report.add("Ablation: single-carrier vs OFDM PHY over distance")
    report.add(f"{'d (m)':>6} {'SNR dB':>7} {'SC rate':>10} {'OFDM rate':>10} {'gain':>6}")
    for d, snr, sc, ofdm in rows:
        sc_r = sc.phy_rate_bps if sc else 0.0
        of_r = ofdm.phy_rate_bps if ofdm else 0.0
        gain = of_r / sc_r if sc_r else float("nan")
        report.add(
            f"{d:6.1f} {snr:7.1f} {sc_r / 1e9:10.2f} {of_r / 1e9:10.2f} {gain:6.2f}"
        )

    # At short range OFDM's dense constellations buy a large PHY-rate
    # premium...
    d, snr, sc, ofdm = rows[0]
    assert ofdm.phy_rate_bps > 1.3 * sc.phy_rate_bps
    # ...which TCP could not even use (GigE caps at 940 mbps), matching
    # the paper's implicit account of why consumer devices skipped it.
    # At long range the SNR only supports low orders and the advantage
    # collapses.
    d, snr, sc, ofdm = rows[-1]
    if sc is not None and ofdm is not None:
        assert ofdm.phy_rate_bps < 1.3 * sc.phy_rate_bps
    # Both tables die at about the same distance (thresholds dominate).
    sc_alive = [d for d, _, sc, _ in rows if sc is not None]
    ofdm_alive = [d for d, _, _, of in rows if of is not None]
    assert abs(max(sc_alive) - max(ofdm_alive)) <= 4.0
