"""Table 1: frame periodicities of the D5000 and WiHD systems.

Paper values: D5000 device discovery 102.4 ms, D5000 beacon 1.1 ms,
WiHD device discovery 20 ms, WiHD beacon 0.224 ms.  All four are
measured from simulated captures the same way the paper measured them
from oscilloscope traces.
"""

import numpy as np
import pytest

from repro.core.frames import FrameDetector, estimate_periodicity_s
from repro.experiments.frame_level import (
    CAPTURE_DETECTION_THRESHOLD_V,
    capture_with_vubiq,
    run_idle_wigig,
    run_unassociated_dock,
    run_wihd_stream,
)
from repro.mac.frames import FrameKind

PAPER_VALUES_S = {
    "D5000 Device Discovery Frame": 102.4e-3,
    "D5000 Beacon Frame": 1.1e-3,
    "WiHD Device Discovery Frame": 20e-3,
    "WiHD Beacon Frame": 0.224e-3,
}


def measure_all_periodicities():
    measured = {}

    idle = run_idle_wigig(duration_s=0.03)
    trace = capture_with_vubiq(idle, 0.0, 0.03)
    frames = FrameDetector(
        threshold_v=CAPTURE_DETECTION_THRESHOLD_V, merge_gap_s=5e-6
    ).detect(trace)
    measured["D5000 Beacon Frame"] = estimate_periodicity_s(frames)

    unassoc = run_unassociated_dock(duration_s=0.45)
    disc = sorted(
        r.start_s for r in unassoc.medium.history if r.kind == FrameKind.DISCOVERY
    )
    measured["D5000 Device Discovery Frame"] = float(np.median(np.diff(disc)))

    wihd_idle = run_wihd_stream(duration_s=0.01, video_rate_bps=0.0)
    beacons = sorted(
        r.start_s for r in wihd_idle.medium.history if r.kind == FrameKind.BEACON
    )
    measured["WiHD Beacon Frame"] = float(np.median(np.diff(beacons)))

    from repro.experiments.common import build_wihd_link_setup
    from repro.mac.wihd import WiHDLink

    setup = build_wihd_link_setup(video_rate_bps=0.0)
    WiHDLink(
        setup.sim,
        setup.medium,
        transmitter=setup.medium.station(setup.tx.name),
        receiver=setup.medium.station(setup.rx.name),
        video_rate_bps=0.0,
        paired=False,
    )
    setup.run(0.1)
    disc = sorted(
        r.start_s
        for r in setup.medium.history
        if r.kind == FrameKind.DISCOVERY
    )
    measured["WiHD Device Discovery Frame"] = float(np.median(np.diff(disc)))
    return measured


def test_table1_periodicities(benchmark, report):
    measured = benchmark.pedantic(measure_all_periodicities, rounds=1, iterations=1)
    report.add("Table 1 - frame periodicity (paper vs measured)")
    report.add(f"{'frame type':>34} {'paper':>10} {'measured':>10}")
    for name, paper in PAPER_VALUES_S.items():
        got = measured[name]
        report.add(f"{name:>34} {paper * 1e3:9.3f}ms {got * 1e3:9.3f}ms")
        assert got == pytest.approx(paper, rel=0.05), name
