#!/usr/bin/env python3
"""Coexistence study: how far apart do a WiGig link and a WiHD link
need to be?

Runs a scaled-down version of the paper's Figure 22 sweep (two D5000
docking links plus a blindly-transmitting WiHD pair on the same
channel) and derives a minimum-separation recommendation from the
measured link utilization and retransmission counts.

Run:  python examples/interference_study.py            (quick)
      python examples/interference_study.py --full     (finer sweep)
"""

import sys

from repro.core.interference import high_interference_regime_m
from repro.experiments.interference import (
    interference_free_baseline,
    run_interference_point,
)


def main() -> None:
    full = "--full" in sys.argv
    distances = (
        [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
        if full
        else [0.0, 1.0, 2.0, 3.0]
    )
    duration = 0.3 if full else 0.2

    print("Measuring the interference-free baseline...")
    base = interference_free_baseline(duration_s=duration)
    print(f"  utilization {base.utilization * 100:.0f}%, "
          f"link rate {base.link_rate_bps / 1e9:.2f} Gbps")
    print()
    print("Sweeping WiHD separation (blind transmitter, same channel):")
    print(f"{'d (m)':>6} {'util %':>7} {'rate Gbps':>10} {'retx':>6}")
    points = []
    for i, d in enumerate(distances):
        p = run_interference_point(d, duration_s=duration, seed=10 + i)
        points.append(p)
        print(f"{d:6.1f} {p.utilization * 100:7.1f} "
              f"{p.link_rate_bps / 1e9:10.2f} {p.retransmissions:6d}")

    regime = high_interference_regime_m(points, base.utilization, margin=0.10)
    print()
    if regime > 0:
        print(f"High-interference regime extends to ~{regime:.1f} m.")
        print(f"Recommendation: keep uncoordinated 60 GHz systems at least "
              f"{regime + 1.0:.0f} m apart, or force them onto different "
              f"channels - side lobes make 'directional' links collide.")
    else:
        print("No significant interference detected in this sweep.")


if __name__ == "__main__":
    main()
