"""The sanctioned clock shim — the only module that reads time.

Simulation and campaign code must never call :func:`time.time`,
:func:`time.perf_counter`, etc. directly: wall-clock reads in the
physics/MAC layers are nondeterminism bugs (lint rule RL002), and
clock reads inside cache-keyed cells make cached results unsound
(RL022).  Observability, however, legitimately needs real timestamps
for span durations and run manifests.

This module is that single sanctioned doorway.  It is exempted *by
name* in the lint configuration (``[tool.repro-lint]
clock-modules``), so every other clock read in the tree still fires.
Code that needs time imports these helpers::

    from repro.obs import clock
    t0 = clock.perf_counter()

The indirection also gives tests one seam to monkeypatch when they
need deterministic timestamps.
"""

from __future__ import annotations

import time as _time


def wall_time() -> float:
    """Seconds since the Unix epoch (``time.time``)."""
    return _time.time()


def monotonic() -> float:
    """Monotonic seconds, arbitrary epoch (``time.monotonic``)."""
    return _time.monotonic()


def perf_counter() -> float:
    """Highest-resolution monotonic seconds (``time.perf_counter``)."""
    return _time.perf_counter()


def perf_counter_ns() -> int:
    """Monotonic nanoseconds as an int — span timestamps use this."""
    return _time.perf_counter_ns()


__all__ = ["wall_time", "monotonic", "perf_counter", "perf_counter_ns"]
