"""Profiling layer: handler attribution, span self-time, top/diff.

The determinism contract under test: every count-derived field of a
profile (handler calls, span counts) is identical across repeated runs
and across ``workers=1`` vs ``workers=N``, while time fields are free
to vary — ``strip_time_fields`` projects them away and the digests
hash only the remainder.
"""

import functools
import json
import os

import pytest

from repro import obs
from repro.campaign.runner import CampaignRunner, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import load_manifest, write_run
from repro.campaign.verify import canonical_profile, verify_campaign
from repro.cli import main
from repro.mac.simulator import Simulator
from repro.obs.prof import (
    ProfileAccumulator,
    diff_manifests,
    handler_qualname,
    merge_profile,
    profile_digest,
    render_diff,
    render_top,
    span_aggregate,
    strip_time_fields,
    top_rows,
)

DES = "tests.campaign_cells:des_cell"


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    os.environ.pop(obs.OBS_ENV, None)
    yield
    obs.disable()
    obs.reset()
    os.environ.pop(obs.OBS_ENV, None)


def des_campaign(ticks=(30, 60), seeds=(0, 1)):
    return CampaignSpec(
        name="des-prof",
        experiment=DES,
        grid={"ticks": tuple(ticks)},
        seeds=seeds,
    )


class TestHandlerQualname:
    def test_plain_function(self):
        def tick():
            pass

        assert handler_qualname(tick).endswith("test_plain_function.<locals>.tick")

    def test_bound_method(self):
        class Station:
            def beacon(self):
                pass

        name = handler_qualname(Station().beacon)
        assert name.endswith("Station.beacon")

    def test_partial_unwraps(self):
        def fire(arg):
            pass

        name = handler_qualname(functools.partial(fire, 1))
        assert name.startswith("partial(") and "fire" in name

    def test_callable_instance_falls_back_to_type(self):
        class Handler:
            def __call__(self):
                pass

        assert handler_qualname(Handler()) == "Handler"


class TestProfileAccumulator:
    def test_empty_snapshot_is_none(self):
        assert ProfileAccumulator().snapshot() is None

    def test_record_aggregates_per_name(self):
        acc = ProfileAccumulator()
        acc.record("b", 100)
        acc.record("a", 50)
        acc.record("b", 200)
        snap = acc.snapshot()
        assert list(snap["handlers"]) == ["a", "b"]  # sorted
        assert snap["handlers"]["b"] == {"calls": 2, "total_ns": 300}
        assert snap["handlers"]["a"] == {"calls": 1, "total_ns": 50}

    def test_reset_clears(self):
        acc = ProfileAccumulator()
        acc.record("a", 1)
        acc.reset()
        assert acc.snapshot() is None


class TestMergeProfile:
    def test_merges_handlers_and_spans(self):
        base = {}
        merge_profile(base, {"handlers": {"h": {"calls": 2, "total_ns": 10}}})
        merge_profile(base, {"handlers": {"h": {"calls": 3, "total_ns": 5}}})
        merge_profile(
            base, {"spans": {"s": {"count": 1, "total_us": 4.0, "self_us": 2.0}}}
        )
        assert base["handlers"]["h"] == {"calls": 5, "total_ns": 15}
        assert base["spans"]["s"] == {"count": 1, "total_us": 4.0, "self_us": 2.0}

    def test_empty_snapshot_is_noop(self):
        base = {"handlers": {"h": {"calls": 1, "total_ns": 1}}}
        assert merge_profile(base, None) is base
        assert base["handlers"]["h"]["calls"] == 1


def _span(name, ts, dur, pid=0, tid=0):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur, "pid": pid, "tid": tid}


class TestSpanAggregate:
    def test_nested_child_charged_to_parent(self):
        events = [
            _span("outer", 0.0, 100.0),
            _span("inner", 10.0, 30.0),
        ]
        agg = span_aggregate(events)
        assert agg["outer"] == {"count": 1, "total_us": 100.0, "self_us": 70.0}
        assert agg["inner"] == {"count": 1, "total_us": 30.0, "self_us": 30.0}

    def test_siblings_do_not_nest(self):
        events = [_span("a", 0.0, 10.0), _span("b", 10.0, 5.0)]
        agg = span_aggregate(events)
        assert agg["a"]["self_us"] == 10.0
        assert agg["b"]["self_us"] == 5.0

    def test_separate_timelines_never_nest(self):
        # Same instants, different (pid, tid): full self-time for both.
        events = [
            _span("a", 0.0, 100.0, pid=0),
            _span("b", 10.0, 30.0, pid=1),
        ]
        agg = span_aggregate(events)
        assert agg["a"]["self_us"] == 100.0
        assert agg["b"]["self_us"] == 30.0

    def test_non_complete_events_ignored(self):
        events = [
            _span("a", 0.0, 10.0),
            {"name": "obs.dropped_spans", "ph": "C", "ts": 10.0, "args": {}},
        ]
        assert list(span_aggregate(events)) == ["a"]


class TestDeterminismProjection:
    def test_strip_time_fields_keeps_counts(self):
        profile = {
            "handlers": {"h": {"calls": 3, "total_ns": 123}},
            "spans": {"s": {"count": 2, "total_us": 9.0, "self_us": 4.0}},
        }
        stripped = strip_time_fields(profile)
        assert stripped == {
            "handlers": {"h": {"calls": 3}},
            "spans": {"s": {"count": 2}},
        }

    def test_digest_ignores_time_varies_with_counts(self):
        a = {"handlers": {"h": {"calls": 3, "total_ns": 100}}}
        b = {"handlers": {"h": {"calls": 3, "total_ns": 999}}}
        c = {"handlers": {"h": {"calls": 4, "total_ns": 100}}}
        assert profile_digest(a) == profile_digest(b)
        assert profile_digest(a) != profile_digest(c)


class TestSimulatorAttribution:
    def test_handlers_attributed_by_qualname(self):
        obs.enable(metrics=True, profile=True)
        obs.begin_cell()
        sim = Simulator(seed=0)
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) < 7:
                sim.schedule(1e-3, tick)

        sim.schedule(1e-3, tick)
        sim.run_until(1.0)
        snap = obs.profile_snapshot()
        (name,) = [n for n in snap["handlers"] if n.endswith("<locals>.tick")]
        assert snap["handlers"][name]["calls"] == 7
        assert snap["handlers"][name]["total_ns"] >= 0

    def test_disabled_profiling_records_nothing(self):
        obs.enable(metrics=True, profile=False)
        obs.begin_cell()
        sim = Simulator(seed=0)
        sim.schedule(1e-3, lambda: None)
        sim.run_until(1.0)
        assert obs.profile_snapshot() is None


class TestCampaignProfile:
    def test_profile_merged_into_manifest(self, tmp_path):
        result = run_campaign(des_campaign(), profile=True, trace=True)
        profile = result.telemetry.profile
        assert profile is not None
        handler_calls = [
            data["calls"]
            for name, data in profile["handlers"].items()
            if name.endswith("<locals>.tick")
        ]
        # 4 cells: ticks 30 and 60 across two seeds.
        assert sum(handler_calls) == 2 * (30 + 60)
        assert profile["spans"]["mac.simulator.run"]["count"] == 4
        out = write_run(result, tmp_path / "run")
        manifest = load_manifest(out)
        assert manifest["schema_version"] == 3
        assert manifest["profile"] == profile

    def test_serial_and_parallel_profiles_count_identical(self):
        spec = des_campaign(ticks=(20, 40, 60), seeds=(0, 1))
        serial = CampaignRunner(spec, workers=1, profile=True, trace=True).run()
        parallel = CampaignRunner(
            spec, workers=3, shuffle_seed=7, profile=True, trace=True
        ).run()
        assert canonical_profile(serial) == canonical_profile(parallel)
        assert canonical_profile(serial)  # non-empty

    def test_verify_reports_profile_match(self):
        report = verify_campaign(
            des_campaign(ticks=(25, 50), seeds=(0,)),
            workers=2,
            audit=False,
            cache_check=False,
        )
        assert report.profile_ok
        assert report.profile_serial_digest == report.profile_parallel_digest
        assert report.ok
        assert report.to_dict()["profile_ok"] is True


class TestTopRows:
    def test_ordering_is_calls_then_name(self):
        profile = {
            "handlers": {
                "b": {"calls": 5, "total_ns": 1},
                "a": {"calls": 5, "total_ns": 2},
                "c": {"calls": 9, "total_ns": 3},
            },
            "spans": {"s": {"count": 1, "total_us": 2.0, "self_us": 1.0}},
        }
        rows = top_rows(profile)
        assert [(r["kind"], r["name"]) for r in rows] == [
            ("handler", "c"),
            ("handler", "a"),
            ("handler", "b"),
            ("span", "s"),
        ]

    def test_shares_sum_to_one_per_section(self):
        profile = {
            "handlers": {
                "a": {"calls": 1, "total_ns": 30},
                "b": {"calls": 1, "total_ns": 70},
            }
        }
        shares = [r["share"] for r in top_rows(profile)]
        assert sum(shares) == pytest.approx(1.0)


class TestTopDiffCli:
    @pytest.fixture()
    def profiled_run(self, tmp_path):
        out = tmp_path / "run-a"
        result = run_campaign(des_campaign(), profile=True, trace=True)
        write_run(result, out)
        return out

    def test_top_renders_handler_and_span_tables(self, profiled_run, capsys):
        assert main(["obs", "top", str(profiled_run)]) == 0
        out = capsys.readouterr().out
        assert "event handlers (wall time per handler qualname):" in out
        assert "spans (self vs child time):" in out
        assert "profile digest:" in out
        assert "mac.simulator.run" in out

    def test_top_deterministic_across_reruns(self, tmp_path):
        digests = []
        for label in ("x", "y"):
            out = tmp_path / label
            write_run(run_campaign(des_campaign(), profile=True, trace=True), out)
            text = render_top(load_manifest(out))
            digests.append(
                [line for line in text.splitlines() if "profile digest" in line]
            )
        # Count-derived digest identical between independent runs even
        # though the measured times differ.
        assert digests[0] == digests[1]

    def test_top_without_profile_says_so(self, tmp_path, capsys):
        out = tmp_path / "plain"
        write_run(run_campaign(des_campaign()), out)
        assert main(["obs", "top", str(out)]) == 0
        assert "no profile in manifest" in capsys.readouterr().out

    def test_top_missing_manifest_exits_2(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path / "nope")]) == 2
        assert "no manifest.json" in capsys.readouterr().err

    def test_self_diff_is_count_clean_exit_0(self, profiled_run, capsys):
        assert main(["obs", "diff", str(profiled_run), str(profiled_run)]) == 0
        out = capsys.readouterr().out
        assert "0 count-derived differ" in out

    def test_diff_reports_signed_deltas_exit_1(self, profiled_run, tmp_path, capsys):
        other = tmp_path / "run-b"
        write_run(
            run_campaign(des_campaign(ticks=(30, 90)), profile=True, trace=True),
            other,
        )
        assert main(["obs", "diff", str(profiled_run), str(other)]) == 1
        out = capsys.readouterr().out
        # ticks 60 -> 90 on two seeds: +60 handler calls show up signed.
        assert "+" in out
        assert "count-derived differ" in out

    def test_diff_json_is_machine_readable(self, profiled_run, capsys):
        rc = main(
            ["obs", "diff", str(profiled_run), str(profiled_run), "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counted_changed"] == 0
        assert doc["campaign_a"] == "des-prof"

    def test_diff_missing_fields_compare_as_zero(self):
        a = {"campaign": "a", "metrics": {"counters": {"only.in.a": 5}}}
        b = {"campaign": "b", "metrics": {"counters": {"only.in.b": 3}}}
        diff = diff_manifests(a, b)
        by_name = {r["name"]: r for r in diff["rows"] if r["section"] == "counters"}
        assert by_name["only.in.a"]["delta"] == -5.0
        assert by_name["only.in.b"]["delta"] == 3.0
        assert diff["counted_changed"] == 2

    def test_timing_rows_marked_and_not_counted(self):
        a = {"campaign": "a", "timing": {"wall_clock_s": 1.0}}
        b = {"campaign": "b", "timing": {"wall_clock_s": 2.0}}
        diff = diff_manifests(a, b)
        assert diff["counted_changed"] == 0
        assert diff["changed"] == 1
        assert "(time)" in render_diff(diff)
