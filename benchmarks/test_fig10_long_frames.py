"""Figure 10: percentage of long frames versus TCP throughput.

Paper: the fraction of frames longer than ~5 us rises from near zero at
kbps loads to essentially 100% at 930+ mbps — "the higher the traffic
load, the more data aggregation".
"""


from figreport import cached_aggregation_sweep


def test_fig10_long_frame_percentage(benchmark, report):
    reports = benchmark.pedantic(cached_aggregation_sweep, rounds=1, iterations=1)
    report.add("Figure 10 - percentage of long (aggregated) frames")
    report.add(f"{'operating point':>14} {'long frames %':>14}")
    for r in reports:
        report.add(f"{r.label:>14} {r.long_fraction * 100:14.1f}")

    # kbps loads: no aggregation.
    assert reports[0].long_fraction < 0.1
    assert reports[1].long_fraction < 0.1
    # ~171 mbps: still mostly short frames (Figure 10 shows ~0-10%).
    assert reports[2].long_fraction < 0.25
    # Top end: nearly everything is aggregated.
    assert reports[-1].long_fraction > 0.9
    # The paper's overall trend: growth with throughput.
    assert reports[-1].long_fraction > reports[2].long_fraction + 0.5
