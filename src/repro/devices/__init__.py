"""Models of the paper's devices under test and measurement equipment.

* :mod:`repro.devices.base` — the :class:`RadioDevice` abstraction: an
  antenna array + codebook + position/orientation + active beam.
* :mod:`repro.devices.d5000` — the Dell D5000 docking station and the
  Latitude E7440 notebook (Wilocity 2x8 arrays, WiGig).
* :mod:`repro.devices.air3c` — the DVDO Air-3c WiHD transmitter and
  receiver (24-element irregular arrays).
* :mod:`repro.devices.vubiq` — the Vubiq down-converter + oscilloscope
  measurement receiver that overhears the links.
* :mod:`repro.devices.rotation` — the programmable rotation stage used
  for angular-profile measurements.
"""

from repro.devices.base import RadioDevice
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.devices.air3c import make_air3c_receiver, make_air3c_transmitter
from repro.devices.rotation import RotationStage
from repro.devices.vubiq import VubiqReceiver

__all__ = [
    "RadioDevice",
    "RotationStage",
    "VubiqReceiver",
    "make_air3c_receiver",
    "make_air3c_transmitter",
    "make_d5000_dock",
    "make_e7440_laptop",
]
