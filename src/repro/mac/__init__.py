"""MAC-layer substrate: discrete-event simulation of WiGig and WiHD.

The paper's frame-level findings come from overhearing two very
different MACs sharing a 60 GHz channel:

* the Dell D5000's WiGig MAC — CSMA/CA with RTS/CTS-initiated bursts
  (up to 2 ms, resembling 802.11ad TXOPs), data/ACK exchanges,
  queue-driven aggregation up to 25 us per frame, 1.1 ms beacons, and
  102.4 ms device-discovery sweeps when unassociated;
* the DVDO Air-3c's WiHD MAC — no carrier sensing at all, 0.224 ms
  receiver beacons, variable-length data frames, 20 ms discovery.

:mod:`repro.mac.simulator` provides the shared event loop, medium
model (SINR with power summing over concurrent transmitters), and the
coupling abstraction that connects the MAC to the PHY substrate.
"""

from repro.mac.frames import FrameKind, FrameRecord, WIGIG_TIMING, WIHD_TIMING
from repro.mac.simulator import (
    CouplingModel,
    FreeSpaceCoupling,
    Medium,
    Simulator,
    Station,
    StaticCoupling,
)
from repro.mac.wigig import WiGigLink, WiGigStation
from repro.mac.wihd import WiHDLink
from repro.mac.tcp import IperfFlow, TcpParameters

# NOTE: repro.mac.beam_training and repro.mac.coupling depend on the
# device models and must be imported as submodules
# (``from repro.mac.beam_training import SectorSweepTrainer``) to avoid
# a circular package import through repro.devices.
__all__ = [
    "CouplingModel",
    "FrameKind",
    "FrameRecord",
    "FreeSpaceCoupling",
    "IperfFlow",
    "Medium",
    "Simulator",
    "Station",
    "StaticCoupling",
    "TcpParameters",
    "WIGIG_TIMING",
    "WIHD_TIMING",
    "WiGigLink",
    "WiGigStation",
    "WiHDLink",
]
