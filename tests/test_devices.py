"""Unit tests for device models (D5000, E7440, Air-3c, RadioDevice)."""

import math

import numpy as np
import pytest

from repro.devices.d5000 import D5000_DISCOVERY_PATTERNS, make_d5000_dock
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind


class TestD5000:
    def test_dock_has_32_discovery_patterns(self, dock):
        assert len(dock.codebook.quasi_omni_entries) == D5000_DISCOVERY_PATTERNS

    def test_dock_has_2x8_array(self, dock):
        assert dock.array.num_elements == 16

    def test_codebook_sector_is_120deg(self, dock):
        angles = [e.steering_azimuth_rad for e in dock.codebook.directional_entries]
        assert math.degrees(max(angles) - min(angles)) == pytest.approx(120.0)

    def test_reproducible_per_seed(self):
        a = make_d5000_dock(unit_seed=5)
        b = make_d5000_dock(unit_seed=5)
        assert np.array_equal(
            a.active_beam.pattern.gains_dbi, b.active_beam.pattern.gains_dbi
        )

    def test_different_units_differ(self):
        a = make_d5000_dock(unit_seed=5)
        b = make_d5000_dock(unit_seed=6)
        assert not np.array_equal(
            a.active_beam.pattern.gains_dbi, b.active_beam.pattern.gains_dbi
        )

    def test_laptop_pattern_less_clean(self, dock, laptop):
        # Lid placement: the laptop's aligned side lobes are stronger.
        assert (
            laptop.active_beam.pattern.side_lobe_level_db()
            > dock.active_beam.pattern.side_lobe_level_db() - 0.5
        )


class TestAir3c:
    def test_24_elements(self, wihd_pair):
        tx, rx = wihd_pair
        assert tx.array.num_elements == 24

    def test_wider_than_d5000(self, dock, wihd_pair):
        """The WiHD system radiates much wider patterns (Section 3.2)."""
        tx, _ = wihd_pair
        assert (
            tx.active_beam.pattern.half_power_beam_width_deg()
            > dock.active_beam.pattern.half_power_beam_width_deg() + 3.0
        )

    def test_higher_tx_power(self, dock, wihd_pair):
        tx, _ = wihd_pair
        assert tx.tx_power_dbm > dock.tx_power_dbm


class TestRadioDevice:
    def test_bearing_accounts_for_orientation(self):
        dev = make_d5000_dock(position=Vec2(0, 0), orientation_rad=math.pi / 2)
        bearing = dev.bearing_to(Vec2(0, 5))  # straight up = broadside
        assert bearing == pytest.approx(0.0, abs=1e-9)

    def test_train_toward_picks_best_gain(self):
        dev = make_d5000_dock()
        target = Vec2.from_polar(3.0, math.radians(40))
        entry = dev.train_toward(target)
        bearing = dev.bearing_to(target)
        gains = [e.pattern.gain_dbi(bearing) for e in dev.codebook.directional_entries]
        assert entry.pattern.gain_dbi(bearing) == pytest.approx(max(gains))

    def test_train_beyond_sector_edge_picks_boundary_beam(self):
        # 70 degrees is outside the densest codebook coverage but still
        # reachable by the +60-degree boundary beam's main lobe.
        dev = make_d5000_dock()
        entry = dev.train_toward(Vec2.from_polar(3.0, math.radians(70)))
        assert math.degrees(entry.steering_azimuth_rad) > 40.0

    def test_select_beam_rejects_quasi_omni(self):
        dev = make_d5000_dock()
        with pytest.raises(ValueError):
            dev.select_beam(dev.codebook.quasi_omni_entries[0])

    def test_discovery_uses_subelement_pattern(self):
        dev = make_d5000_dock()
        p0 = dev.pattern_for_kind(FrameKind.DISCOVERY, subelement=0)
        p1 = dev.pattern_for_kind(FrameKind.DISCOVERY, subelement=1)
        assert not np.array_equal(p0.gains_dbi, p1.gains_dbi)

    def test_subelement_wraps_modulo(self):
        dev = make_d5000_dock()
        p = dev.pattern_for_kind(FrameKind.DISCOVERY, subelement=0)
        q = dev.pattern_for_kind(FrameKind.DISCOVERY, subelement=32)
        assert np.array_equal(p.gains_dbi, q.gains_dbi)

    def test_data_frames_use_active_beam(self):
        dev = make_d5000_dock()
        assert dev.pattern_for_kind(FrameKind.DATA) is dev.active_beam.pattern
        assert dev.pattern_for_kind(FrameKind.ACK) is dev.active_beam.pattern

    def test_beacons_use_control_pattern(self):
        dev = make_d5000_dock()
        assert dev.pattern_for_kind(FrameKind.BEACON) is not dev.active_beam.pattern

    def test_tx_power_boost_for_beacons_only(self):
        dev = make_d5000_dock()
        assert dev.tx_power_for(FrameKind.BEACON) == dev.tx_power_dbm + dev.control_power_boost_db
        assert dev.tx_power_for(FrameKind.RTS) == dev.tx_power_dbm

    def test_make_station_snapshots_beam(self):
        dev = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
        dev.train_toward(Vec2(3, 0))
        station = dev.make_station()
        assert station.name == dev.name
        assert station.data_pattern is dev.active_beam.pattern
        assert station.cca_threshold_dbm == dev.cca_threshold_dbm

    def test_tx_gain_toward_global_point(self):
        dev = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
        dev.train_toward(Vec2(3, 0))
        ahead = dev.tx_gain_dbi(Vec2(3, 0))
        behind = dev.tx_gain_dbi(Vec2(-3, 0))
        assert ahead > behind + 10.0
