"""Fixtures for the ablation benchmarks."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from figreport import FigureReport


@pytest.fixture()
def report(request):
    figure_id = "ablation_" + request.module.__name__.replace("test_", "")
    rep = FigureReport(figure_id)
    yield rep
    rep.write()
