"""Figure 16: quasi omni-directional discovery patterns of the D5000.

Paper: 32 patterns are swept; half-power beam widths reach 60 degrees,
but every pattern contains deep gaps that may prevent communication at
specific angles.
"""


from repro.experiments.beam_patterns import measure_discovery_patterns


def run_campaign():
    return measure_discovery_patterns(count=8, positions=60)


def test_fig16_quasi_omni_patterns(benchmark, report):
    measured = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    report.add("Figure 16 - quasi-omni discovery patterns (8 of 32 measured)")
    report.add(f"{'pattern':>8} {'HPBW deg':>9} {'span dB':>8}")
    hpbws, spans = [], []
    for i, m in enumerate(measured):
        hpbw = m.as_pattern().half_power_beam_width_deg()
        span = float(m.power_dbm.max() - m.power_dbm.min())
        hpbws.append(hpbw)
        spans.append(span)
        report.add(f"{i:>8} {hpbw:9.1f} {span:8.1f}")
    report.add("")
    report.add(
        f"HPBW range {min(hpbws):.0f}-{max(hpbws):.0f} deg "
        f"(paper: up to 60 deg); every pattern has deep gaps"
    )

    # Wide lobes (well beyond the ~14 deg data beams) ...
    assert max(hpbws) > 25.0
    # ... but deep gaps in every pattern.
    assert all(s > 6.0 for s in spans)
    # The patterns differ from each other (a real sweep).
    assert len({round(h, 1) for h in hpbws}) >= 3
