"""Unit tests for the WiHD (Air-3c) MAC model."""

import numpy as np
import pytest

from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind, WIHD_TIMING
from repro.mac.simulator import Medium, Simulator, Station, StaticCoupling
from repro.mac.wihd import WiHDLink, WiHDStation


def make_link(video_rate_bps=3.0e9, paired=True, seed=2):
    sim = Simulator(seed=seed)
    coupling = StaticCoupling({
        ("tx", "rx"): -50.0,
        ("rx", "tx"): -50.0,
    })
    medium = Medium(sim, coupling)
    tx = WiHDStation("tx", Vec2(0, 0))
    rx = WiHDStation("rx", Vec2(8, 0))
    medium.register(tx)
    medium.register(rx)
    link = WiHDLink(sim, medium, transmitter=tx, receiver=rx,
                    video_rate_bps=video_rate_bps, paired=paired)
    return sim, medium, link


class TestBeacons:
    def test_beacon_interval_224us(self):
        sim, medium, link = make_link(video_rate_bps=0.0)
        sim.run_until(0.01)
        beacons = sorted(
            r.start_s for r in medium.history if r.kind == FrameKind.BEACON
        )
        gaps = np.diff(beacons)
        assert np.median(gaps) == pytest.approx(WIHD_TIMING.beacon_interval_s, rel=0.01)

    def test_beacons_come_from_receiver(self):
        sim, medium, link = make_link(video_rate_bps=0.0)
        sim.run_until(0.005)
        assert all(
            r.source == "rx" for r in medium.history if r.kind == FrameKind.BEACON
        )


class TestStreaming:
    def test_idle_link_sends_no_data(self):
        sim, medium, link = make_link(video_rate_bps=0.0)
        sim.run_until(0.01)
        assert not any(r.kind == FrameKind.DATA for r in medium.history)

    def test_data_follows_beacons(self):
        sim, medium, link = make_link(video_rate_bps=2.0e9)
        sim.run_until(0.005)
        data = [r for r in medium.history if r.kind == FrameKind.DATA]
        beacons = [r for r in medium.history if r.kind == FrameKind.BEACON]
        assert data
        # Every data frame starts shortly after some beacon's end.
        beacon_ends = np.array(sorted(b.end_s for b in beacons))
        for d in data:
            idx = np.searchsorted(beacon_ends, d.start_s)
            assert idx > 0
            assert d.start_s - beacon_ends[idx - 1] < 3 * WIHD_TIMING.sifs_s

    def test_frame_duration_scales_with_rate(self):
        _, medium_low, _ = make_link(video_rate_bps=0.5e9)
        _, medium_high, _ = make_link(video_rate_bps=2.0e9)
        for medium in (medium_low, medium_high):
            pass
        sim_low, medium_low, _ = make_link(video_rate_bps=0.5e9)
        sim_low.run_until(0.01)
        sim_high, medium_high, _ = make_link(video_rate_bps=2.0e9)
        sim_high.run_until(0.01)
        low = np.median([r.duration_s for r in medium_low.history if r.kind == FrameKind.DATA])
        high = np.median([r.duration_s for r in medium_high.history if r.kind == FrameKind.DATA])
        assert high > low

    def test_frame_duration_capped(self):
        sim, medium, link = make_link(video_rate_bps=10.0e9)
        sim.run_until(0.01)
        durations = [r.duration_s for r in medium.history if r.kind == FrameKind.DATA]
        assert max(durations) <= WIHD_TIMING.max_data_frame_s + 1e-9

    def test_rate_change_to_zero_stops_data(self):
        sim, medium, link = make_link(video_rate_bps=2.0e9)
        sim.run_until(0.005)
        link.set_video_rate(0.0)
        count = sum(1 for r in medium.history if r.kind == FrameKind.DATA)
        sim.run_until(0.02)
        after = sum(1 for r in medium.history if r.kind == FrameKind.DATA)
        # At most one queued frame may still drain right at the switch.
        assert after <= count + 1

    def test_negative_video_rate_rejected(self):
        sim, medium, link = make_link()
        with pytest.raises(ValueError):
            link.set_video_rate(-1.0)


class TestNoCarrierSense:
    def test_wihd_transmits_over_busy_channel(self):
        """The defining WiHD behavior: blind transmission (Section 3.2)."""
        sim = Simulator(seed=3)
        coupling = StaticCoupling({
            ("tx", "rx"): -50.0,
            ("blocker", "tx"): -30.0,  # very loud at the WiHD TX
            ("blocker", "rx"): -30.0,
        })
        medium = Medium(sim, coupling)
        tx = WiHDStation("tx", Vec2(0, 0))
        rx = WiHDStation("rx", Vec2(8, 0))
        blocker = Station("blocker", Vec2(1, 1))
        for s in (tx, rx, blocker):
            medium.register(s)
        WiHDLink(sim, medium, transmitter=tx, receiver=rx, video_rate_bps=2e9)

        # Keep the channel continuously occupied by the blocker.
        from repro.mac.frames import FrameRecord

        def keep_busy():
            medium.transmit(FrameRecord(sim.now, 100e-6, "blocker", "", FrameKind.DATA))
            sim.schedule(100e-6, keep_busy)

        keep_busy()
        sim.run_until(0.005)
        wihd_data = [r for r in medium.history if r.source == "tx" and r.kind == FrameKind.DATA]
        assert wihd_data  # transmitted despite the loud blocker


class TestPowerControl:
    def test_power_off_silences_link(self):
        sim, medium, link = make_link(video_rate_bps=2e9)
        sim.run_until(0.005)
        link.power_off()
        count = len(medium.history)
        sim.run_until(0.02)
        # A single already-scheduled beacon/data event may land.
        assert len(medium.history) <= count + 2

    def test_power_on_resumes(self):
        sim, medium, link = make_link(video_rate_bps=2e9)
        link.power_off()
        sim.run_until(0.005)
        link.power_on()
        before = len(medium.history)
        sim.run_until(0.02)
        assert len(medium.history) > before

    def test_double_power_on_is_idempotent(self):
        sim, medium, link = make_link(video_rate_bps=0.0)
        link.power_on()
        link.power_on()
        sim.run_until(0.005)
        beacons = sorted(r.start_s for r in medium.history if r.kind == FrameKind.BEACON)
        gaps = np.diff(beacons)
        # No doubled beacon schedule.
        assert np.median(gaps) == pytest.approx(WIHD_TIMING.beacon_interval_s, rel=0.05)


class TestDiscovery:
    def test_unpaired_sends_discovery(self):
        sim, medium, link = make_link(paired=False)
        sim.run_until(0.1)
        disc = sorted(r.start_s for r in medium.history if r.kind == FrameKind.DISCOVERY)
        assert len(disc) >= 3
        gaps = np.diff(disc)
        assert np.allclose(gaps, WIHD_TIMING.discovery_interval_s)

    def test_paired_sends_no_discovery(self):
        sim, medium, link = make_link(paired=True)
        sim.run_until(0.1)
        assert not any(r.kind == FrameKind.DISCOVERY for r in medium.history)
