"""Conference-room reflection analysis (Section 4.3, Figures 4/18/19).

A single 60 GHz link operates in the 9 m x 3.25 m conference room of
Figure 4 (brick / glass / wood walls).  A rotating Vubiq receiver with
a 25 dBi horn measures the angular energy profile at the six locations
A..F.  Lobes pointing at neither link endpoint reveal reflections; the
paper finds first-order reflections everywhere and even second-order
ones (location B), and observes that the WiHD system — with its wider
patterns — produces more and larger reflection lobes than the D5000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.angular import (
    AngularProfile,
    Lobe,
    classify_lobes,
    find_lobes,
    measure_angular_profile,
)
from repro.devices.air3c import make_air3c_receiver, make_air3c_transmitter
from repro.devices.base import RadioDevice
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.devices.rotation import RotationStage
from repro.devices.vubiq import VubiqReceiver
from repro.geometry.room import Room, conference_room, measurement_locations
from repro.geometry.vec import Vec2
from repro.phy.antenna import standard_horn_25dbi
from repro.phy.channel import LinkBudget
from repro.phy.raytracing import RayTracer

#: Location labels in the order of :func:`measurement_locations`.
LOCATION_LABELS = ["A", "B", "C", "D", "E", "F"]

#: Link endpoint placement in the room, following Figure 4: the TX near
#: the top wall toward the right half, the RX near the bottom-left.
TX_POSITION = Vec2(6.5, 2.9)
RX_POSITION = Vec2(0.6, 0.55)


@dataclass
class RoomProfileResult:
    """Angular profiles and lobe classifications at all six locations."""

    system: str
    room: Room
    tx: RadioDevice
    rx: RadioDevice
    profiles: Dict[str, AngularProfile]
    lobes: Dict[str, List[Lobe]]

    def reflection_lobe_count(self) -> Dict[str, int]:
        """Reflection lobes per location (the paper's key evidence)."""
        return {
            label: sum(1 for lobe in lobes if lobe.attribution == "reflection")
            for label, lobes in self.lobes.items()
        }

    def total_reflection_lobes(self) -> int:
        return sum(self.reflection_lobe_count().values())

    def strong_reflection_lobes(self, min_relative_db: float = -12.0) -> int:
        """Reflection lobes within ``min_relative_db`` of each profile's
        peak — the "larger lobes" half of the paper's WiHD finding."""
        return sum(
            1
            for lobes in self.lobes.values()
            for lobe in lobes
            if lobe.attribution == "reflection" and lobe.relative_db >= min_relative_db
        )

    def strongest_reflection_db(self) -> float:
        """Relative level of the strongest reflection lobe anywhere."""
        levels = [
            lobe.relative_db
            for lobes in self.lobes.values()
            for lobe in lobes
            if lobe.attribution == "reflection"
        ]
        return max(levels) if levels else float("-inf")


def _build_link(system: str) -> Tuple[RadioDevice, RadioDevice]:
    """Create and train the TX/RX pair of the requested system."""
    if system == "d5000":
        rx = make_d5000_dock(position=RX_POSITION)
        tx = make_e7440_laptop(position=TX_POSITION)
    elif system == "wihd":
        tx = make_air3c_transmitter(position=TX_POSITION)
        rx = make_air3c_receiver(position=RX_POSITION)
    else:
        raise ValueError(f"unknown system {system!r}; use 'd5000' or 'wihd'")
    tx.orientation_rad = (rx.position - tx.position).angle()
    rx.orientation_rad = (tx.position - rx.position).angle()
    tx.train_toward(rx.position)
    rx.train_toward(tx.position)
    return tx, rx


#: Dynamic range for lobe extraction in the room profiles.  The paper
#: plots to -8 dB; our simulated arrays radiate less diffuse energy
#: off-axis than the real hardware (no rough-surface scattering in the
#: model), so the same lobes sit 8-12 dB deeper.  The *structure* —
#: which locations show reflection lobes, first vs second order, WiHD
#: showing more than the D5000 — is preserved; see EXPERIMENTS.md.
ROOM_LOBE_RANGE_DB = -20.0


def measure_room_profiles(
    system: str = "d5000",
    steps: int = 72,
    max_order: int = 2,
    locations: Sequence[Vec2] = (),
    lobe_range_db: float = ROOM_LOBE_RANGE_DB,
) -> RoomProfileResult:
    """Measure angular profiles at the six Figure 4 locations.

    Args:
        system: ``"d5000"`` (Figure 18) or ``"wihd"`` (Figure 19).
        steps: Rotation-stage resolution.
        max_order: Highest reflection order the tracer resolves (the
            ablation benchmark compares 1 vs 2).
        locations: Override the measurement locations (defaults to the
            paper's A..F).
        lobe_range_db: Dynamic range for lobe extraction.
    """
    room = conference_room()
    tracer = RayTracer(room, max_order=max_order)
    tx, rx = _build_link(system)
    budget = LinkBudget()

    def vubiq_factory(position: Vec2, boresight: float) -> VubiqReceiver:
        return VubiqReceiver(
            position=position,
            boresight_rad=boresight,
            antenna=standard_horn_25dbi(),
            budget=budget,
            tracer=tracer,
        )

    points = list(locations) if locations else measurement_locations()
    profiles: Dict[str, AngularProfile] = {}
    lobes: Dict[str, List[Lobe]] = {}
    endpoints = {"tx": tx.position, "rx": rx.position}
    for label, location in zip(LOCATION_LABELS, points):
        profile = measure_angular_profile(
            location,
            devices=[tx, rx],
            vubiq_factory=vubiq_factory,
            stage=RotationStage(steps=steps),
        )
        profiles[label] = profile
        lobes[label] = classify_lobes(
            find_lobes(profile, min_relative_db=lobe_range_db), location, endpoints
        )
    return RoomProfileResult(
        system=system, room=room, tx=tx, rx=rx, profiles=profiles, lobes=lobes
    )


def compare_systems(steps: int = 72) -> Tuple[RoomProfileResult, RoomProfileResult]:
    """Run both systems and return (d5000, wihd) results.

    The paper's finding: the WiHD profiles feature *more and larger*
    lobes than the D5000's, because the WiHD system is less
    directional.
    """
    return measure_room_profiles("d5000", steps=steps), measure_room_profiles(
        "wihd", steps=steps
    )
