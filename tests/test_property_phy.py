"""Property-based tests for PHY invariants (ray tracing, antennas,
blockage)."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.materials import get_material
from repro.geometry.room import Room
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2
from repro.phy.blockage import path_blockage_loss_db
from repro.phy.channel import LinkBudget
from repro.phy.raytracing import RayTracer

coords = st.floats(min_value=-8.0, max_value=8.0, allow_nan=False)
positive_coords = st.floats(min_value=0.5, max_value=8.0, allow_nan=False)


def wall_room(y=-2.0):
    return Room([Segment(Vec2(-50, y), Vec2(50, y), get_material("metal"))])


class TestRayTracingProperties:
    @given(coords, st.floats(min_value=-1.5, max_value=8.0), coords,
           st.floats(min_value=-1.5, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_reflected_path_longer_than_los(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assume(a.distance_to(b) > 0.1)
        paths = RayTracer(wall_room(), max_order=1).trace(a, b)
        los = [p for p in paths if p.is_los]
        refl = [p for p in paths if p.order == 1]
        if los and refl:
            assert refl[0].length_m() >= los[0].length_m() - 1e-9

    @given(coords, st.floats(min_value=0.0, max_value=8.0), coords,
           st.floats(min_value=0.0, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_unfolded_length_matches_image_distance(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assume(a.distance_to(b) > 0.1)
        room = wall_room(y=-2.0)
        wall = room.walls[0]
        paths = RayTracer(room, max_order=1).trace(a, b)
        refl = [p for p in paths if p.order == 1]
        if refl:
            image = wall.mirror_point(a)
            assert refl[0].length_m() == pytest.approx(image.distance_to(b), rel=1e-9)

    @given(coords, st.floats(min_value=0.0, max_value=8.0), coords,
           st.floats(min_value=0.0, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_specular_law_at_bounce(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assume(a.distance_to(b) > 0.1)
        room = wall_room(y=-2.0)
        paths = RayTracer(room, max_order=1).trace(a, b)
        refl = [p for p in paths if p.order == 1]
        if refl:
            bounce = refl[0].points[1]
            # Angle of incidence equals angle of reflection: both legs
            # make the same angle with the (horizontal) wall.
            in_dir = (bounce - a).normalized()
            out_dir = (b - bounce).normalized()
            assert abs(in_dir.y) == pytest.approx(abs(out_dir.y), abs=1e-9)
            assert in_dir.x == pytest.approx(out_dir.x, abs=1e-9)

    @given(st.floats(min_value=0.5, max_value=15.0),
           st.floats(min_value=0.5, max_value=15.0))
    @settings(max_examples=40, deadline=None)
    def test_more_orders_never_fewer_paths(self, ax, bx):
        room = Room([
            Segment(Vec2(-50, -2), Vec2(50, -2), get_material("metal")),
            Segment(Vec2(-50, 3), Vec2(50, 3), get_material("metal")),
        ])
        a, b = Vec2(-ax, 0.0), Vec2(bx, 0.0)
        assume(a.distance_to(b) > 0.1)
        counts = [
            len(RayTracer(room, max_order=order).trace(a, b)) for order in (0, 1, 2)
        ]
        assert counts[0] <= counts[1] <= counts[2]


class TestBudgetProperties:
    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_propagation_loss_monotone(self, d1, d2):
        b = LinkBudget()
        lo, hi = sorted((d1, d2))
        assert b.propagation_loss_db(lo) <= b.propagation_loss_db(hi) + 1e-9

    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.0, max_value=40.0))
    @settings(max_examples=60, deadline=None)
    def test_extra_loss_is_linear(self, d, extra):
        b = LinkBudget()
        base = b.received_power_dbm(d, 10.0, 10.0)
        assert b.received_power_dbm(d, 10.0, 10.0, extra_loss_db=extra) == pytest.approx(
            base - extra
        )


class TestBlockageProperties:
    @given(coords, coords)
    @settings(max_examples=60, deadline=None)
    def test_loss_bounded(self, px, py):
        loss = path_blockage_loss_db(Vec2(px, py), Vec2(0, 0), Vec2(4, 0))
        assert 0.0 <= loss <= 25.0

    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_loss_symmetric_about_path(self, t, offset):
        a, b = Vec2(0, 0), Vec2(4, 0)
        p_up = Vec2(4 * t, abs(offset))
        p_down = Vec2(4 * t, -abs(offset))
        assert path_blockage_loss_db(p_up, a, b) == pytest.approx(
            path_blockage_loss_db(p_down, a, b)
        )

    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_loss_monotone_in_clearance(self, t, off1, off2):
        a, b = Vec2(0, 0), Vec2(4, 0)
        near, far = sorted((off1, off2))
        loss_near = path_blockage_loss_db(Vec2(4 * t, near), a, b)
        loss_far = path_blockage_loss_db(Vec2(4 * t, far), a, b)
        assert loss_near >= loss_far - 1e-9


class TestPatternProperties:
    @given(st.integers(min_value=0, max_value=31))
    @settings(max_examples=16, deadline=None)
    def test_codebook_entries_peak_within_sector(self, index):
        from repro.devices.d5000 import make_d5000_dock

        dock = make_d5000_dock()
        entry = dock.codebook.directional_entries[index]
        # The realized peak stays within the serviceable half-space
        # (clutter can pull it off the nominal angle, but not behind
        # the array).
        peak_az, _ = entry.pattern.peak()
        assert abs(math.degrees(peak_az)) < 120.0

    @given(st.floats(min_value=-math.pi, max_value=math.pi),
           st.floats(min_value=-math.pi, max_value=math.pi))
    @settings(max_examples=40, deadline=None)
    def test_rotation_consistency(self, steer, query):
        """rotated(p)(query) == p(query - rotation) for any pattern."""
        from repro.phy.antenna import UniformLinearArray

        arr = UniformLinearArray(8, 60.48e9, rng=np.random.default_rng(0))
        pattern = arr.steered_pattern(0.3)
        rotated = pattern.rotated(steer)
        assert rotated.gain_dbi(query) == pytest.approx(
            pattern.gain_dbi(query - steer), abs=0.2
        )
