"""Human-readable summary of a traced campaign run.

``repro obs report <run-dir>`` reads the run manifest (any supported
schema version) and, when present, the trace-event file, and renders
the metrics section plus a per-span-name aggregation (count / total /
mean / max) — the quick look you take before opening the full
timeline in Perfetto.  ``--json`` emits the same data as a
byte-deterministic machine-readable document instead of the table.

Dropped spans are surfaced loudly: when the
:class:`~repro.obs.trace.TraceBuffer` overflowed, every aggregate
below is an undercount, and a report that hid that would be lying.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.obs.export import TRACE_FILENAME, read_trace

PathLike = Union[str, pathlib.Path]


def dropped_span_count(trace_doc: Optional[Dict]) -> int:
    """Total spans the TraceBuffer dropped, from its counter events."""
    if not trace_doc:
        return 0
    total = 0
    for event in trace_doc.get("traceEvents", []):
        if event.get("ph") == "C" and event.get("name") == "obs.dropped_spans":
            total += int((event.get("args") or {}).get("dropped", 0))
    return total


def aggregate_spans(doc: Dict) -> List[Dict]:
    """Aggregate complete events by span name, slowest-total first."""
    stats: Dict[str, Dict] = {}
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        entry = stats.setdefault(
            event["name"], {"count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        dur = float(event.get("dur", 0.0))
        entry["count"] += 1
        entry["total_us"] += dur
        entry["max_us"] = max(entry["max_us"], dur)
    rows = []
    for name in sorted(stats, key=lambda n: -stats[n]["total_us"]):
        entry = stats[name]
        rows.append(
            {
                "name": name,
                "count": entry["count"],
                "total_ms": entry["total_us"] / 1e3,
                "mean_us": entry["total_us"] / entry["count"],
                "max_us": entry["max_us"],
            }
        )
    return rows


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:,.3f}"


def render_metrics(metrics: Optional[Dict]) -> List[str]:
    lines: List[str] = []
    if not metrics:
        lines.append("  (no metrics recorded — run with --trace)")
        return lines
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    width = max((len(n) for n in [*counters, *gauges, *histograms]), default=0)
    for name in sorted(counters):
        lines.append(f"  {name:<{width}}  {_format_value(counters[name])}")
    for name in sorted(gauges):
        lines.append(f"  {name:<{width}}  {_format_value(gauges[name])} (gauge)")
    for name in sorted(histograms):
        hist = histograms[name]
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        lines.append(
            f"  {name:<{width}}  n={hist['count']:,} mean={mean:,.2f} "
            f"buckets={hist['counts']}"
        )
    return lines


def render_report(manifest: Dict, trace_doc: Optional[Dict]) -> str:
    """Terminal report for ``repro obs report``."""
    scenarios = manifest.get("scenarios", {})
    timing = manifest.get("timing", {})
    lines = [
        f"campaign {manifest.get('campaign', '?')} "
        f"({scenarios.get('total', 0)} scenario(s), "
        f"workers={manifest.get('workers', '?')}, "
        f"wall {timing.get('wall_clock_s', 0.0):.2f} s)",
        "metrics:",
    ]
    lines.extend(render_metrics(manifest.get("metrics")))
    if trace_doc is not None:
        rows = aggregate_spans(trace_doc)
        lines.append("spans:")
        if not rows:
            lines.append("  (trace file contains no spans)")
        header = (
            f"  {'name':<32} {'count':>8} {'total ms':>10} "
            f"{'mean us':>10} {'max us':>10}"
        )
        if rows:
            lines.append(header)
        for row in rows:
            lines.append(
                f"  {row['name']:<32} {row['count']:>8,} "
                f"{row['total_ms']:>10.2f} {row['mean_us']:>10.1f} "
                f"{row['max_us']:>10.1f}"
            )
    else:
        lines.append("spans: (no trace.json in run directory)")
    dropped = dropped_span_count(trace_doc)
    if dropped:
        lines.append(
            f"WARNING: trace buffer dropped {dropped:,} span(s) — "
            "span aggregates above are undercounts"
        )
    profile = manifest.get("profile")
    if profile:
        handlers = len(profile.get("handlers") or {})
        span_names = len(profile.get("spans") or {})
        lines.append(
            f"profile: {handlers} handler(s), {span_names} span name(s) "
            "— see `repro obs top`"
        )
    return "\n".join(lines)


def report_doc(manifest: Dict, trace_doc: Optional[Dict]) -> Dict:
    """Machine-readable report document (``repro obs report --json``).

    Contains everything the text report renders — metrics, span
    aggregates, profile, dropped-span count — keyed and typed for
    tooling.  Serialization with ``sort_keys=True`` is byte-identical
    across repeated invocations on the same run directory.
    """
    return {
        "campaign": manifest.get("campaign"),
        "schema_version": manifest.get("schema_version"),
        "workers": manifest.get("workers"),
        "scenarios": manifest.get("scenarios"),
        "timing": manifest.get("timing"),
        "des": manifest.get("des"),
        "metrics": manifest.get("metrics"),
        "profile": manifest.get("profile"),
        "spans": aggregate_spans(trace_doc) if trace_doc is not None else None,
        "dropped_spans": dropped_span_count(trace_doc),
    }


def render_report_json(manifest: Dict, trace_doc: Optional[Dict]) -> str:
    """Canonical JSON rendering of :func:`report_doc`."""
    doc = report_doc(manifest, trace_doc)
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def report_run(run_dir: PathLike, as_json: bool = False) -> str:
    """Build the report for a run directory (manifest + optional trace)."""
    from repro.campaign.store import load_manifest

    run_dir = pathlib.Path(run_dir)
    manifest = load_manifest(run_dir)
    trace_path = run_dir / (manifest.get("spans_file") or TRACE_FILENAME)
    trace_doc = read_trace(trace_path) if trace_path.exists() else None
    if as_json:
        return render_report_json(manifest, trace_doc)
    return render_report(manifest, trace_doc)


__all__ = [
    "aggregate_spans",
    "dropped_span_count",
    "render_metrics",
    "render_report",
    "render_report_json",
    "report_doc",
    "report_run",
]
