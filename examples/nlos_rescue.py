#!/usr/bin/env python3
"""NLOS rescue: keep a blocked 60 GHz link alive via a wall reflection.

Section 4.3's range-extension case study as an application: a person
(or cabinet) blocks the line of sight between a dock and a laptop.
The script

1. verifies the blockage with the rotating-horn angular profile
   (Figure 20's methodology),
2. retrains the beams onto the strongest surviving propagation path
   (the wall bounce),
3. measures the TCP throughput before/without/with the rescue.

Run:  python examples/nlos_rescue.py
"""

from repro.core.angular import classify_lobes, find_lobes
from repro.experiments.common import build_wigig_link_setup
from repro.experiments.reflection_range import (
    DOCK_POSITION,
    LAPTOP_POSITION,
    build_reflection_room,
    measure_dock_angular_profile,
)
from repro.phy.raytracing import RayTracer


def measure_tcp(tracer, seed: int) -> float:
    setup = build_wigig_link_setup(
        window_bytes=256 * 1024,
        dock_position=DOCK_POSITION,
        laptop_position=LAPTOP_POSITION,
        tracer=tracer,
        seed=seed,
    )
    setup.run(0.05)
    setup.flow.reset_counters()
    setup.run(0.2)
    return setup.flow.throughput_bps()


def main() -> None:
    print("Scenario: dock and laptop 2.5 m apart, 1 m from a painted "
          "masonry wall; an absorber blocks the line of sight.")
    print()

    clear = RayTracer(build_reflection_room(blocked=False), max_order=2)
    blocked = RayTracer(build_reflection_room(blocked=True), max_order=2)

    los_tput = measure_tcp(clear, seed=1)
    print(f"1. Unobstructed link:            {los_tput / 1e6:7.0f} mbps")

    # Validate the blockage the paper's way: the angular profile at
    # the dock must show no lobe toward the laptop.
    profile = measure_dock_angular_profile(build_reflection_room(blocked=True))
    lobes = classify_lobes(
        find_lobes(profile), DOCK_POSITION, {"laptop": LAPTOP_POSITION}
    )
    los_visible = any(l.attribution == "laptop" for l in lobes)
    print(f"2. Obstacle inserted - LOS lobe in angular profile: "
          f"{'still visible!' if los_visible else 'gone (energy arrives via the wall)'}")
    for lobe in lobes:
        print(f"     lobe at {lobe.bearing_deg:6.1f} deg, "
              f"{lobe.relative_db:5.1f} dB -> {lobe.attribution}")

    # The builder retrains over the strongest traced path automatically
    # when given the blocked-room tracer.
    nlos_tput = measure_tcp(blocked, seed=2)
    print(f"3. Beams retrained on the wall bounce: {nlos_tput / 1e6:7.0f} mbps "
          f"({nlos_tput / los_tput * 100:.0f}% of line-of-sight)")
    print()
    print("The paper measured 550 mbps over such a reflection - 'more "
          "than half' of the LOS rate.  Reflections extend coverage, "
          "but (Section 4.4) they carry interference just as well.")


if __name__ == "__main__":
    main()
