"""Frame kinds, timing constants, and on-air frame records.

All timing constants trace back to measurements in the paper:

* Table 1 — D5000 discovery every 102.4 ms, D5000 beacons every 1.1 ms,
  WiHD discovery every 20 ms, WiHD beacons every 0.224 ms;
* Section 4.1 — WiGig bursts of at most 2 ms opened by two control
  frames (most probably RTS/CTS); data frames either short (~5 us) or
  long (15-25 us) depending on aggregation; the maximum observed
  aggregate is 25 us;
* Figure 3 — the device discovery frame lasts ~1 ms and consists of 32
  sub-elements, one per quasi-omni pattern.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class FrameKind(enum.Enum):
    """Over-the-air frame classes distinguishable in the traces."""

    DATA = "data"
    ACK = "ack"
    BEACON = "beacon"
    DISCOVERY = "discovery"
    RTS = "rts"
    CTS = "cts"
    #: Responder sector-sweep frame sent in an A-BFT slot.
    SSW = "ssw"
    #: Association handshake frames closing the link setup.
    ASSOC_REQ = "assoc_req"
    ASSOC_RESP = "assoc_resp"

    def is_control(self) -> bool:
        """Control frames are sent at the robust control-PHY MCS."""
        return self in (
            FrameKind.BEACON,
            FrameKind.DISCOVERY,
            FrameKind.RTS,
            FrameKind.CTS,
            FrameKind.SSW,
            FrameKind.ASSOC_REQ,
            FrameKind.ASSOC_RESP,
        )

    def uses_wide_pattern(self) -> bool:
        """Frames sent over wide patterns at boosted power.

        Only pre-association traffic (beacons, discovery sweeps) uses
        quasi-omni patterns; RTS/CTS and ACKs inside a trained link
        ride the directional data beams.
        """
        return self in (FrameKind.BEACON, FrameKind.DISCOVERY)


@dataclass(frozen=True)
class MacTiming:
    """Timing parameters of one MAC flavor (all seconds)."""

    beacon_interval_s: float
    discovery_interval_s: float
    discovery_frame_s: float
    beacon_frame_s: float
    sifs_s: float
    slot_s: float
    ack_frame_s: float
    rts_frame_s: float
    cts_frame_s: float
    max_burst_s: float
    min_data_frame_s: float
    max_data_frame_s: float

    def __post_init__(self) -> None:
        if self.min_data_frame_s <= 0 or self.max_data_frame_s < self.min_data_frame_s:
            raise ValueError("invalid data frame duration bounds")


#: WiGig (Dell D5000) timing.  SIFS/slot values follow 802.11ad (3 us
#: SIFS, 5 us slot); frame-length bounds follow the paper's Figure 9.
WIGIG_TIMING = MacTiming(
    beacon_interval_s=1.1e-3,
    discovery_interval_s=102.4e-3,
    discovery_frame_s=1.0e-3,
    beacon_frame_s=6.0e-6,
    sifs_s=3.0e-6,
    slot_s=5.0e-6,
    ack_frame_s=2.0e-6,
    rts_frame_s=3.0e-6,
    cts_frame_s=3.0e-6,
    max_burst_s=2.0e-3,
    min_data_frame_s=5.0e-6,
    max_data_frame_s=25.0e-6,
)

#: WiHD (DVDO Air-3c) timing.  Beacons every 0.224 ms from the
#: *receiver*; data frames are variable length and not acknowledged
#: per-frame in a way visible in the traces (Figure 15).
WIHD_TIMING = MacTiming(
    beacon_interval_s=0.224e-3,
    discovery_interval_s=20.0e-3,
    discovery_frame_s=0.8e-3,
    beacon_frame_s=4.0e-6,
    sifs_s=2.0e-6,
    slot_s=0.0,  # no carrier sensing: slotting is meaningless
    ack_frame_s=0.0,
    rts_frame_s=0.0,
    cts_frame_s=0.0,
    max_burst_s=0.224e-3,  # data fits between consecutive beacons
    min_data_frame_s=10.0e-6,
    max_data_frame_s=120.0e-6,
)

#: Number of quasi-omni sub-elements in the D5000 discovery frame.
DISCOVERY_SUBELEMENTS = 32


@dataclass
class FrameRecord:
    """Ground-truth record of one frame put on the air by the simulator.

    The Vubiq model converts these into :class:`repro.phy.signal.Emission`
    objects (what a measurement receiver would see); analysis code is
    tested against the ground truth.

    Attributes:
        start_s: Transmission start time.
        duration_s: On-air duration.
        source: Station name of the transmitter.
        destination: Station name of the intended receiver ("" for
            broadcast frames such as beacons and discovery sweeps).
        kind: Frame class.
        mcs_index: MCS used (0 for control frames).
        payload_bits: MAC payload carried (0 for control frames).
        aggregated_mpdus: Number of MPDUs aggregated into the frame.
        delivered: Whether the intended receiver decoded it (set by the
            medium at frame end; None for broadcast frames).
        retransmission: Whether this is a retry of an earlier frame.
        nav_duration_s: Network-allocation-vector reservation carried
            by the frame's duration field: third parties that decode
            the frame treat the channel as busy for this long *beyond*
            the frame's own end.  RTS/CTS frames use it to reserve
            their TXOP (virtual carrier sensing).
    """

    start_s: float
    duration_s: float
    source: str
    destination: str
    kind: FrameKind
    mcs_index: int = 0
    payload_bits: int = 0
    aggregated_mpdus: int = 0
    delivered: Optional[bool] = None
    retransmission: bool = False
    nav_duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("frame duration must be positive")
        if self.start_s < 0:
            raise ValueError("frame start must be non-negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def overlaps(self, other: "FrameRecord") -> bool:
        """Whether two frames are on the air simultaneously."""
        return self.start_s < other.end_s and other.start_s < self.end_s
