"""CLI driver for ``python -m repro lint``.

Exit codes (stable, for CI):

* ``0`` — no findings (after baseline subtraction, if requested)
* ``1`` — at least one (non-baselined) finding
* ``2`` — operational error (unreadable baseline, bad arguments)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.config import find_root, load_config
from repro.lint.engine import RULES, Finding, lint_paths


def resolve_paths(
    raw_paths: List[str], root: pathlib.Path
) -> List[pathlib.Path]:
    """Default to ``<root>/src`` when no paths are given."""
    if raw_paths:
        return [pathlib.Path(p) for p in raw_paths]
    src = root / "src"
    return [src if src.is_dir() else root]


def run_lint(args: argparse.Namespace) -> int:
    start = pathlib.Path(args.paths[0]) if args.paths else pathlib.Path.cwd()
    root = pathlib.Path(args.root) if args.root else find_root(start)
    config = load_config(root)
    paths = resolve_paths(args.paths, root)
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro lint: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    findings = lint_paths(paths, root, config)
    baseline_path = root / config.baseline

    if args.write_baseline:
        count = baseline_mod.write_baseline(baseline_path, findings)
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0

    baselined = 0
    if args.baseline:
        try:
            known = baseline_mod.load_baseline(baseline_path)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        findings, baselined = baseline_mod.apply_baseline(findings, known)

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "count": len(findings),
                    "baselined": baselined,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = f"{len(findings)} finding(s)"
        if baselined:
            summary += f", {baselined} baselined"
        print(summary)
    return 1 if findings else 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: <root>/src)",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="subtract findings recorded in the committed baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (findings, count, baselined)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root (default: nearest directory with pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def list_rules() -> int:
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code}  {rule.name:<26} {rule.summary}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description="domain-aware static analysis"
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    if args.list_rules:
        return list_rules()
    return run_lint(args)


# Re-export for the repro.cli subcommand wiring.
__all__ = ["add_lint_arguments", "list_rules", "main", "run_lint", "Finding"]
