"""Unit tests for trace synthesis."""

import numpy as np
import pytest

from repro.phy.signal import (
    Emission,
    Trace,
    concatenate_traces,
    received_amplitude_v,
    synthesize_trace,
)


class TestEmission:
    def test_end_time(self):
        e = Emission(start_s=1.0, duration_s=0.5, amplitude_v=0.2)
        assert e.end_s == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            Emission(0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Emission(0.0, 1.0, -1.0)


class TestTrace:
    def test_duration(self):
        t = Trace(samples=np.zeros(100), sample_rate_hz=100.0)
        assert t.duration_s == pytest.approx(1.0)

    def test_times_absolute(self):
        t = Trace(samples=np.zeros(10), sample_rate_hz=10.0, start_s=5.0)
        times = t.times()
        assert times[0] == 5.0
        assert times[-1] == pytest.approx(5.9)

    def test_slice(self):
        t = Trace(samples=np.arange(100, dtype=float), sample_rate_hz=100.0)
        s = t.slice(0.25, 0.50)
        assert s.samples.size == 25
        assert s.start_s == pytest.approx(0.25)
        assert s.samples[0] == 25.0

    def test_slice_outside_raises(self):
        t = Trace(samples=np.zeros(10), sample_rate_hz=10.0)
        with pytest.raises(ValueError):
            t.slice(5.0, 6.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Trace(samples=np.zeros(10), sample_rate_hz=0.0)


class TestSynthesis:
    def test_frame_visible_above_noise(self):
        em = Emission(start_s=0.3e-3, duration_s=0.2e-3, amplitude_v=0.5)
        trace = synthesize_trace([em], duration_s=1e-3, noise_floor_v=0.01,
                                 rng=np.random.default_rng(0))
        mid = trace.slice(0.35e-3, 0.45e-3)
        quiet = trace.slice(0.0, 0.2e-3)
        assert np.mean(mid.samples) > 10 * np.mean(quiet.samples)

    def test_amplitude_preserved_in_plateau(self):
        em = Emission(start_s=0.2e-3, duration_s=0.5e-3, amplitude_v=0.8)
        trace = synthesize_trace([em], duration_s=1e-3, noise_floor_v=0.0,
                                 rng=np.random.default_rng(0))
        mid = trace.slice(0.35e-3, 0.55e-3)
        assert np.median(mid.samples) == pytest.approx(0.8, rel=0.02)

    def test_overlapping_emissions_combine_rss(self):
        a = Emission(0.0, 1e-3, amplitude_v=0.3)
        b = Emission(0.0, 1e-3, amplitude_v=0.4)
        trace = synthesize_trace([a, b], duration_s=1e-3, noise_floor_v=0.0,
                                 rng=np.random.default_rng(0))
        mid = trace.slice(0.4e-3, 0.6e-3)
        assert np.median(mid.samples) == pytest.approx(0.5, rel=0.02)

    def test_emission_outside_window_clipped(self):
        em = Emission(start_s=2.0, duration_s=1.0, amplitude_v=1.0)
        trace = synthesize_trace([em], duration_s=1e-3, noise_floor_v=0.0)
        assert np.all(trace.samples == 0.0)

    def test_noise_floor_level(self):
        trace = synthesize_trace([], duration_s=1e-3, noise_floor_v=0.02,
                                 rng=np.random.default_rng(1))
        # Rayleigh with scale 0.02 -> mean ~ 0.0251.
        assert np.mean(trace.samples) == pytest.approx(0.0251, rel=0.05)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            synthesize_trace([], duration_s=0.0)


class TestConcatenation:
    def test_contiguous_segments(self):
        a = Trace(samples=np.ones(10), sample_rate_hz=10.0, start_s=0.0)
        b = Trace(samples=np.zeros(10), sample_rate_hz=10.0, start_s=1.0)
        merged = concatenate_traces([a, b])
        assert merged.samples.size == 20
        assert merged.end_s == pytest.approx(2.0)

    def test_gap_rejected(self):
        a = Trace(samples=np.ones(10), sample_rate_hz=10.0, start_s=0.0)
        b = Trace(samples=np.zeros(10), sample_rate_hz=10.0, start_s=2.0)
        with pytest.raises(ValueError):
            concatenate_traces([a, b])

    def test_rate_mismatch_rejected(self):
        a = Trace(samples=np.ones(10), sample_rate_hz=10.0)
        b = Trace(samples=np.ones(10), sample_rate_hz=20.0, start_s=1.0)
        with pytest.raises(ValueError):
            concatenate_traces([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate_traces([])


class TestAmplitudeMapping:
    def test_reference_point(self):
        assert received_amplitude_v(-30.0) == pytest.approx(1.0)

    def test_square_root_power_scaling(self):
        # -20 dB of power is a factor 10 in amplitude.
        assert received_amplitude_v(-50.0) == pytest.approx(0.1)

    def test_monotone(self):
        assert received_amplitude_v(-40.0) < received_amplitude_v(-35.0)
