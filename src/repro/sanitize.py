"""Runtime sanitizer: dynamic counterpart of ``repro lint --flow``.

The static passes (RL010-RL015) catch unit and RNG mistakes that are
visible in the source.  This module catches the ones that only show up
at runtime: a dB value flowing into a linear-domain helper (or vice
versa) through data the analyzer could not see, and unseeded generators
constructed while an experiment is running.

The sanitizer is strictly opt-in and has **zero overhead when
disabled**: nothing is wrapped at import time.  :func:`enable` swaps
the :mod:`repro.analysis.dbmath` helpers (and
``numpy.random.default_rng``) for checking wrappers by sweeping
``sys.modules`` — rebinding every ``from ... import`` copy a repro
module holds — and :func:`disable` restores the originals.

Checks performed while enabled:

* **implausible dB input** — a value outside ``[-400, 300]`` dB passed
  to a log-domain helper (``db_to_linear``, ``dbm_to_watts``,
  ``power_sum_db``, ...).  A raw linear power (say ``1e9``) passed
  where dB is expected trips this immediately.
* **negative linear power** — a value below ``-1e-6`` passed to a
  linear-domain helper (``linear_to_db``, ``watts_to_dbm``, ...).
  Genuine powers are non-negative; a dB quantity like ``-60`` passed
  where linear power is expected trips this.
* **unseeded RNG** — ``numpy.random.default_rng()`` called with no
  seed, which makes the run irreproducible.
* **shape contract** — a function decorated with
  :func:`shape_contract` returned an array whose rank or concrete
  dimensions disagree with its declared ``# replint: shape=...``
  contract (the dynamic counterpart of lint rule RL036).
* **sim-time audit** — the DES event loop violated a sim-time
  invariant (the dynamic counterpart of the ``--des`` lint pass
  RL040-RL046): a non-finite or into-the-past delay reached
  ``Simulator.schedule``, ``_now`` moved backwards, or more than
  ``REPRO_SANITIZE_STORM_CAP`` events fired at one timestamp (a
  zero-delay event storm).  See :class:`SimTimeAudit`.
* **unit audit** — angle-unit misuse that survives the static
  ``--dim`` pass (RL050-RL056) because the offending value flowed
  through data: ``math.sin/cos/tan`` called with a suspiciously large
  argument (``> REPRO_SANITIZE_TRIG_CAP``, default 1e4 — radians
  never get that big, degrees-by-mistake and garbage do), trig called
  on a value that a rad→deg conversion just produced, and a
  deg→rad/rad→deg conversion re-applied to its own recent output
  (``radians(radians(x))`` — the runtime face of RL056).  See
  :class:`UnitAudit`.

Each violation records the offending value and a call stack.  In
``"warn"`` mode violations are collected (and surfaced as
:class:`SanitizerWarning`); in ``"raise"`` mode the first violation
raises :class:`SanitizerError` at the call site.

Activation paths:

* ``repro.sanitize.enable(mode="warn")`` in code or a fixture;
* ``REPRO_SANITIZE=warn`` (or ``raise``) in the environment — honored
  on ``import repro``;
* ``python -m repro sanitize -- <cmd>`` — runs a child process with
  the environment set and ``REPRO_SANITIZE_REPORT`` pointing at a JSON
  file, then fails if the child recorded violations;
* ``pytest --sanitize`` (see ``tests/conftest.py``).
"""

from __future__ import annotations

import atexit
import functools
import json
import math
import os
import sys
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import dbmath

#: Plausible range for a value already expressed in dB/dBm.  DB_FLOOR
#: is -300; transmit powers top out far below +300 dBm.  Anything
#: outside is almost certainly a linear power passed to a log-domain
#: helper.
DB_RANGE = (-400.0, 300.0)

#: Tolerance for "negative" linear power: tiny negative values from
#: float cancellation are legitimate (the helpers floor them), large
#: ones mean a log-domain value leaked in.
NEGATIVE_LINEAR_TOLERANCE = -1e-6

#: Hard cap on stored violations so a hot loop cannot eat memory.
MAX_RECORDED = 200

#: Default per-timestamp event budget for the sim-time event-storm
#: watchdog; override with ``REPRO_SANITIZE_STORM_CAP``.  Legitimate
#: same-timestamp bursts (frame completions waking CSMA waiters) are a
#: handful of events; a zero-delay self-rescheduling handler crosses
#: any finite cap immediately.
DEFAULT_EVENT_STORM_CAP = 1000

#: Largest plausible trig argument in radians; override with
#: ``REPRO_SANITIZE_TRIG_CAP``.  Physical phases in this toolkit are
#: wrapped or proportional to path-length/wavelength ratios within a
#: room — values beyond ~1e4 rad mean degrees (or a raw frequency)
#: leaked into a trig call.
DEFAULT_TRIG_ARG_CAP = 1e4


class SanitizerError(RuntimeError):
    """Raised at the offending call site in ``raise`` mode."""


class SanitizerWarning(UserWarning):
    """Emitted for each violation in ``warn`` mode."""


@dataclass
class Violation:
    """One sanitizer hit: what was called, with what, from where."""

    check: str  #: ``implausible-db`` | ``negative-linear`` | ``unseeded-rng``
    func: str  #: wrapped function name, e.g. ``db_to_linear``
    value: str  #: repr of the offending value (truncated)
    message: str
    stack: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "func": self.func,
            "value": self.value,
            "message": self.message,
            "stack": self.stack,
        }

    def render(self) -> str:
        lines = [f"{self.check}: {self.message}"]
        lines.extend(f"    {frame}" for frame in self.stack[-6:])
        return "\n".join(lines)


class _State:
    """Module-level sanitizer state (single instance)."""

    def __init__(self) -> None:
        self.enabled = False
        self.mode = "warn"
        self.violations: List[Violation] = []
        self.total = 0
        #: (module, attr, original) triples to undo on disable().
        self.patches: List[Tuple[object, str, object]] = []
        #: Re-entrancy depth: dbmath helpers call each other
        #: internally; only the outermost call is checked.
        self.depth = 0
        self.report_registered = False
        #: Live UnitAudit while enabled (None when off).
        self.unit_audit: Optional["UnitAudit"] = None


_STATE = _State()


def _capture_stack() -> List[str]:
    frames = traceback.extract_stack()
    out: List[str] = []
    for frame in frames:
        # Drop sanitizer internals from the reported stack.
        if frame.filename == __file__:
            continue
        out.append(f"{frame.filename}:{frame.lineno} in {frame.name}")
    return out


def _record(check: str, func: str, value: object, message: str) -> None:
    _STATE.total += 1
    violation = Violation(
        check=check,
        func=func,
        value=repr(value)[:120],
        message=message,
        stack=_capture_stack(),
    )
    if len(_STATE.violations) < MAX_RECORDED:
        _STATE.violations.append(violation)
    if _STATE.mode == "raise":
        raise SanitizerError(violation.render())
    warnings.warn(f"repro.sanitize {check} in {func}: {message}", SanitizerWarning,
                  stacklevel=4)


def _finite(value: object) -> Optional[np.ndarray]:
    """Coerce a helper argument to a float array, or None if we can't."""
    try:
        arr = np.atleast_1d(np.asarray(value, dtype=float))
    except (TypeError, ValueError):
        return None
    if arr.size == 0:
        return None
    return arr[np.isfinite(arr)]


def _check_db_domain(func: str, value: object) -> None:
    arr = _finite(value)
    if arr is None or arr.size == 0:
        return
    low, high = DB_RANGE
    bad = arr[(arr < low) | (arr > high)]
    if bad.size:
        _record(
            "implausible-db",
            func,
            value,
            f"{func} expects dB input but got {bad[0]:g} "
            f"(outside [{low:g}, {high:g}] dB) — linear power passed "
            "where dB is expected?",
        )


def _check_linear_domain(func: str, value: object) -> None:
    arr = _finite(value)
    if arr is None or arr.size == 0:
        return
    bad = arr[arr < NEGATIVE_LINEAR_TOLERANCE]
    if bad.size:
        _record(
            "negative-linear",
            func,
            value,
            f"{func} expects linear power/amplitude but got {bad[0]:g} "
            "— a dB quantity passed where linear is expected?",
        )


#: dbmath helper name -> which domain its first argument lives in.
_DB_DOMAIN_FUNCS = (
    "db_to_linear",
    "db_to_linear_scalar",
    "db_to_amplitude_scalar",
    "dbm_to_watts",
    "power_sum_db",
    "power_average_db",
)
_LINEAR_DOMAIN_FUNCS = (
    "linear_to_db",
    "linear_to_db_scalar",
    "amplitude_to_db",
    "amplitude_to_db_scalar",
    "watts_to_dbm",
)
#: Helpers whose first argument is a consumable iterable: materialize
#: it before checking so the original still sees every element.
_ITERABLE_FUNCS = ("power_sum_db", "power_average_db")


def _wrap_dbmath(name: str, original: Callable, check: Callable) -> Callable:
    materialize = name in _ITERABLE_FUNCS

    @functools.wraps(original)
    def wrapper(value, *args, **kwargs):
        if materialize:
            value = list(value)
        if _STATE.depth:
            return original(value, *args, **kwargs)
        # Hold the depth across the original call too: dbmath helpers
        # call each other internally, and only the outermost entry
        # point should be checked.
        _STATE.depth += 1
        try:
            check(name, value)
            return original(value, *args, **kwargs)
        finally:
            _STATE.depth -= 1

    wrapper.__repro_sanitize_wraps__ = original
    return wrapper


class UnitAudit:
    """Runtime angle-unit invariants (dynamic RL050/RL056).

    Installed by :func:`enable`, which wraps ``math.sin/cos/tan`` and
    the deg↔rad conversion family (``math.radians``/``math.degrees``,
    ``np.deg2rad``/``np.radians``/``np.rad2deg``/``np.degrees``) and
    rebinds every imported copy; zero overhead when the sanitizer is
    off — nothing is wrapped at import time.

    Checks:

    * **unit-trig-arg** — a trig call whose scalar argument exceeds
      :data:`DEFAULT_TRIG_ARG_CAP` (``REPRO_SANITIZE_TRIG_CAP``) in
      magnitude.  Radians stay small; a degree value scaled by another
      factor, or a raw frequency, does not.
    * **unit-trig-degrees** — a trig call whose argument is exactly a
      value some rad→deg conversion just produced: the classic
      ``sin(degrees(x))`` flow, visible at runtime even when the two
      calls live in different modules the static pass cannot connect.
    * **unit-double-conversion** — a deg→rad (or rad→deg) conversion
      whose scalar input is exactly a value the *same direction*
      recently produced: ``radians(radians(x))`` through data.  The
      opposite direction is a legitimate round trip and never flags.

    Matching uses small rings of recent conversion outputs (exact
    float equality, near-zero values skipped — converting 0° is
    common and 0 is direction-less), so the audit is O(1) per call
    and deterministic for a deterministic run.
    """

    RING = 8

    def __init__(self, trig_arg_cap: float = DEFAULT_TRIG_ARG_CAP):
        self.trig_arg_cap = float(trig_arg_cap)
        self._recent_rad: List[float] = []  #: outputs of deg→rad calls
        self._recent_deg: List[float] = []  #: outputs of rad→deg calls

    @staticmethod
    def _scalar(value: object) -> Optional[float]:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None  # arrays and exotic types are not tracked
        scalar = float(value)
        return scalar if math.isfinite(scalar) else None

    def _push(self, ring: List[float], result: object) -> None:
        scalar = self._scalar(result)
        if scalar is None or abs(scalar) < 1e-9:
            return
        ring.append(scalar)
        if len(ring) > self.RING:
            del ring[0]

    def on_trig(self, func: str, value: object) -> None:
        scalar = self._scalar(value)
        if scalar is None:
            return
        if abs(scalar) >= 1e-9 and scalar in self._recent_deg:
            _record(
                "unit-trig-degrees",
                func,
                value,
                f"{func}() expects radians but its argument ({scalar:g}) "
                "is a value a rad→deg conversion just produced — trig on "
                "degrees",
            )
        elif abs(scalar) > self.trig_arg_cap:
            _record(
                "unit-trig-arg",
                func,
                value,
                f"{func}() called with |x| = {abs(scalar):g} rad "
                f"(cap {self.trig_arg_cap:g}, REPRO_SANITIZE_TRIG_CAP) — "
                "degrees or a raw frequency passed where radians are "
                "expected?",
            )

    def on_convert(self, func: str, to_rad: bool, value: object, result: object) -> None:
        scalar = self._scalar(value)
        ring = self._recent_rad if to_rad else self._recent_deg
        if scalar is not None and abs(scalar) >= 1e-9 and scalar in ring:
            direction = "deg→rad" if to_rad else "rad→deg"
            _record(
                "unit-double-conversion",
                func,
                value,
                f"{func}() applied to a value ({scalar:g}) that a "
                f"{direction} conversion just produced — a double "
                "conversion (radians(radians(x))-style)",
            )
        self._push(ring, result)


def _wrap_trig(name: str, original: Callable) -> Callable:
    @functools.wraps(original)
    def wrapper(value, *args, **kwargs):
        audit = _STATE.unit_audit
        if audit is not None and not _STATE.depth:
            _STATE.depth += 1
            try:
                audit.on_trig(name, value)
            finally:
                _STATE.depth -= 1
        return original(value, *args, **kwargs)

    wrapper.__repro_sanitize_wraps__ = original
    return wrapper


def _wrap_angle_conversion(name: str, original: Callable, to_rad: bool) -> Callable:
    @functools.wraps(original)
    def wrapper(value, *args, **kwargs):
        result = original(value, *args, **kwargs)
        audit = _STATE.unit_audit
        if audit is not None and not _STATE.depth:
            _STATE.depth += 1
            try:
                audit.on_convert(name, to_rad, value, result)
            finally:
                _STATE.depth -= 1
        return result

    wrapper.__repro_sanitize_wraps__ = original
    return wrapper


#: (module attr, callable) pairs wrapped by the unit audit.
_TRIG_FUNCS = ("sin", "cos", "tan")
_TO_RAD_FUNCS = ("radians", "deg2rad")
_TO_DEG_FUNCS = ("degrees", "rad2deg")


def _unit_audit_wrappers() -> Dict[object, Callable]:
    wrappers: Dict[object, Callable] = {}
    for name in _TRIG_FUNCS:
        original = getattr(math, name)
        wrappers[original] = _wrap_trig(f"math.{name}", original)
    for host, prefix in ((math, "math"), (np, "numpy")):
        for name in _TO_RAD_FUNCS:
            original = getattr(host, name, None)
            if original is not None and original not in wrappers:
                wrappers[original] = _wrap_angle_conversion(
                    f"{prefix}.{name}", original, to_rad=True
                )
        for name in _TO_DEG_FUNCS:
            original = getattr(host, name, None)
            if original is not None and original not in wrappers:
                wrappers[original] = _wrap_angle_conversion(
                    f"{prefix}.{name}", original, to_rad=False
                )
    return wrappers


def _wrap_default_rng(original: Callable) -> Callable:
    @functools.wraps(original)
    def wrapper(seed=None, *args, **kwargs):
        if seed is None and _STATE.depth == 0:
            _STATE.depth += 1
            try:
                _record(
                    "unseeded-rng",
                    "numpy.random.default_rng",
                    seed,
                    "default_rng() called without a seed — the run is "
                    "irreproducible; thread a Generator or seed in instead",
                )
            finally:
                _STATE.depth -= 1
        return original(seed, *args, **kwargs)

    wrapper.__repro_sanitize_wraps__ = original
    return wrapper


def _install(wrappers: Dict[object, Callable]) -> None:
    """Rebind every module-level reference to a wrapped function.

    Sweeps ``sys.modules`` for repro modules (plus ``math``, ``numpy``,
    and ``numpy.random`` for the trig/conversion/RNG wrappers) so that
    ``from repro.analysis.dbmath import db_to_linear`` copies are
    wrapped too, not just the defining module's attribute.
    """
    for mod_name, module in list(sys.modules.items()):
        if module is None:
            continue
        if not (mod_name == "repro" or mod_name.startswith("repro.")
                or mod_name in ("math", "numpy", "numpy.random")):
            continue
        for attr, obj in list(vars(module).items()):
            if not callable(obj):  # module specs etc. are unhashable
                continue
            wrapper = wrappers.get(obj)
            if wrapper is not None:
                setattr(module, attr, wrapper)
                _STATE.patches.append((module, attr, obj))


def enable(mode: str = "warn") -> None:
    """Install the checking wrappers. ``mode`` is ``warn`` or ``raise``."""
    if mode not in ("warn", "raise"):
        raise ValueError(f"unknown sanitizer mode: {mode!r}")
    if _STATE.enabled:
        _STATE.mode = mode
        return
    wrappers: Dict[object, Callable] = {}
    for name in _DB_DOMAIN_FUNCS:
        original = getattr(dbmath, name)
        wrappers[original] = _wrap_dbmath(name, original, _check_db_domain)
    for name in _LINEAR_DOMAIN_FUNCS:
        original = getattr(dbmath, name)
        # The module aliases (db_to_power_ratio = db_to_linear) share
        # the object, so the dict key dedupes them automatically.
        wrappers.setdefault(
            original, _wrap_dbmath(name, original, _check_linear_domain)
        )
    wrappers[np.random.default_rng] = _wrap_default_rng(np.random.default_rng)
    wrappers.update(_unit_audit_wrappers())
    _install(wrappers)
    _STATE.unit_audit = UnitAudit(trig_arg_cap=_trig_cap_from_env())
    # Install the DES sim-time auditor as a module-level hook rather
    # than a wrapper: the event loop is the hottest path in the tree,
    # and a single ``_AUDIT is None`` check is all it costs when off.
    from repro.mac import simulator as _simulator_mod

    _STATE.patches.append((_simulator_mod, "_AUDIT", _simulator_mod._AUDIT))
    _simulator_mod._AUDIT = SimTimeAudit(
        max_events_per_timestamp=_storm_cap_from_env()
    )
    _STATE.enabled = True
    _STATE.mode = mode
    report_path = os.environ.get("REPRO_SANITIZE_REPORT")
    if report_path and not _STATE.report_registered:
        atexit.register(write_report, report_path)
        _STATE.report_registered = True


def disable() -> None:
    """Restore every patched binding and stop checking."""
    for module, attr, original in reversed(_STATE.patches):
        setattr(module, attr, original)
    _STATE.patches.clear()
    _STATE.unit_audit = None
    _STATE.enabled = False


def is_enabled() -> bool:
    return _STATE.enabled


def violations() -> List[Violation]:
    """Violations recorded since the last :func:`clear_violations`."""
    return list(_STATE.violations)


def clear_violations() -> None:
    _STATE.violations.clear()
    _STATE.total = 0


def report() -> Dict[str, object]:
    """JSON-ready summary of the current sanitizer state."""
    return {
        "enabled": _STATE.enabled,
        "mode": _STATE.mode,
        "total": _STATE.total,
        "violations": [v.to_dict() for v in _STATE.violations],
    }


def write_report(path: str) -> None:
    """Dump :func:`report` to ``path`` (used by ``repro sanitize``)."""
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(report(), fh, indent=2)
    except OSError:  # pragma: no cover - report path unwritable
        pass


def _parse_contract(spec: str) -> Tuple[str, Optional[Tuple[Optional[int], ...]]]:
    """Parse a ``shape_contract`` spec into ``(kind, dims)``.

    Accepts the same grammar as the static ``# replint: shape=``
    annotation: ``scalar``, ``any``/``input`` (no runtime check —
    the output shape depends on the input), or a dim tuple like
    ``(n,)`` / ``(points,2)`` where integer dims are checked exactly
    and symbolic names check rank plus same-name size consistency.
    """
    text = spec.strip().strip("'\"")
    if text == "scalar":
        return "scalar", None
    if text in ("any", "input", "match-input", "like-input"):
        return "any", None
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1].strip().rstrip(",")
        dims: List[Optional[int]] = []
        names: List[Optional[str]] = []
        for part in inner.split(",") if inner else []:
            part = part.strip()
            if part.lstrip("-").isdigit():
                dims.append(int(part))
                names.append(None)
            else:
                dims.append(None)
                names.append(part if part not in ("*", "_", "") else None)
        return "array", tuple(dims) if not any(names) else _NamedDims(
            tuple(dims), tuple(names)
        )
    raise ValueError(f"unparseable shape contract: {spec!r}")


class _NamedDims(tuple):
    """Dim tuple carrying symbolic names for same-name consistency checks."""

    def __new__(cls, dims, names):
        self = super().__new__(cls, dims)
        self.names = names
        return self


def _check_shape_result(qualname: str, spec: str, parsed, result: object) -> None:
    kind, dims = parsed
    if kind == "any":
        return
    ndim = np.ndim(result)
    if kind == "scalar":
        if ndim != 0:
            _record(
                "shape-contract",
                qualname,
                result,
                f"{qualname} declares shape=scalar but returned a "
                f"rank-{ndim} array",
            )
        return
    if ndim != len(dims):
        _record(
            "shape-contract",
            qualname,
            result,
            f"{qualname} declares shape={spec} (rank {len(dims)}) but "
            f"returned rank {ndim}",
        )
        return
    shape = np.shape(result)
    for axis, want in enumerate(dims):
        if want is not None and shape[axis] != want:
            _record(
                "shape-contract",
                qualname,
                result,
                f"{qualname} declares shape={spec} but axis {axis} has "
                f"size {shape[axis]} (expected {want})",
            )
            return
    names = getattr(dims, "names", None)
    if names:
        sizes: Dict[str, int] = {}
        for axis, name in enumerate(names):
            if name is None:
                continue
            prev = sizes.setdefault(name, shape[axis])
            if prev != shape[axis]:
                _record(
                    "shape-contract",
                    qualname,
                    result,
                    f"{qualname} declares shape={spec} but dims named "
                    f"{name!r} disagree ({prev} vs {shape[axis]})",
                )
                return


def shape_contract(spec: str) -> Callable:
    """Decorate a function to validate its return against ``spec``.

    The dynamic counterpart of lint rule RL036 (missing-shape-contract):
    the static pass proves the contract *exists*; this decorator checks
    it *holds* on real data.  ``spec`` uses the ``# replint: shape=``
    grammar (``"(n,)"``, ``"(points,2)"``, ``"scalar"``, ``"input"``).

    Zero overhead when the sanitizer is disabled beyond one attribute
    check per call; the spec is parsed lazily on the first checked call
    so a bad spec on a never-sanitized function cannot break imports.
    Violations are recorded as ``shape-contract``.
    """
    parsed_box: List[object] = []

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            result = func(*args, **kwargs)
            if not _STATE.enabled:
                return result
            if not parsed_box:
                parsed_box.append(_parse_contract(spec))
            _check_shape_result(func.__qualname__, spec, parsed_box[0], result)
            return result

        wrapper.__repro_shape_contract__ = spec
        return wrapper

    return decorate


class SimTimeAudit:
    """Runtime sim-time invariants for the DES loop (dynamic RL040-046).

    Installed by :func:`enable` as ``repro.mac.simulator._AUDIT`` and
    called from the two spots that move simulated time: every
    ``Simulator.schedule`` and every event pop in ``run_until``.  With
    the sanitizer off the hook is ``None`` and the loop pays one global
    read per event — nothing is wrapped or subclassed.

    Checks:

    * **sim-schedule-nonfinite** — a NaN/inf delay reached
      ``schedule()``.  The simulator raises on these too; the audit
      records the offending call *with its stack* first, which the
      bare ``ValueError`` cannot show in warn-mode post-mortems.
    * **sim-schedule-past** — a negative delay (scheduling into the
      past) reached ``schedule()``.
    * **sim-time-regression** — ``_now`` moved backwards between
      processed events; the heap invariant was violated (e.g. a
      mutated queue or a NaN that slipped in before the guards).
    * **sim-event-storm** — more than ``max_events_per_timestamp``
      events fired at one timestamp: the signature of a zero-delay
      self-rescheduling handler (static rule RL045).  Recorded once
      per offending timestamp, exactly when the count crosses the cap
      — deterministic for a deterministic event stream.

    State is tracked per live ``Simulator`` (keyed by ``id``); in
    ``raise`` mode the first violation raises :class:`SanitizerError`
    inside the event loop, stopping the storm instead of spinning.
    """

    def __init__(self, max_events_per_timestamp: int = DEFAULT_EVENT_STORM_CAP):
        self.max_events_per_timestamp = max(1, int(max_events_per_timestamp))
        self._last_time: Dict[int, float] = {}
        self._at_time: Dict[int, int] = {}

    def on_schedule(self, sim: object, delay_s: object) -> None:
        """Audit one ``Simulator.schedule(delay_s, ...)`` call."""
        try:
            delay = float(delay_s)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return  # the simulator's own type error is clearer
        if delay != delay or delay in (float("inf"), float("-inf")):
            _record(
                "sim-schedule-nonfinite",
                "Simulator.schedule",
                delay_s,
                f"schedule() called with a non-finite delay ({delay!r}) — "
                "a NaN/inf timestamp would poison heap ordering for every "
                "later event",
            )
        elif delay < 0:
            _record(
                "sim-schedule-past",
                "Simulator.schedule",
                delay_s,
                f"schedule() called with a negative delay ({delay:g} s) — "
                "scheduling into the past; clamp with max(0.0, ...) or fix "
                "the timing arithmetic",
            )

    def on_event(self, sim: object, time_s: float) -> None:
        """Audit one event pop at ``time_s`` in ``run_until``."""
        key = id(sim)
        last = self._last_time.get(key)
        if last is None or time_s > last:
            self._last_time[key] = time_s
            self._at_time[key] = 1
            return
        if time_s < last:
            self._last_time[key] = time_s
            self._at_time[key] = 1
            _record(
                "sim-time-regression",
                "Simulator.run_until",
                time_s,
                f"simulation time moved backwards ({last:g} s -> "
                f"{time_s:g} s) — the event heap ordering invariant is "
                "broken",
            )
            return
        count = self._at_time.get(key, 0) + 1
        self._at_time[key] = count
        if count == self.max_events_per_timestamp:
            _record(
                "sim-event-storm",
                "Simulator.run_until",
                time_s,
                f"{count} events processed at t={time_s:g} s without time "
                "advancing — a zero-delay (self-)rescheduling handler is "
                "storming the queue (cap via REPRO_SANITIZE_STORM_CAP)",
            )

    def forget(self, sim: object) -> None:
        """Drop per-simulator state (for long-lived processes)."""
        self._last_time.pop(id(sim), None)
        self._at_time.pop(id(sim), None)


def _storm_cap_from_env() -> int:
    raw = os.environ.get("REPRO_SANITIZE_STORM_CAP", "")
    try:
        return int(raw) if raw.strip() else DEFAULT_EVENT_STORM_CAP
    except ValueError:
        return DEFAULT_EVENT_STORM_CAP


def _trig_cap_from_env() -> float:
    raw = os.environ.get("REPRO_SANITIZE_TRIG_CAP", "")
    try:
        return float(raw) if raw.strip() else DEFAULT_TRIG_ARG_CAP
    except ValueError:
        return DEFAULT_TRIG_ARG_CAP


@dataclass
class ReadRecord:
    """One out-of-spec input read observed during a purity audit."""

    kind: str  #: ``env`` | ``file`` | ``clock``
    detail: str  #: variable name, file path, or clock function

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "detail": self.detail}


class _AuditEnviron:
    """``os.environ`` stand-in that records every lookup.

    Wraps the real mapping, so reads still return live values — the
    audit observes, it does not isolate.  ``os.getenv`` resolves
    ``environ`` through the :mod:`os` module globals at call time, so
    replacing the attribute covers it too.
    """

    def __init__(self, real, audit: "PurityAudit"):
        self._real = real
        self._audit = audit

    def _note(self, key: object) -> None:
        self._audit.note("env", str(key))

    def __getitem__(self, key):
        self._note(key)
        return self._real[key]

    def get(self, key, default=None):
        self._note(key)
        return self._real.get(key, default)

    def __contains__(self, key):
        self._note(key)
        return key in self._real

    def __setitem__(self, key, value):
        self._real[key] = value

    def __delitem__(self, key):
        del self._real[key]

    def __iter__(self):
        return iter(self._real)

    def __len__(self):
        return len(self._real)

    def __getattr__(self, name):
        return getattr(self._real, name)


class PurityAudit:
    """Record every environment/file/clock read inside a ``with`` block.

    The dynamic counterpart of lint rule RL022: a campaign cell's
    result must be a function of its :class:`ScenarioSpec` alone, or
    the content-addressed cache can serve poisoned entries.  Usage::

        with PurityAudit() as audit:
            cell(seed=0, repetition=0, **params)
        audit.records   # out-of-spec reads the cell performed
        audit.digest()  # order-independent hash of those reads

    Patches ``os.environ`` (covering ``os.getenv``), ``builtins.open``
    and ``io.open`` (covering ``pathlib.Path.read_text``), and
    ``time.time``/``time.time_ns``.  Known blind spots, by design:
    ``datetime.datetime.now`` (immutable C type, unpatchable) and
    module imports (``importlib`` reads via ``io.open_code``) — the
    static RL022 pass covers the former, and import-time reads do not
    vary per scenario.

    ``allowed_env`` names environment variables the spec machinery
    itself is permitted to read (e.g. ``REPRO_CACHE_DIR``); they are
    not recorded.
    """

    def __init__(self, allowed_env: Tuple[str, ...] = ()):
        self.allowed_env = frozenset(allowed_env)
        self.records: List[ReadRecord] = []
        self._patches: List[Tuple[object, str, object]] = []

    def note(self, kind: str, detail: str) -> None:
        if kind == "env" and detail in self.allowed_env:
            return
        self.records.append(ReadRecord(kind=kind, detail=detail))

    def digest(self) -> str:
        """Order-independent hash of the recorded reads."""
        import hashlib

        lines = sorted(f"{r.kind}:{r.detail}" for r in self.records)
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()[:16]

    def _patch(self, obj: object, attr: str, replacement: object) -> None:
        self._patches.append((obj, attr, getattr(obj, attr)))
        setattr(obj, attr, replacement)

    def __enter__(self) -> "PurityAudit":
        import builtins
        import io
        import time as time_mod

        audit = self

        real_open = builtins.open

        @functools.wraps(real_open)
        def open_wrapper(file, *args, **kwargs):
            mode = kwargs.get("mode", args[0] if args else "r")
            if "r" in str(mode) or "+" in str(mode):
                audit.note("file", str(file))
            return real_open(file, *args, **kwargs)

        real_time = time_mod.time
        real_time_ns = time_mod.time_ns

        @functools.wraps(real_time)
        def time_wrapper():
            audit.note("clock", "time.time")
            return real_time()

        @functools.wraps(real_time_ns)
        def time_ns_wrapper():
            audit.note("clock", "time.time_ns")
            return real_time_ns()

        self._patch(os, "environ", _AuditEnviron(os.environ, self))
        self._patch(builtins, "open", open_wrapper)
        self._patch(io, "open", open_wrapper)
        self._patch(time_mod, "time", time_wrapper)
        self._patch(time_mod, "time_ns", time_ns_wrapper)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for obj, attr, original in reversed(self._patches):
            setattr(obj, attr, original)
        self._patches.clear()


def enable_from_env() -> bool:
    """Honor ``REPRO_SANITIZE`` (called from ``repro/__init__``)."""
    value = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if value in ("", "0", "off", "false"):
        return False
    enable("raise" if value == "raise" else "warn")
    return True


__all__ = [
    "DB_RANGE",
    "DEFAULT_EVENT_STORM_CAP",
    "DEFAULT_TRIG_ARG_CAP",
    "PurityAudit",
    "ReadRecord",
    "SanitizerError",
    "SanitizerWarning",
    "SimTimeAudit",
    "UnitAudit",
    "Violation",
    "clear_violations",
    "disable",
    "enable",
    "enable_from_env",
    "is_enabled",
    "report",
    "shape_contract",
    "violations",
    "write_report",
]
