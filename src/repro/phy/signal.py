"""Synthesis of oscilloscope amplitude traces.

The paper's measurement rig never decodes 60 GHz frames: the Vubiq
down-converter's analog I/Q output is undersampled at 1e8 samples per
second, which destroys the modulation but preserves *timing and
amplitude* of each frame (Section 3.1).  All of the paper's frame-level
results are extracted from those amplitude envelopes.

This module synthesizes exactly that kind of trace: a list of
:class:`Emission` events (frame on air from ``start_s`` for
``duration_s`` with envelope amplitude ``amplitude_v``) becomes a noisy
sampled waveform.  The analysis pipeline in :mod:`repro.core.frames`
then recovers the frames with the same threshold-based detection the
authors used, closing the loop: we validate the *analysis* code against
traces whose ground truth we know.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.dbmath import db_to_amplitude_scalar
from repro.seeding import fallback_rng

#: Sample rate used in most of the paper's captures (Section 3.1).
DEFAULT_SAMPLE_RATE_HZ = 1.0e8


@dataclass(frozen=True)
class Emission:
    """One frame observed on the air at the measurement antenna.

    Attributes:
        start_s: Absolute start time of the frame.
        duration_s: Frame on-air duration.
        amplitude_v: Envelope amplitude at the measurement receiver, in
            volts at the scope input.  Encodes distance, antenna
            patterns, and TX power — the Vubiq device computes it.
        source: Free-form label of the transmitting device ("laptop",
            "dock", "wihd-tx", ...), carried for ground-truth checks.
        kind: Frame kind label ("data", "ack", "beacon", "discovery",
            "rts", "cts"), also ground truth only.
    """

    start_s: float
    duration_s: float
    amplitude_v: float
    source: str = ""
    kind: str = ""

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("emission duration must be positive")
        if self.amplitude_v < 0:
            raise ValueError("emission amplitude must be non-negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class Trace:
    """A sampled amplitude-envelope capture.

    Attributes:
        samples: Envelope magnitude per sample, volts (non-negative).
        sample_rate_hz: Sampling rate.
        start_s: Absolute time of the first sample.
    """

    samples: np.ndarray
    sample_rate_hz: float
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")

    @property
    def duration_s(self) -> float:
        return self.samples.size / self.sample_rate_hz

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def times(self) -> np.ndarray:  # replint: shape=(samples,)
        """Absolute time of every sample."""
        return self.start_s + np.arange(self.samples.size) / self.sample_rate_hz

    def slice(self, t0: float, t1: float) -> "Trace":
        """Sub-trace covering [t0, t1) in absolute time."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        i0 = max(0, int(round((t0 - self.start_s) * self.sample_rate_hz)))
        i1 = min(self.samples.size, int(round((t1 - self.start_s) * self.sample_rate_hz)))
        if i1 <= i0:
            raise ValueError("slice window does not overlap the trace")
        return Trace(
            samples=self.samples[i0:i1].copy(),
            sample_rate_hz=self.sample_rate_hz,
            start_s=self.start_s + i0 / self.sample_rate_hz,
        )


def synthesize_trace(
    emissions: Iterable[Emission],
    duration_s: float,
    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
    start_s: float = 0.0,
    noise_floor_v: float = 0.01,
    rng: Optional[np.random.Generator] = None,
    ramp_fraction: float = 0.02,
) -> Trace:
    """Render emissions into a noisy sampled amplitude trace.

    Overlapping emissions (collisions!) combine root-sum-square, which
    is what an envelope detector sees for uncorrelated signals — so a
    weak WiHD frame under a strong D5000 frame shows up as the "elevated
    noise floor" of Figure 21a.

    Args:
        emissions: Frames on the air (any order; may extend outside the
            capture window and will be clipped).
        duration_s: Capture length.
        sample_rate_hz: Sampling rate (default matches the paper).
        start_s: Absolute time of the first sample.
        noise_floor_v: RMS amplitude of the receiver noise.
        rng: Randomness source for the noise.
        ramp_fraction: Fraction of each frame's duration spent ramping
            the envelope up/down, modeling TX spectral shaping.  Keeps
            edges slightly soft like real captures.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if noise_floor_v < 0:
        raise ValueError("noise floor must be non-negative")
    # Without rng, draw a distinct deterministic fallback stream (noise
    # in separately synthesized traces must stay independent) and warn
    # so callers that forget to thread a campaign seed are surfaced.
    rng = rng if rng is not None else fallback_rng("synthesize_trace")
    n = int(round(duration_s * sample_rate_hz))
    power = np.zeros(n)  # accumulate in power domain (V^2)
    end_s = start_s + duration_s
    for em in emissions:
        if em.end_s <= start_s or em.start_s >= end_s:
            continue
        i0 = max(0, int(round((em.start_s - start_s) * sample_rate_hz)))
        i1 = min(n, int(round((em.end_s - start_s) * sample_rate_hz)))
        if i1 <= i0:
            continue
        length = i1 - i0
        envelope = np.full(length, em.amplitude_v)
        ramp = max(1, int(ramp_fraction * length))
        if 2 * ramp < length:
            up = np.linspace(0.0, 1.0, ramp, endpoint=False)
            envelope[:ramp] *= up
            envelope[length - ramp:] *= up[::-1]
        power[i0:i1] += envelope**2
    if noise_floor_v > 0:
        noise = rng.rayleigh(scale=noise_floor_v, size=n)
    else:
        noise = np.zeros(n)
    samples = np.sqrt(power + noise**2)
    return Trace(samples=samples, sample_rate_hz=sample_rate_hz, start_s=start_s)


def concatenate_traces(traces: Sequence[Trace]) -> Trace:
    """Concatenate back-to-back captures into one trace.

    Used to stitch oscilloscope record segments; the segments must be
    contiguous in time and share a sample rate.
    """
    if not traces:
        raise ValueError("nothing to concatenate")
    rate = traces[0].sample_rate_hz
    parts: List[np.ndarray] = []
    expected_start = traces[0].start_s
    for tr in traces:
        if tr.sample_rate_hz != rate:
            raise ValueError("sample rates differ between segments")
        if abs(tr.start_s - expected_start) > 1.0 / rate:
            raise ValueError("segments are not contiguous in time")
        parts.append(tr.samples)
        expected_start = tr.end_s
    return Trace(samples=np.concatenate(parts), sample_rate_hz=rate, start_s=traces[0].start_s)


def received_amplitude_v(power_dbm: float, reference_dbm: float = -30.0, reference_v: float = 1.0) -> float:
    """Map received RF power to a scope envelope amplitude in volts.

    The down-converter + scope chain is linear over its useful range;
    we anchor it so that ``reference_dbm`` produces ``reference_v`` at
    the scope.  Amplitude scales with the square root of power.
    """
    return reference_v * db_to_amplitude_scalar(power_dbm - reference_dbm)
