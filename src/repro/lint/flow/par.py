"""Parallelism-safety and cache-purity analysis (rules RL020-RL025).

The campaign engine (:mod:`repro.campaign`) promises that a sharded
run is bit-identical regardless of worker count, shard completion
order, and cache hits.  That promise rests on properties no per-file
rule can see:

* **RL020** — a callable handed to a process pool must be a
  module-level function: lambdas, closures, and bound methods either
  fail to pickle outright or smuggle parent-process state into the
  workers.
* **RL021** — a campaign cell whose transitive closure *reads* a
  module-level mutable container that is *mutated* anywhere in the
  project races forked workers against each other (each worker sees
  its own copy; updates are lost, results depend on fork timing).
* **RL022** — a cell whose transitive closure reads inputs outside
  the scenario spec (``os.environ``, files, the wall clock) poisons
  the content-addressed cache: the key no longer captures everything
  the result depends on.
* **RL023** — merging shard results in completion order (iterating
  ``as_completed``/unordered sets while accumulating) makes the merged
  output depend on scheduling, not on the spec.
* **RL024** — consuming a ``Future`` result without handling the
  ``BrokenProcessPool`` path turns a dead worker into a crashed
  campaign instead of a recorded failure.
* **RL025** — mutating a result object *after* handing it to the
  cache/store layer makes the persisted entry diverge from the
  in-memory object (the cache serializes at put time; later mutation
  silently forks the two).

Cells are discovered from the registry (``CELLS = {...}`` dict
literals and ``register_cell(name, "module:function")`` calls) plus
any ``*_cell`` function defined inside the configured
``par-packages``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.config import module_in
from repro.lint.flow.callgraph import CallGraph, CallResolver
from repro.lint.flow.symbols import FunctionInfo, ModuleInfo, SymbolTable

#: Canonical dotted names of process-pool constructors.
POOL_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}

#: Pool methods whose first argument is shipped to worker processes.
POOL_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "imap", "imap_unordered"}

#: Canonical dotted names that yield futures in completion order.
AS_COMPLETED_NAMES = {"concurrent.futures.as_completed"}

#: Exception names that cover the dead-worker path for RL024.
BROKEN_POOL_HANDLERS = {"BrokenProcessPool", "BrokenExecutor", "Exception", "BaseException"}

#: Method names that mutate a container in place (RL021/RL025).
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
    "__setitem__",
}

#: Constructors whose result is a mutable container (RL021).
MUTABLE_CONTAINER_CTORS = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}

#: Wall-clock reads that leak real time into a cached result (RL022).
CLOCK_READS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Attribute calls that read file contents regardless of receiver type.
FILE_READ_ATTRS = {"read_text", "read_bytes"}


def _assigned_names(fn_node: ast.AST) -> Set[str]:
    """Every name bound inside a function (params, assignments, loops)."""
    names: Set[str] = set()
    args = fn_node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.With):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
    return names


def _nested_function_names(fn_node: ast.AST) -> Set[str]:
    """Names of defs nested inside a function (closures for RL020)."""
    out: Set[str] = set()
    for node in ast.walk(fn_node):
        if node is fn_node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.add(node.name)
    return out


def _walk_with_parents(
    node: ast.AST, parents: Optional[List[ast.AST]] = None
) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(node, ancestors)`` pairs, outermost ancestor first."""
    parents = parents if parents is not None else []
    yield node, parents
    parents.append(node)
    for child in ast.iter_child_nodes(node):
        yield from _walk_with_parents(child, parents)
    parents.pop()


class ParPass:
    """Runs the six parallelism-safety checks over the symbol table."""

    def __init__(self, table: SymbolTable, graph: CallGraph, config, reporter):
        self.table = table
        self.graph = graph
        self.config = config
        self.reporter = reporter
        self.resolver = CallResolver(table)
        self._mutated_globals: Set[str] = set()
        self._mutable_globals: Dict[str, Set[str]] = {}

    def run(self) -> None:
        self._index_globals()
        cells = self._discover_cells()
        closures = {cell.qualname: self._closure(cell) for cell in cells}
        for module in sorted(self.table.modules.values(), key=lambda m: m.name):
            for fn in self._functions_of(module):
                self._check_pool_submissions(fn, module)
            if module_in(module.name, self.config.par_packages):
                for fn in self._functions_of(module):
                    self._check_ordered_reduction(fn, module)
                    self._check_future_result_handling(fn, module)
                    self._check_post_handoff_mutation(fn, module)
        reported: Set[Tuple[str, int, int]] = set()
        for cell in sorted(cells, key=lambda c: c.qualname):
            for fn in closures[cell.qualname]:
                fn_module = self.table.modules.get(fn.module)
                if fn_module is None:
                    continue
                self._check_shared_state_reads(cell, fn, fn_module, reported)
                self._check_cache_purity(cell, fn, fn_module, reported)

    # -- shared infrastructure --------------------------------------

    def _functions_of(self, module: ModuleInfo) -> List[FunctionInfo]:
        out = list(module.functions.values())
        for cls in module.classes.values():
            out.extend(cls.methods.values())
        return out

    def _dotted(self, node: ast.AST, module: ModuleInfo) -> str:
        dotted = self.resolver.dotted_callee(node, module)
        return self.table.resolve_alias(dotted) if dotted else ""

    def _module_ref(self, local: str, module: ModuleInfo) -> Optional[str]:
        """Module a local name is bound to, covering both import forms.

        ``import repro.campaign.shared as shared`` resolves via the
        module map; ``from repro.campaign import shared`` lands in the
        from-import map, so also accept origins that name an analyzed
        module.
        """
        origin = module.imports.module_of(local)
        if origin:
            return origin
        origin = module.imports.origin_of(local)
        if origin and origin in self._mutable_globals:
            return origin
        return None

    def _discover_cells(self) -> List[FunctionInfo]:
        """Campaign cells: registry entries plus ``*_cell`` functions."""
        qualnames: Set[str] = set()
        for module in self.table.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Assign):
                    targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                    if "CELLS" in targets and isinstance(node.value, ast.Dict):
                        for value in node.value.values:
                            qualnames.update(_cell_path_to_qualname(value))
                elif isinstance(node, ast.Call):
                    dotted = self._dotted(node.func, module)
                    if dotted.endswith(".register_cell") or dotted == "register_cell":
                        if len(node.args) >= 2:
                            qualnames.update(_cell_path_to_qualname(node.args[1]))
            if module_in(module.name, self.config.par_packages):
                for fn in module.functions.values():
                    if fn.name.endswith("_cell") and _has_cell_signature(fn):
                        qualnames.add(fn.qualname)
        cells = []
        for qualname in sorted(qualnames):
            fn = self.table.function(qualname)
            if fn is not None:
                cells.append(fn)
        return cells

    def _closure(self, cell: FunctionInfo) -> List[FunctionInfo]:
        """The cell plus everything reachable from it in the call graph."""
        seen: Dict[str, FunctionInfo] = {cell.qualname: cell}
        frontier = [cell.qualname]
        while frontier:
            qualname = frontier.pop()
            for site in self.graph.calls_from(qualname):
                callee = site.callee
                if callee.qualname not in seen:
                    seen[callee.qualname] = callee
                    frontier.append(callee.qualname)
        return sorted(seen.values(), key=lambda f: f.qualname)

    # -- RL020 ------------------------------------------------------

    def _pool_names(self, fn: FunctionInfo, module: ModuleInfo) -> Set[str]:
        """Local names bound to a process pool inside ``fn``."""
        names: Set[str] = set()
        for param in fn.params:
            if "ProcessPoolExecutor" in param.annotation or param.annotation == "Pool":
                names.add(param.name)
        for node in ast.walk(fn.node):
            value = None
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                value, target = node.value, node.targets[0]
            elif isinstance(node, ast.With):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and isinstance(item.optional_vars, ast.Name)
                        and self._dotted(item.context_expr.func, module)
                        in POOL_CONSTRUCTORS
                    ):
                        names.add(item.optional_vars.id)
                continue
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and self._dotted(value.func, module) in POOL_CONSTRUCTORS
            ):
                names.add(target.id)
        return names

    def _unpicklable_reason(
        self, target: ast.AST, fn: FunctionInfo, module: ModuleInfo
    ) -> Optional[str]:
        """Why ``target`` cannot safely cross a process boundary."""
        if isinstance(target, ast.Lambda):
            return "a lambda is not picklable"
        if isinstance(target, ast.Call):
            dotted = self._dotted(target.func, module)
            if dotted in ("functools.partial", "partial") and target.args:
                return self._unpicklable_reason(target.args[0], fn, module)
            return None
        if isinstance(target, ast.Name):
            if target.id in _nested_function_names(fn.node):
                return (
                    f"'{target.id}' is a closure defined inside "
                    f"{fn.qualname} — workers cannot import it"
                )
            return None
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            base = target.value.id
            if module.imports.module_of(base):
                return None  # module.function reference — importable
            if base in module.classes or self.table.class_info(
                self._dotted(target.value, module)
            ):
                return None  # Class.method — resolves by qualname
            return (
                f"'{base}.{target.attr}' is a bound method — pickling it "
                "drags the whole instance into every worker"
            )
        return None

    def _check_pool_submissions(self, fn: FunctionInfo, module: ModuleInfo) -> None:
        pools = self._pool_names(fn, module)
        if not pools:
            return
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
                and node.args
            ):
                continue
            reason = self._unpicklable_reason(node.args[0], fn, module)
            if reason is not None:
                self.reporter.report(
                    module,
                    node,
                    "RL020",
                    f"callable submitted to the process pool is not a "
                    f"module-level function: {reason} — submit a module-level "
                    "callable (or functools.partial of one) so workers can "
                    "resolve it by import",
                    context=fn.qualname,
                )

    # -- RL021 ------------------------------------------------------

    def _index_globals(self) -> None:
        """Index mutable module globals and every mutation site."""
        for module in self.table.modules.values():
            mutable: Set[str] = set()
            for stmt in module.tree.body:
                value = None
                name = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    if isinstance(stmt.targets[0], ast.Name):
                        name, value = stmt.targets[0].id, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    name, value = stmt.target.id, stmt.value
                if name is None or value is None:
                    continue
                if _is_mutable_container(value):
                    mutable.add(name)
            self._mutable_globals[module.name] = mutable
        for module in self.table.modules.values():
            for target_module, name in self._mutation_sites(module):
                self._mutated_globals.add(f"{target_module}.{name}")

    def _mutation_sites(self, module: ModuleInfo) -> Iterator[Tuple[str, str]]:
        """(module, global) pairs mutated anywhere in ``module``."""
        globals_here = self._mutable_globals.get(module.name, set())

        def resolve_base(expr: ast.AST) -> Optional[Tuple[str, str]]:
            # X.method(...) / X[k] = v where X is a module global here.
            if isinstance(expr, ast.Name) and expr.id in globals_here:
                return module.name, expr.id
            # mod.X.method(...) / mod.X[k] = v through an imported module.
            if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
                origin = self._module_ref(expr.value.id, module)
                if origin and expr.attr in self._mutable_globals.get(origin, set()):
                    return origin, expr.attr
            return None

        declared_global: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in MUTATOR_METHODS:
                    found = resolve_base(node.func.value)
                    if found is not None:
                        yield found
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        found = resolve_base(target.value)
                        if found is not None:
                            yield found
        for name in declared_global:
            if name in globals_here:
                yield module.name, name

    def _check_shared_state_reads(
        self,
        cell: FunctionInfo,
        fn: FunctionInfo,
        module: ModuleInfo,
        reported: Set[Tuple[str, int, int]],
    ) -> None:
        locals_here = _assigned_names(fn.node)
        mutable_here = self._mutable_globals.get(module.name, set())
        for node in ast.walk(fn.node):
            qualified = None
            display = None
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable_here
                and node.id not in locals_here
            ):
                qualified = f"{module.name}.{node.id}"
                display = node.id
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                origin = self._module_ref(node.value.id, module)
                if origin and node.attr in self._mutable_globals.get(origin, set()):
                    qualified = f"{origin}.{node.attr}"
                    display = f"{node.value.id}.{node.attr}"
            if qualified is None or qualified not in self._mutated_globals:
                continue
            key = ("RL021", id(node), 0)
            if key in reported:
                continue
            reported.add(key)
            self.reporter.report(
                module,
                node,
                "RL021",
                f"campaign cell {cell.qualname} transitively reads "
                f"module-level mutable state '{display}' ({qualified}), "
                "which is mutated elsewhere in the project — forked workers "
                "each see a private copy, so updates are lost and results "
                "depend on fork timing; pass the data through the scenario "
                "spec instead",
                context=fn.qualname,
            )

    # -- RL022 ------------------------------------------------------

    def _impure_read(self, node: ast.AST, module: ModuleInfo) -> Optional[str]:
        """Describe a read outside the spec hash, or None."""
        if isinstance(node, ast.Call):
            func = node.func
            dotted = self._dotted(func, module)
            if dotted in ("os.getenv", "os.environ.get"):
                return "environment variable (os.getenv)"
            if dotted in CLOCK_READS:
                return f"wall clock ({dotted})"
            if isinstance(func, ast.Name) and func.id == "open":
                if not module.imports.origin_of("open"):
                    return "file contents (open())"
            if isinstance(func, ast.Attribute) and func.attr in FILE_READ_ATTRS:
                return f"file contents (.{func.attr}())"
            return None
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if (
                node.attr == "environ"
                and module.imports.module_of(node.value.id) == "os"
            ):
                return "environment (os.environ)"
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if module.imports.origin_of(node.id) == "os.environ":
                return "environment (os.environ)"
        return None

    def _check_cache_purity(
        self,
        cell: FunctionInfo,
        fn: FunctionInfo,
        module: ModuleInfo,
        reported: Set[Tuple[str, int, int]],
    ) -> None:
        # The sanctioned clock shim(s) may read time; a cell calling
        # into them is instrumented, not impure — span timestamps never
        # feed back into cached results.
        if module_in(module.name, self.config.clock_modules):
            return
        environ_call_values: Set[int] = {
            id(node.func.value)
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        }
        for node in ast.walk(fn.node):
            what = self._impure_read(node, module)
            if what is None:
                continue
            # ``os.environ.get(...)`` already reports as a call; skip the
            # bare ``os.environ`` attribute nested inside it.
            if isinstance(node, ast.Attribute) and id(node) in environ_call_values:
                continue
            key = ("RL022", id(node), 0)
            if key in reported:
                continue
            reported.add(key)
            self.reporter.report(
                module,
                node,
                "RL022",
                f"campaign cell {cell.qualname} transitively reads "
                f"{what}, which the scenario spec hash does not capture — "
                "two runs with identical specs can cache different results "
                "(cache poisoning); pass the value through the spec params "
                "instead",
                context=fn.qualname,
            )

    # -- RL023 ------------------------------------------------------

    def _check_ordered_reduction(self, fn: FunctionInfo, module: ModuleInfo) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.For):
                continue
            iter_expr = node.iter
            over = None
            if (
                isinstance(iter_expr, ast.Call)
                and self._dotted(iter_expr.func, module) in AS_COMPLETED_NAMES
            ):
                over = "as_completed(...) (completion order)"
            elif _is_unordered_iterable(iter_expr):
                over = _describe_unordered(iter_expr)
            if over is None:
                continue
            accumulates = any(
                isinstance(sub, ast.AugAssign)
                or (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("append", "extend", "add", "update")
                )
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if not accumulates:
                continue
            self.reporter.report(
                module,
                node,
                "RL023",
                f"shard results merged by accumulating over {over} — "
                "float accumulation is not commutative and the merged "
                "output depends on completion/iteration order, not the "
                "spec; collect into a list keyed by scenario index and "
                "reduce in expansion order",
                context=fn.qualname,
            )

    # -- RL024 ------------------------------------------------------

    def _uses_pool_futures(self, fn: FunctionInfo, module: ModuleInfo) -> bool:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                ):
                    return True
                dotted = self._dotted(node.func, module)
                if dotted in AS_COMPLETED_NAMES or dotted == "concurrent.futures.wait":
                    return True
        return False

    def _check_future_result_handling(
        self, fn: FunctionInfo, module: ModuleInfo
    ) -> None:
        if not self._uses_pool_futures(fn, module):
            return
        for node, parents in _walk_with_parents(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
                and not node.args
            ):
                continue
            if any(
                isinstance(parent, ast.Try)
                and any(_handles_broken_pool(h) for h in parent.handlers)
                for parent in parents
            ):
                continue
            self.reporter.report(
                module,
                node,
                "RL024",
                "Future.result() consumed without handling the "
                "BrokenProcessPool path — a worker killed by the OS turns "
                "into an unhandled crash instead of a recorded cell "
                "failure; wrap in try/except BrokenProcessPool (or "
                "Exception) and record the outcome",
                context=fn.qualname,
            )

    # -- RL025 ------------------------------------------------------

    def _check_post_handoff_mutation(self, fn: FunctionInfo, module: ModuleInfo) -> None:
        handoffs: Dict[str, int] = {}
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = self._dotted(node.func, module)
            is_handoff = (
                isinstance(node.func, ast.Attribute) and node.func.attr == "put"
            ) or dotted.rsplit(".", 1)[-1] in ("save_results", "write_run")
            if not is_handoff:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    lineno = getattr(node, "lineno", 0)
                    prior = handoffs.get(arg.id)
                    handoffs[arg.id] = min(prior, lineno) if prior else lineno
        if not handoffs:
            return
        for node in ast.walk(fn.node):
            name, verb = _mutation_of(node)
            if name is None or name not in handoffs:
                continue
            if getattr(node, "lineno", 0) <= handoffs[name]:
                continue
            self.reporter.report(
                module,
                node,
                "RL025",
                f"'{name}' is mutated ({verb}) after being handed to the "
                "cache/store layer — the persisted entry was serialized at "
                "put time and now silently diverges from the in-memory "
                "object; finish building the result before storing it",
                context=fn.qualname,
            )


def _has_cell_signature(fn: FunctionInfo) -> bool:
    """True for the cell calling convention: keyword-only parameters.

    The runner invokes cells as ``fn(seed=..., repetition=...,
    **params)``, so real cells declare ``def cell(*, ...)``.  This
    keeps registry/dispatch helpers that merely *end* in ``_cell``
    (``register_cell``, ``execute_cell``) out of the cell set.
    """
    args = fn.node.args
    return not args.args and not args.posonlyargs and bool(args.kwonlyargs)


def _cell_path_to_qualname(node: ast.AST) -> Set[str]:
    """``"pkg.mod:function"`` string constants to dotted qualnames."""
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and ":" in node.value
    ):
        module, _, attr = node.value.partition(":")
        if module and attr:
            return {f"{module}.{attr}"}
    return set()


def _is_mutable_container(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else (func.attr if isinstance(func, ast.Attribute) else "")
        )
        return name in MUTABLE_CONTAINER_CTORS
    return False


def _is_unordered_iterable(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
    return False


def _describe_unordered(node: ast.AST) -> str:
    return "a set (unordered iteration)"


def _mutation_of(node: ast.AST) -> Tuple[Optional[str], str]:
    """``(name, verb)`` when ``node`` mutates the object bound to a name.

    Rebinding (``x = ...``, ``x += 1`` on a plain name) is not a
    mutation of the previously stored object, so only subscript and
    attribute stores and in-place mutator methods count.
    """
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)) and isinstance(
                target.value, ast.Name
            ):
                verb = (
                    "item assignment"
                    if isinstance(target, ast.Subscript)
                    else "attribute assignment"
                )
                return target.value.id, verb
    elif isinstance(node, ast.AugAssign):
        target = node.target
        if isinstance(target, (ast.Subscript, ast.Attribute)) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id, "augmented assignment"
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATOR_METHODS and isinstance(
            node.func.value, ast.Name
        ):
            return node.func.value.id, f".{node.func.attr}()"
    return None, ""


def _handles_broken_pool(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True

    def names(node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Tuple):
            for el in node.elts:
                yield from names(el)
        elif isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr

    return any(name in BROKEN_POOL_HANDLERS for name in names(handler.type))


__all__ = ["ParPass", "POOL_CONSTRUCTORS", "MUTATOR_METHODS"]
