"""Unit tests for the WiGig (D5000) MAC model."""

import numpy as np
import pytest

from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind, WIGIG_TIMING
from repro.mac.simulator import Medium, Simulator, Station, StaticCoupling
from repro.mac.wigig import (
    MAX_AGGREGATION,
    WiGigLink,
    data_frame_duration_s,
    max_aggregation_for,
)
from repro.phy.mcs import mcs_by_index


def make_link(coupling_db=-40.0, seed=1, **kwargs):
    sim = Simulator(seed=seed)
    coupling = StaticCoupling({
        ("tx", "rx"): coupling_db,
        ("rx", "tx"): coupling_db,
    })
    medium = Medium(sim, coupling)
    tx = Station("tx", Vec2(0, 0))
    rx = Station("rx", Vec2(2, 0))
    medium.register(tx)
    medium.register(rx)
    kwargs.setdefault("snr_hint_db", 35.0)
    link = WiGigLink(sim, medium, transmitter=tx, receiver=rx, **kwargs)
    return sim, medium, link


class TestFrameDurations:
    def test_single_mpdu_is_short(self):
        """One MPDU at the top MCS lasts ~6 us (Figure 9 'short')."""
        d = data_frame_duration_s(1, mcs_by_index(11))
        assert 5e-6 < d < 8e-6

    def test_full_aggregate_is_25us(self):
        """Twelve MPDUs at the top MCS approach the 25 us maximum."""
        d = data_frame_duration_s(MAX_AGGREGATION, mcs_by_index(11))
        assert 23e-6 < d <= 25.5e-6

    def test_duration_monotone_in_mpdus(self):
        mcs = mcs_by_index(11)
        durations = [data_frame_duration_s(n, mcs) for n in range(1, 13)]
        assert durations == sorted(durations)

    def test_zero_mpdus_rejected(self):
        with pytest.raises(ValueError):
            data_frame_duration_s(0, mcs_by_index(11))

    def test_low_mcs_fits_fewer_mpdus(self):
        assert max_aggregation_for(mcs_by_index(6)) < max_aggregation_for(mcs_by_index(11))

    def test_cap_respects_25us(self):
        for idx in (1, 4, 6, 8, 11):
            mcs = mcs_by_index(idx)
            n = max_aggregation_for(mcs)
            assert data_frame_duration_s(n, mcs) <= WIGIG_TIMING.max_data_frame_s + 1e-9


class TestBeacons:
    def test_beacon_interval(self):
        sim, medium, link = make_link()
        sim.run_until(0.011)
        beacons = [r for r in medium.history if r.kind == FrameKind.BEACON]
        # Dock beacon + laptop reply every 1.1 ms -> ~20 in 11 ms.
        assert 16 <= len(beacons) <= 22
        dock_beacons = sorted(r.start_s for r in beacons if r.source == "rx")
        gaps = np.diff(dock_beacons)
        assert np.median(gaps) == pytest.approx(WIGIG_TIMING.beacon_interval_s, rel=0.01)

    def test_beacons_can_be_disabled(self):
        sim, medium, link = make_link(send_beacons=False)
        sim.run_until(0.01)
        assert not any(r.kind == FrameKind.BEACON for r in medium.history)


class TestDiscovery:
    def test_discovery_period_102ms(self):
        sim, medium, link = make_link(associated=False, send_beacons=False)
        sim.run_until(0.5)
        disc = sorted(r.start_s for r in medium.history if r.kind == FrameKind.DISCOVERY)
        assert len(disc) >= 3
        gaps = np.diff(disc)
        assert np.allclose(gaps, WIGIG_TIMING.discovery_interval_s)

    def test_discovery_frame_is_1ms(self):
        sim, medium, link = make_link(associated=False, send_beacons=False)
        sim.run_until(0.3)
        disc = [r for r in medium.history if r.kind == FrameKind.DISCOVERY]
        assert disc[0].duration_s == pytest.approx(1.0e-3)

    def test_association_stops_discovery(self):
        sim, medium, link = make_link(associated=False, send_beacons=False)
        sim.run_until(0.15)
        link.associate()
        count = sum(1 for r in medium.history if r.kind == FrameKind.DISCOVERY)
        sim.run_until(0.6)
        after = sum(1 for r in medium.history if r.kind == FrameKind.DISCOVERY)
        assert after == count

    def test_unassociated_link_does_not_send_data(self):
        sim, medium, link = make_link(associated=False, send_beacons=False)
        link.enqueue_mpdus(100)
        sim.run_until(0.05)
        assert not any(r.kind == FrameKind.DATA for r in medium.history)


class TestBurstStructure:
    def test_burst_opens_with_rts_cts(self):
        sim, medium, link = make_link(send_beacons=False)
        link.enqueue_mpdus(5)
        sim.run_until(0.01)
        kinds = [r.kind for r in medium.history[:3]]
        assert kinds[0] == FrameKind.RTS
        assert kinds[1] == FrameKind.CTS
        assert kinds[2] == FrameKind.DATA

    def test_each_data_frame_acked(self):
        sim, medium, link = make_link(send_beacons=False)
        link.enqueue_mpdus(30)
        sim.run_until(0.02)
        data = [r for r in medium.history if r.kind == FrameKind.DATA]
        acks = [r for r in medium.history if r.kind == FrameKind.ACK]
        assert len(data) >= 2
        assert len(acks) == len(data)

    def test_queue_drains_completely(self):
        sim, medium, link = make_link(send_beacons=False)
        link.enqueue_mpdus(50)
        sim.run_until(0.05)
        assert link.queue_depth_mpdus == 0
        assert link.stats.mpdus_delivered == 50

    def test_deep_queue_aggregates_fully(self):
        sim, medium, link = make_link(send_beacons=False)
        link.enqueue_mpdus(MAX_AGGREGATION * 4)
        sim.run_until(0.01)
        data = [r for r in medium.history if r.kind == FrameKind.DATA]
        assert data[0].aggregated_mpdus == MAX_AGGREGATION

    def test_shallow_queue_single_mpdu(self):
        sim, medium, link = make_link(send_beacons=False)
        link.enqueue_mpdus(1)
        sim.run_until(0.01)
        data = [r for r in medium.history if r.kind == FrameKind.DATA]
        assert data[0].aggregated_mpdus == 1

    def test_delivery_callback_counts_mpdus(self):
        delivered = []
        sim, medium, link = make_link(send_beacons=False)
        link.on_delivery = delivered.append
        link.enqueue_mpdus(20)
        sim.run_until(0.05)
        assert sum(delivered) == 20

    def test_bursts_bounded_by_2ms(self):
        sim, medium, link = make_link(send_beacons=False)
        link.enqueue_mpdus(5000)
        sim.run_until(0.01)
        data = [r for r in medium.history if r.kind == FrameKind.DATA]
        rts = [r for r in medium.history if r.kind == FrameKind.RTS]
        assert len(rts) >= 2  # must have re-contended at least once
        # Each data frame belongs to the latest RTS before it and must
        # start within that burst's 2 ms TXOP.
        rts_starts = sorted(r.start_s for r in rts)
        import bisect

        for d in data:
            idx = bisect.bisect_right(rts_starts, d.start_s) - 1
            assert idx >= 0
            assert d.start_s - rts_starts[idx] <= WIGIG_TIMING.max_burst_s + 1e-9


class TestAggregationPolicy:
    def test_ceiling_respected(self):
        sim, medium, link = make_link(send_beacons=False, max_aggregation=3)
        link.enqueue_mpdus(100)
        sim.run_until(0.01)
        data = [r for r in medium.history if r.kind == FrameKind.DATA]
        assert max(r.aggregated_mpdus for r in data) <= 3

    def test_unaggregated_mode(self):
        sim, medium, link = make_link(send_beacons=False, max_aggregation=1)
        link.enqueue_mpdus(50)
        sim.run_until(0.05)
        data = [r for r in medium.history if r.kind == FrameKind.DATA]
        assert all(r.aggregated_mpdus == 1 for r in data)
        assert link.stats.mpdus_delivered == 50

    def test_ceiling_validation(self):
        with pytest.raises(ValueError):
            make_link(send_beacons=False, max_aggregation=0)
        with pytest.raises(ValueError):
            make_link(send_beacons=False, max_aggregation=99)

    def test_lower_ceiling_lowers_throughput(self):
        rates = {}
        for ceiling in (1, 12):
            sim, medium, link = make_link(send_beacons=False,
                                          max_aggregation=ceiling)
            link.enqueue_mpdus(50_000)
            sim.run_until(0.05)
            rates[ceiling] = link.stats.mpdus_delivered
        assert rates[12] > 3 * rates[1]


class TestRetransmissions:
    def test_lossy_link_retransmits(self):
        sim, medium, link = make_link(coupling_db=-86.0, send_beacons=False,
                                      snr_hint_db=None, initial_mcs_index=11,
                                      rate_adaptation_interval_s=0.0)
        # SNR ~ 14.7 dB at MCS 11 threshold: heavy loss.
        link.enqueue_mpdus(40)
        sim.run_until(0.1)
        assert link.stats.retransmissions > 0
        assert link.stats.data_frames_sent > link.stats.data_frames_delivered

    def test_mpdus_survive_retransmission(self):
        # SNR ~3.7 dB: MCS 2 loses roughly a quarter of its frames, so
        # the queue drains only through retries - but it must drain.
        sim, medium, link = make_link(coupling_db=-81.0, send_beacons=False,
                                      snr_hint_db=None, initial_mcs_index=2,
                                      rate_adaptation_interval_s=0.0)
        link.enqueue_mpdus(40)
        sim.run_until(0.5)
        assert link.stats.retransmissions > 0
        assert link.stats.mpdus_delivered == 40

    def test_retransmission_flag_set(self):
        sim, medium, link = make_link(coupling_db=-86.0, send_beacons=False,
                                      snr_hint_db=None, initial_mcs_index=11,
                                      rate_adaptation_interval_s=0.0)
        link.enqueue_mpdus(40)
        sim.run_until(0.1)
        assert any(r.retransmission for r in medium.history if r.kind == FrameKind.DATA)


class TestRateAdaptation:
    def test_initial_mcs_from_snr_hint(self):
        _, _, link = make_link(snr_hint_db=12.0)
        assert link.mcs.index == 9  # QPSK 13/16 at 12 dB with 2 dB backoff

    def test_low_hint_starts_low(self):
        _, _, link = make_link(snr_hint_db=4.0)
        assert link.mcs.index <= 2

    def test_losses_step_rate_down(self):
        sim, medium, link = make_link(coupling_db=-86.0, send_beacons=False,
                                      snr_hint_db=None, initial_mcs_index=11)
        link.enqueue_mpdus(3000)
        sim.run_until(0.3)
        assert link.mcs.index < 11
        assert len(link.mcs_history) >= 1

    def test_clean_link_recovers_rate(self):
        sim, medium, link = make_link(coupling_db=-40.0, send_beacons=False,
                                      snr_hint_db=35.0)
        link.set_mcs(5)
        link.enqueue_mpdus(5000)
        sim.run_until(0.5)
        assert link.mcs.index > 5
