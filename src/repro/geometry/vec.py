"""Immutable 2D vectors and angle helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


def deg_to_rad(degrees: float) -> float:
    """Convert degrees to radians."""
    return math.radians(degrees)


def rad_to_deg(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)


def normalize_angle(radians: float) -> float:
    """Wrap an angle into ``(-pi, pi]``."""
    wrapped = math.fmod(radians, 2.0 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    elif wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    return wrapped


def angle_between(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in radians."""
    return abs(normalize_angle(a - b))


@dataclass(frozen=True)
class Vec2:
    """An immutable 2D point or direction in meters."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vec2") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """z-component of the 3D cross product (signed area)."""
        return self.x * other.y - self.y * other.x

    def length(self) -> float:
        """Euclidean norm."""
        return math.hypot(self.x, self.y)

    def length_squared(self) -> float:
        """Squared Euclidean norm (avoids a sqrt in comparisons)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to another point."""
        return (self - other).length()

    def normalized(self) -> "Vec2":
        """Unit-length copy.  Raises on the zero vector."""
        norm = self.length()
        if norm == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Vec2(self.x / norm, self.y / norm)

    def angle(self) -> float:
        """Direction angle in radians, CCW from +x, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def rotated(self, radians: float) -> "Vec2":
        """Copy rotated CCW by ``radians`` about the origin."""
        c, s = math.cos(radians), math.sin(radians)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def perpendicular(self) -> "Vec2":
        """Copy rotated CCW by 90 degrees."""
        return Vec2(-self.y, self.x)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    @staticmethod
    def from_polar(
        radius: float,  # replint: unit=m
        radians: float,
    ) -> "Vec2":
        """Construct from polar coordinates."""
        return Vec2(radius * math.cos(radians), radius * math.sin(radians))

    @staticmethod
    def unit(radians: float) -> "Vec2":
        """Unit vector pointing at the given angle."""
        return Vec2(math.cos(radians), math.sin(radians))
