"""Validation: trace-based angular profiles agree with the analytic
sweep, and work end-to-end in the Figure 20 geometry."""

import math

import numpy as np
import pytest

from repro.core.angular import (
    classify_lobes,
    find_lobes,
    measure_angular_profile,
    measure_angular_profile_from_traces,
)
from repro.devices.rotation import RotationStage
from repro.devices.vubiq import VubiqReceiver
from repro.experiments.common import build_wigig_link_setup
from repro.geometry.vec import Vec2
from repro.phy.antenna import standard_horn_25dbi
from repro.phy.channel import LinkBudget


@pytest.fixture(scope="module")
def running_link():
    setup = build_wigig_link_setup(distance_m=2.5, window_bytes=128 * 1024, seed=9)
    setup.run(0.06)
    return setup


def vubiq_factory_for(budget):
    def factory(position: Vec2, boresight: float) -> VubiqReceiver:
        return VubiqReceiver(
            position=position,
            boresight_rad=boresight,
            antenna=standard_horn_25dbi(),
            budget=budget,
        )

    return factory


class TestTraceBasedProfile:
    @pytest.fixture(scope="class")
    def profiles(self, running_link):
        setup = running_link
        location = Vec2(1.25, 1.2)  # beside the link
        factory = vubiq_factory_for(LinkBudget())
        stage = RotationStage(steps=36)
        analytic = measure_angular_profile(
            location, devices=[setup.laptop, setup.dock],
            vubiq_factory=factory, stage=stage,
        )
        traced = measure_angular_profile_from_traces(
            location, setup.medium.history, setup.devices,
            vubiq_factory=factory, stage=stage,
            capture_s=1.5e-3, capture_start_s=0.05,
        )
        return analytic, traced, location, setup

    def test_strongest_directions_agree(self, profiles):
        analytic, traced, _, _ = profiles
        a_peak = analytic.orientations_rad[int(np.argmax(analytic.power_dbm))]
        t_peak = traced.orientations_rad[int(np.argmax(traced.power_dbm))]
        from repro.geometry.vec import angle_between

        assert math.degrees(angle_between(a_peak, t_peak)) < 25.0

    def test_both_endpoints_visible(self, profiles):
        _, traced, location, setup = profiles
        lobes = classify_lobes(
            find_lobes(traced, min_relative_db=-20.0),
            location,
            {"laptop": setup.laptop.position, "dock": setup.dock.position},
        )
        attributions = {l.attribution for l in lobes}
        # The paper: "one pointing to the transmitter and one pointing
        # to the receiver ... the receiver not only receives data
        # frames but also transmits the corresponding acknowledgments."
        assert "laptop" in attributions
        assert "dock" in attributions

    def test_profile_shapes_correlate(self, profiles):
        analytic, traced, _, _ = profiles
        a = analytic.power_dbm - analytic.power_dbm.max()
        t = traced.power_dbm - traced.power_dbm.max()
        # Compare only directions the trace pipeline could measure.
        mask = t > -38.0
        assert mask.sum() >= 8
        corr = np.corrcoef(a[mask], t[mask])[0, 1]
        assert corr > 0.6
