"""Tests for the rotation stage and semicircle placement helpers."""

import math

import numpy as np
import pytest

from repro.devices.rotation import RotationStage, semicircle_positions
from repro.geometry.vec import Vec2
from repro.phy.mcs import OFDM_MCS_TABLE, mcs_by_index


class TestRotationStage:
    def test_step_count(self):
        stage = RotationStage(steps=36)
        assert len(list(stage.orientations())) == 36

    def test_uniform_spacing(self):
        stage = RotationStage(steps=72)
        angles = list(stage.orientations())
        gaps = np.diff(angles)
        assert np.allclose(gaps, 2 * math.pi / 72)

    def test_start_angle(self):
        stage = RotationStage(steps=8, start_rad=1.0)
        assert next(iter(stage.orientations())) == pytest.approx(1.0)

    def test_backlash_perturbs(self):
        ideal = list(RotationStage(steps=36).orientations())
        noisy = list(RotationStage(steps=36, backlash_std_rad=0.01, seed=1).orientations())
        assert not np.allclose(ideal, noisy)
        assert np.allclose(ideal, noisy, atol=0.05)

    def test_sweep_calls_measure_per_step(self):
        stage = RotationStage(steps=12)
        seen = []

        def measure(angle):
            seen.append(angle)
            return -50.0

        result = stage.sweep(measure)
        assert len(result) == 12
        assert len(seen) == 12
        assert all(power == -50.0 for _, power in result)

    def test_validation(self):
        with pytest.raises(ValueError):
            RotationStage(steps=2)
        with pytest.raises(ValueError):
            RotationStage(backlash_std_rad=-0.1)


class TestSemicirclePositions:
    def test_count_and_radius(self):
        center = Vec2(1.0, 2.0)
        points = semicircle_positions(center, radius_m=3.2, count=100)
        assert len(points) == 100
        for pos, _bearing in points:
            assert pos.distance_to(center) == pytest.approx(3.2)

    def test_span_is_half_circle(self):
        points = semicircle_positions(Vec2(0, 0), count=50, facing_rad=0.0)
        bearings = [b for _, b in points]
        assert bearings[0] == pytest.approx(-math.pi / 2)
        assert bearings[-1] == pytest.approx(math.pi / 2)

    def test_facing_recenters_arc(self):
        points = semicircle_positions(Vec2(0, 0), count=11, facing_rad=math.pi / 2)
        mid_pos, mid_bearing = points[5]
        assert mid_bearing == pytest.approx(math.pi / 2)
        assert mid_pos.y > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            semicircle_positions(Vec2(0, 0), count=1)
        with pytest.raises(ValueError):
            semicircle_positions(Vec2(0, 0), radius_m=0.0)


class TestOfdmTable:
    def test_twelve_ofdm_entries(self):
        assert len(OFDM_MCS_TABLE) == 12
        assert OFDM_MCS_TABLE[0].index == 13
        assert OFDM_MCS_TABLE[-1].index == 24

    def test_peak_rate(self):
        assert OFDM_MCS_TABLE[-1].phy_rate_gbps == pytest.approx(6.75675)

    def test_rates_and_thresholds_monotone(self):
        rates = [m.phy_rate_bps for m in OFDM_MCS_TABLE]
        thresholds = [m.min_snr_db for m in OFDM_MCS_TABLE]
        assert rates == sorted(rates)
        assert thresholds == sorted(thresholds)

    def test_lookup_by_index_spans_both_tables(self):
        assert mcs_by_index(11).modulation == "16-QAM"
        assert mcs_by_index(24).modulation == "64-QAM"
        with pytest.raises(KeyError):
            mcs_by_index(25)
