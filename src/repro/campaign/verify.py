"""Shard-determinism and cache-purity verification.

``repro campaign verify <name>`` *proves*, rather than assumes, the
two properties the campaign engine's results rest on:

1. **Shard determinism** — the campaign is run twice without a cache,
   once serially (``workers=1``, the reference path) and once on a
   process pool with the submission order deterministically shuffled
   (worst-case completion reordering).  The merged result stores must
   be byte-for-byte identical after dropping run-volatile fields
   (wall-clock timings, attempt counts, cached-vs-completed status).

2. **Cache purity** — every cell is executed in-process under
   :class:`repro.sanitize.PurityAudit`, which records each
   environment/file/clock read.  Any read not derivable from the
   scenario spec means the content-addressed cache key does not
   capture all inputs (the dynamic counterpart of lint rule RL022).
   A third run replays the shuffled-parallel results through a fresh
   cache and asserts a serial re-run is served entirely from cache
   with identical values.

The comparison canonicalizes rows exactly like the JSONL store
(sorted keys, compact separators), so "byte-identical" here is the
same byte-identity a persisted ``results.jsonl`` would show.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.registry import resolve_cell
from repro.campaign.runner import CampaignResult, CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.obs.prof import strip_time_fields

#: Row fields that legitimately differ between runs of a deterministic
#: campaign: wall-clock timings, retry counts, whether a result came
#: from the cache or fresh execution, and the shard assignment (which
#: is ``digest mod workers`` — a property of the run topology, not of
#: the result).  Everything else must be byte-identical.
VOLATILE_ROW_KEYS = ("elapsed_s", "attempts", "status", "shard")


def canonical_rows(result: CampaignResult) -> str:
    """Run-invariant canonical text of a campaign's result rows."""
    lines = []
    for row in result.result_rows():
        projected = dict(row)
        for key in VOLATILE_ROW_KEYS:
            projected.pop(key, None)
        lines.append(json.dumps(projected, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines)


def rows_digest(canonical: str) -> str:
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def canonical_metrics(result: CampaignResult) -> str:
    """Canonical text of a run's merged obs metrics (empty if none)."""
    metrics = result.telemetry.metrics
    if metrics is None:
        return ""
    return json.dumps(metrics, sort_keys=True, separators=(",", ":"))


def canonical_profile(result: CampaignResult) -> str:
    """Canonical text of a run's profile, count-derived fields only.

    Handler wall times are measurements and legitimately differ run to
    run; the handler names, call counts, and span counts must not —
    they are a function of the deterministic event schedule.
    """
    profile = result.telemetry.profile
    if not profile:
        return ""
    return json.dumps(
        strip_time_fields(profile), sort_keys=True, separators=(",", ":")
    )


@dataclass
class CellAudit:
    """Purity-audit outcome for one scenario executed in-process."""

    digest: str
    experiment: str
    reads: List[Dict[str, str]] = field(default_factory=list)
    reads_digest: str = ""
    error: Optional[str] = None

    @property
    def pure(self) -> bool:
        return not self.reads and self.error is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "digest": self.digest,
            "experiment": self.experiment,
            "reads": list(self.reads),
            "reads_digest": self.reads_digest,
            "error": self.error,
            "pure": self.pure,
        }


@dataclass
class VerifyReport:
    """Everything ``repro campaign verify`` measured."""

    campaign: str
    scenarios: int
    workers: int
    shuffle_seed: int
    serial_digest: str = ""
    parallel_digest: str = ""
    determinism_ok: bool = False
    metrics_serial_digest: str = ""
    metrics_parallel_digest: str = ""
    metrics_ok: bool = True
    profile_serial_digest: str = ""
    profile_parallel_digest: str = ""
    profile_ok: bool = True
    audits: List[CellAudit] = field(default_factory=list)
    audited: int = 0
    impure: int = 0
    purity_ok: bool = True
    cache_checked: bool = False
    cache_all_hits: bool = False
    cache_digest: str = ""
    cache_ok: bool = True
    first_divergence: str = ""

    @property
    def ok(self) -> bool:
        return (
            self.determinism_ok
            and self.metrics_ok
            and self.profile_ok
            and self.purity_ok
            and self.cache_ok
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "scenarios": self.scenarios,
            "workers": self.workers,
            "shuffle_seed": self.shuffle_seed,
            "serial_digest": self.serial_digest,
            "parallel_digest": self.parallel_digest,
            "determinism_ok": self.determinism_ok,
            "metrics_serial_digest": self.metrics_serial_digest,
            "metrics_parallel_digest": self.metrics_parallel_digest,
            "metrics_ok": self.metrics_ok,
            "profile_serial_digest": self.profile_serial_digest,
            "profile_parallel_digest": self.profile_parallel_digest,
            "profile_ok": self.profile_ok,
            "audited": self.audited,
            "impure": self.impure,
            "purity_ok": self.purity_ok,
            "audits": [a.to_dict() for a in self.audits if not a.pure],
            "cache_checked": self.cache_checked,
            "cache_all_hits": self.cache_all_hits,
            "cache_digest": self.cache_digest,
            "cache_ok": self.cache_ok,
            "first_divergence": self.first_divergence,
            "ok": self.ok,
        }


def _first_divergence(serial: str, parallel: str) -> str:
    """Human-oriented pointer at the first differing canonical row."""
    for lineno, (a, b) in enumerate(
        zip(serial.splitlines(), parallel.splitlines()), start=1
    ):
        if a != b:
            return f"row {lineno}: serial={a[:120]} parallel={b[:120]}"
    a_count = serial.count("\n") + 1 if serial else 0
    b_count = parallel.count("\n") + 1 if parallel else 0
    if a_count != b_count:
        return f"row counts differ: serial={a_count} parallel={b_count}"
    return ""


def _audit_cells(
    campaign: CampaignSpec,
    limit: int,
    allowed_env: Tuple[str, ...],
) -> List[CellAudit]:
    """Run up to ``limit`` cells in-process under the purity auditor.

    The cell is resolved *before* the audit window opens so import-time
    file access (module loading) is not charged to the cell.
    """
    from repro.sanitize import PurityAudit

    audits: List[CellAudit] = []
    for spec in campaign.expand()[:limit]:
        fn = resolve_cell(spec.experiment)
        entry = CellAudit(digest=spec.digest(), experiment=spec.experiment)
        with PurityAudit(allowed_env=allowed_env) as audit:
            try:
                fn(seed=spec.seed, repetition=spec.repetition, **spec.param_dict())
            except Exception as exc:
                entry.error = f"{type(exc).__name__}: {exc}"
        entry.reads = [r.to_dict() for r in audit.records]
        entry.reads_digest = audit.digest()
        audits.append(entry)
    return audits


def verify_campaign(
    campaign: CampaignSpec,
    workers: int = 4,
    shuffle_seed: int = 1,
    audit: bool = True,
    audit_limit: int = 16,
    cache_check: bool = True,
    allowed_env: Tuple[str, ...] = (),
) -> VerifyReport:
    """Prove workers=1 ≡ workers=N-with-shuffled-shards for a campaign."""
    report = VerifyReport(
        campaign=campaign.name,
        scenarios=campaign.scenario_count(),
        workers=workers,
        shuffle_seed=shuffle_seed,
    )

    if audit:
        report.audits = _audit_cells(campaign, audit_limit, allowed_env)
        report.audited = len(report.audits)
        report.impure = sum(1 for a in report.audits if not a.pure)
        report.purity_ok = report.impure == 0

    # Both determinism legs run with obs metrics AND profiling on: the
    # merged ``metrics`` manifest section must be byte-identical
    # between the serial reference and the shuffled parallel run, and
    # the ``profile`` section's count-derived projection (handler
    # names, call counts, span counts — never the wall times) must
    # match too.
    serial = CampaignRunner(
        campaign, cache=None, workers=1, metrics=True, profile=True
    ).run()
    parallel = CampaignRunner(
        campaign,
        cache=None,
        workers=workers,
        shuffle_seed=shuffle_seed,
        metrics=True,
        profile=True,
    ).run()
    serial_text = canonical_rows(serial)
    parallel_text = canonical_rows(parallel)
    report.serial_digest = rows_digest(serial_text)
    report.parallel_digest = rows_digest(parallel_text)
    report.determinism_ok = serial_text == parallel_text
    if not report.determinism_ok:
        report.first_divergence = _first_divergence(serial_text, parallel_text)
    serial_metrics = canonical_metrics(serial)
    parallel_metrics = canonical_metrics(parallel)
    report.metrics_serial_digest = rows_digest(serial_metrics)
    report.metrics_parallel_digest = rows_digest(parallel_metrics)
    report.metrics_ok = serial_metrics == parallel_metrics
    serial_profile = canonical_profile(serial)
    parallel_profile = canonical_profile(parallel)
    report.profile_serial_digest = rows_digest(serial_profile)
    report.profile_parallel_digest = rows_digest(parallel_profile)
    report.profile_ok = serial_profile == parallel_profile

    if cache_check:
        report.cache_checked = True
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            cache = ResultCache(tmp)
            CampaignRunner(
                campaign, cache=cache, workers=workers, shuffle_seed=shuffle_seed
            ).run()
            replay = CampaignRunner(campaign, cache=cache, workers=1).run()
        report.cache_all_hits = all(
            o.status == "cached" for o in replay.outcomes if o.ok
        )
        replay_text = canonical_rows(replay)
        report.cache_digest = rows_digest(replay_text)
        report.cache_ok = report.cache_all_hits and replay_text == serial_text

    return report


def render_report(report: VerifyReport) -> str:
    """Terminal summary of a verification run."""
    lines = [
        f"campaign {report.campaign}: {report.scenarios} scenario(s), "
        f"workers=1 vs workers={report.workers} "
        f"(shuffle_seed={report.shuffle_seed})",
        f"  serial digest:   {report.serial_digest}",
        f"  parallel digest: {report.parallel_digest}"
        + ("  [MATCH]" if report.determinism_ok else "  [DIVERGED]"),
        f"  metrics digest:  {report.metrics_serial_digest} vs "
        f"{report.metrics_parallel_digest}"
        + ("  [MATCH]" if report.metrics_ok else "  [DIVERGED]"),
        f"  profile digest:  {report.profile_serial_digest} vs "
        f"{report.profile_parallel_digest} (count fields)"
        + ("  [MATCH]" if report.profile_ok else "  [DIVERGED]"),
    ]
    if report.first_divergence:
        lines.append(f"  first divergence: {report.first_divergence}")
    if report.audited:
        lines.append(
            f"  purity audit: {report.audited} cell(s), "
            f"{report.impure} impure"
        )
        for entry in report.audits:
            if entry.pure:
                continue
            reads = ", ".join(
                f"{r['kind']}:{r['detail']}" for r in entry.reads[:5]
            )
            more = "" if len(entry.reads) <= 5 else f" (+{len(entry.reads) - 5} more)"
            problem = entry.error if entry.error else f"reads {reads}{more}"
            lines.append(f"    {entry.experiment} {entry.digest[:12]}: {problem}")
    if report.cache_checked:
        verdict = "OK" if report.cache_ok else "FAILED"
        lines.append(
            f"  cache replay: digest {report.cache_digest}, "
            f"all-hits={report.cache_all_hits} [{verdict}]"
        )
    lines.append(f"verify: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)


__all__ = [
    "VOLATILE_ROW_KEYS",
    "CellAudit",
    "VerifyReport",
    "canonical_metrics",
    "canonical_profile",
    "canonical_rows",
    "rows_digest",
    "verify_campaign",
    "render_report",
]
