"""Lint engine performance over the full repository source tree.

Times three configurations — per-file rules serially, per-file rules
with ``--jobs 4``, and the whole-program flow passes (units + rng +
par) — and writes the numbers to ``benchmarks/results/BENCH_lint.json``
in the unified :mod:`repro.obs.bench` schema so CI runs leave a
comparable perf trail.

The assertions are deliberately loose (budget ceilings, not speedup
floors): lint must stay cheap enough to run on every commit, but
container scheduling jitter must not flake the suite.
"""

import pathlib
import time

from repro.lint.config import load_config
from repro.lint.engine import iter_python_files, lint_paths
from repro.lint.flow import analyze_paths
from repro.obs.bench import bench_entry, write_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_lint.json"

# Generous wall-clock budgets (seconds) for a CI container; the
# measured numbers land in BENCH_lint.json for trend-watching.
PER_FILE_BUDGET_S = 30.0
FLOW_BUDGET_S = 60.0


def test_perf_lint_full_repo():
    config = load_config(REPO_ROOT)
    files = iter_python_files([SRC], config)
    assert len(files) >= 60, "source tree unexpectedly small"

    t0 = time.perf_counter()
    serial = lint_paths([SRC], REPO_ROOT, config, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = lint_paths([SRC], REPO_ROOT, config, jobs=4)
    parallel_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    flow_findings, flow_stats = analyze_paths(
        [SRC], REPO_ROOT, config, passes=("units", "rng", "par")
    )
    flow_s = time.perf_counter() - t0

    # --jobs must not change the result, only the wall clock.
    assert [f.sort_key() for f in serial] == [f.sort_key() for f in parallel]

    write_bench(RESULTS, "lint", [
        # Wide tolerance — the hard budgets are asserted below; the
        # regression gate only flags order-of-magnitude drift across
        # heterogeneous CI machines.
        bench_entry("per_file_serial_s", round(serial_s, 4), "s", "lower",
                    tolerance=5.0),
        bench_entry("flow_units_rng_par_s", round(flow_s, 4), "s", "lower",
                    tolerance=5.0),
        bench_entry("per_file_jobs4_s", round(parallel_s, 4), "s", "info"),
        bench_entry("files", len(files), "files", "info"),
        bench_entry("flow_modules", flow_stats.modules, "modules", "info"),
        bench_entry("flow_functions", flow_stats.functions, "functions",
                    "info"),
        bench_entry("flow_call_edges", flow_stats.call_edges, "edges", "info"),
        bench_entry("per_file_findings", len(serial), "findings", "info"),
        bench_entry("flow_findings", len(flow_findings), "findings", "info"),
    ])

    print(
        f"\nlint perf ({len(files)} files): per-file {serial_s:.2f} s "
        f"(jobs=4 {parallel_s:.2f} s), flow {flow_s:.2f} s"
    )

    assert serial_s < PER_FILE_BUDGET_S
    assert flow_s < FLOW_BUDGET_S
