"""Figure 1: the aggregation primer (throughput/medium-usage vs delay).

The paper's schematic: aggregation doubles packets-per-unit-time and
frees medium time, at the cost of per-packet delay.  The benchmark
measures the real trade-off on the simulated D5000 link by comparing
an unaggregated operating point with a fully aggregated one:

* medium time spent per delivered megabit (the spatial-reuse currency);
* per-MPDU MAC delay (queueing + service).

It also checks the paper's headline scale argument: the delay cost of
802.11ad aggregation is microseconds, not the milliseconds 802.11ac
pays for a smaller gain.
"""

import numpy as np

from repro.core.utilization import medium_usage_from_records
from repro.experiments.frame_level import run_wigig_tcp
from repro.mac.frames import FrameKind


def measure_point(window_bytes: int):
    setup = run_wigig_tcp(window_bytes=window_bytes, duration_s=0.15, warmup_s=0.05)
    start = setup.sim.now - 0.15
    usage = medium_usage_from_records(
        [r for r in setup.medium.history if r.start_s >= start],
        start,
        setup.sim.now,
        bridge_gap_s=4e-6,
    )
    tput = setup.flow.throughput_bps()
    delays = np.array(setup.link.delivery_delays_s)
    frames = [
        r for r in setup.medium.history
        if r.kind == FrameKind.DATA and r.start_s >= start
    ]
    mean_aggregation = float(np.mean([f.aggregated_mpdus for f in frames]))
    return {
        "throughput_bps": tput,
        "usage": usage,
        "medium_ms_per_mbit": usage * 0.15 * 1e3 / (tput * 0.15 / 1e6),
        "delay_median_us": float(np.median(delays)) * 1e6,
        "mean_aggregation": mean_aggregation,
    }


def run_both():
    return measure_point(14 * 1024), measure_point(256 * 1024)


def test_fig01_aggregation_primer(benchmark, report):
    low, high = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report.add("Figure 1 - aggregation primer, measured on the simulated link")
    report.add(f"{'metric':>26} {'aggr. off':>12} {'aggr. on':>12}")
    for key, fmt in (
        ("throughput_bps", "{:.0f}"),
        ("usage", "{:.2f}"),
        ("medium_ms_per_mbit", "{:.3f}"),
        ("delay_median_us", "{:.1f}"),
        ("mean_aggregation", "{:.1f}"),
    ):
        report.add(f"{key:>26} {fmt.format(low[key]):>12} {fmt.format(high[key]):>12}")
    report.add("")
    report.add(
        f"aggregation multiplies throughput {high['throughput_bps'] / low['throughput_bps']:.1f}x "
        f"and cuts medium time per mbit {low['medium_ms_per_mbit'] / high['medium_ms_per_mbit']:.1f}x, "
        f"at a delay cost of {high['delay_median_us'] - low['delay_median_us']:.0f} us"
    )

    # Aggregation on: much more throughput from ~the same airtime.
    assert high["throughput_bps"] > 4.0 * low["throughput_bps"]
    assert high["usage"] < low["usage"] + 0.15
    assert high["medium_ms_per_mbit"] < 0.35 * low["medium_ms_per_mbit"]
    # ...but per-packet delay is worse (the Figure 1 trade-off).
    assert high["delay_median_us"] > 2.0 * low["delay_median_us"]
    # The aggregation level is what moved.
    assert high["mean_aggregation"] > 3.0 * low["mean_aggregation"]
