"""Deterministic trajectory models sampled on the DES clock.

Every scenario the toolkit simulated before this module was static:
devices trained once and never moved, so the paper's central "bane" —
that a 60 GHz link lives and dies by beam alignment — only ever showed
up through *other* things moving (blockers, interferers).  A
:class:`Trajectory` gives a device itself a position as a pure function
of simulation time:

* :class:`LinearTrajectory` — constant-velocity motion (a vehicle on a
  straight road, a person crossing a room);
* :class:`WaypointWalker` — piecewise-linear pedestrian motion through
  a list of waypoints at walking speed, with optional dwell pauses; a
  seeded factory generates conference-room wander deterministically;
* :class:`VehiclePass` — a vehicle at road speed (50/70/110 km/h)
  driving down a lane past a roadside unit, the 802.11ad-V2X geometry.

Trajectories are *pure*: ``position(t)`` depends only on ``t`` and the
constructor arguments, never on call order or wall time, so campaign
cells that sample them stay byte-identical across worker counts.  All
randomness (the walker factory) comes in through an explicit seeded
generator.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.units import KMH_PER_MPS, kmh_to_mps, mps_to_kmh
from repro.geometry.vec import Vec2

#: Typical indoor walking speed, m/s (matches repro.phy.blockage).
PEDESTRIAN_SPEED_MPS = 1.2


class Trajectory:
    """A position as a pure function of time.

    Subclasses implement :meth:`position` and :meth:`velocity_mps`;
    everything else derives from those.  Times before ``t = 0`` clamp
    to the start state and times past :attr:`duration_s` clamp to the
    end state, so callers never have to range-check the DES clock.
    """

    #: Seconds of defined motion; ``inf`` for unbounded trajectories.
    duration_s: float = math.inf

    def position(self, t_s: float) -> Vec2:
        raise NotImplementedError

    def velocity_mps(self, t_s: float) -> Vec2:
        raise NotImplementedError

    def speed_mps(self, t_s: float) -> float:
        """Scalar speed at an instant."""
        return self.velocity_mps(t_s).length()

    def heading_rad(self, t_s: float) -> float:
        """Direction of travel (CCW from +x); 0 when stationary."""
        v = self.velocity_mps(t_s)
        if v.length_squared() == 0.0:
            return 0.0
        return v.angle()

    def sample_positions(self, times_s: Sequence[float]) -> np.ndarray:
        """Positions at many instants as an ``(N, 2)`` float array.

        The generic implementation loops; subclasses with closed-form
        motion (:class:`LinearTrajectory`) vectorize it.
        """
        out = np.empty((len(times_s), 2), dtype=float)
        for i, t in enumerate(times_s):
            p = self.position(float(t))
            out[i, 0] = p.x
            out[i, 1] = p.y
        return out

    def path_length_m(self) -> float:
        """Total distance travelled over the defined duration."""
        raise NotImplementedError


class LinearTrajectory(Trajectory):
    """Constant-velocity motion from a start point.

    Args:
        start: Position at ``t = 0``.
        velocity_mps: Velocity vector, meters/second.
        duration_s: Optional motion bound; the position clamps to the
            endpoint afterwards (the vehicle parks, the walker stops).
    """

    def __init__(
        self,
        start: Vec2,
        velocity_mps: Vec2,
        duration_s: float = math.inf,
    ):
        if duration_s < 0:
            raise ValueError("trajectory duration cannot be negative")
        self.start = start
        self.velocity = velocity_mps
        self.duration_s = duration_s

    def _clamp(self, t_s: float) -> float:
        return min(max(t_s, 0.0), self.duration_s)

    def position(self, t_s: float) -> Vec2:
        return self.start + self.velocity * self._clamp(t_s)

    def velocity_mps(self, t_s: float) -> Vec2:
        if t_s < 0.0 or t_s > self.duration_s:
            return Vec2(0.0, 0.0)
        return self.velocity

    def sample_positions(self, times_s: Sequence[float]) -> np.ndarray:
        t = np.clip(np.asarray(times_s, dtype=float), 0.0, self.duration_s)
        return np.stack(
            (self.start.x + self.velocity.x * t, self.start.y + self.velocity.y * t),
            axis=1,
        )

    def path_length_m(self) -> float:
        if math.isinf(self.duration_s):
            return math.inf
        return self.velocity.length() * self.duration_s

    def crossing_time_s(self, a: Vec2, b: Vec2) -> Optional[float]:
        """When this trajectory crosses the segment ``a -> b``.

        Solves the line intersection in closed form and returns the
        earliest ``t >= 0`` at which the moving point lies on the
        segment, or ``None`` if the motion never crosses it.  This is
        the crossing-time math the blockage model used to carry as its
        own ad-hoc parameterization.
        """
        ab = b - a
        denom = self.velocity.cross(ab)
        if denom == 0.0:
            return None  # parallel (or stationary): no transversal crossing
        rel = a - self.start
        t = rel.cross(ab) / denom
        u = rel.cross(self.velocity) / denom
        if t < 0.0 or t > self.duration_s or not 0.0 <= u <= 1.0:
            return None
        return t


class WaypointWalker(Trajectory):
    """Piecewise-linear pedestrian motion through waypoints.

    The walker moves at constant speed along each leg and optionally
    dwells ``pause_s`` at every intermediate waypoint — the
    stop-look-walk cadence of a person wandering a conference room.

    Args:
        waypoints: At least two positions, visited in order.
        speed_mps: Walking speed along every leg.
        pause_s: Dwell time at each waypoint between legs.
    """

    def __init__(
        self,
        waypoints: Sequence[Vec2],
        speed_mps: float = PEDESTRIAN_SPEED_MPS,
        pause_s: float = 0.0,
    ):
        if len(waypoints) < 2:
            raise ValueError("a walker needs at least two waypoints")
        if speed_mps <= 0:
            raise ValueError("walking speed must be positive")
        if pause_s < 0:
            raise ValueError("pause cannot be negative")
        self.waypoints: Tuple[Vec2, ...] = tuple(waypoints)
        self.speed = speed_mps
        self.pause_s = pause_s
        # Event times: leg starts alternate with dwell starts.  The
        # tables are built once; position() is a bisect plus a lerp.
        self._leg_start_s: List[float] = []
        self._leg_end_s: List[float] = []
        t = 0.0
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            self._leg_start_s.append(t)
            t += a.distance_to(b) / speed_mps
            self._leg_end_s.append(t)
            t += pause_s
        self.duration_s = self._leg_end_s[-1]

    def _locate(self, t_s: float) -> Tuple[int, float]:
        """(leg index, seconds into that leg, clamped to its span)."""
        t = min(max(t_s, 0.0), self.duration_s)
        i = bisect.bisect_right(self._leg_start_s, t) - 1
        i = max(i, 0)
        return i, min(t - self._leg_start_s[i], self._leg_end_s[i] - self._leg_start_s[i])

    def position(self, t_s: float) -> Vec2:
        i, into = self._locate(t_s)
        a, b = self.waypoints[i], self.waypoints[i + 1]
        leg_len = a.distance_to(b)
        if leg_len == 0.0:
            return a
        frac = min(into * self.speed / leg_len, 1.0)
        return a + (b - a) * frac

    def velocity_mps(self, t_s: float) -> Vec2:
        if t_s < 0.0 or t_s > self.duration_s:
            return Vec2(0.0, 0.0)
        i, into = self._locate(t_s)
        span = self._leg_end_s[i] - self._leg_start_s[i]
        if into >= span:  # dwelling at the waypoint
            return Vec2(0.0, 0.0)
        a, b = self.waypoints[i], self.waypoints[i + 1]
        if a.distance_to(b) == 0.0:
            return Vec2(0.0, 0.0)
        return (b - a).normalized() * self.speed

    def path_length_m(self) -> float:
        return sum(a.distance_to(b) for a, b in zip(self.waypoints, self.waypoints[1:]))

    @classmethod
    def conference_room(
        cls,
        width_m: float,
        depth_m: float,
        rng: np.random.Generator,
        num_waypoints: int = 8,
        speed_mps: float = PEDESTRIAN_SPEED_MPS,
        pause_s: float = 1.0,
        margin_m: float = 0.5,
        origin: Vec2 = Vec2(0.0, 0.0),
    ) -> "WaypointWalker":
        """A seeded random wander inside a rectangular room.

        Waypoints are drawn uniformly inside the room minus a wall
        margin.  The generator is an explicit argument (never created
        here) so the caller's seed chain fully determines the path.
        """
        if num_waypoints < 2:
            raise ValueError("need at least two waypoints")
        if width_m <= 2 * margin_m or depth_m <= 2 * margin_m:
            raise ValueError("room too small for the wall margin")
        xs = rng.uniform(margin_m, width_m - margin_m, size=num_waypoints)
        ys = rng.uniform(margin_m, depth_m - margin_m, size=num_waypoints)
        points = [origin + Vec2(float(x), float(y)) for x, y in zip(xs, ys)]
        return cls(points, speed_mps=speed_mps, pause_s=pause_s)


class VehiclePass(LinearTrajectory):
    """A vehicle driving down a straight lane past a roadside unit.

    The roadside unit sits at the origin; the lane runs parallel to
    the x-axis at ``lane_offset_m``.  The vehicle enters at
    ``x = -approach_m`` and drives in +x at road speed, so its bearing
    from the unit sweeps through the unit's whole serviceable sector —
    the 802.11ad-V2X drive-by geometry.

    Args:
        speed_kmh: Road speed (the paper-adjacent sweep uses 50/70/110).
        lane_offset_m: Perpendicular distance lane <-> roadside unit.
        approach_m: Entry distance before the point of closest approach;
            the drive ends symmetrically at ``x = +approach_m``.
    """

    def __init__(
        self,
        speed_kmh: float,
        lane_offset_m: float = 4.0,
        approach_m: float = 12.0,
    ):
        if speed_kmh <= 0:
            raise ValueError("vehicle speed must be positive")
        if approach_m <= 0:
            raise ValueError("approach distance must be positive")
        self.speed_kmh = speed_kmh
        self.lane_offset_m = lane_offset_m
        self.approach_m = approach_m
        speed = kmh_to_mps(speed_kmh)
        super().__init__(
            start=Vec2(-approach_m, lane_offset_m),
            velocity_mps=Vec2(speed, 0.0),
            duration_s=2.0 * approach_m / speed,
        )

    def closest_approach_s(self) -> float:
        """When the vehicle passes abeam of the roadside unit."""
        return self.duration_s / 2.0


__all__ = [
    "KMH_PER_MPS",
    "PEDESTRIAN_SPEED_MPS",
    "LinearTrajectory",
    "Trajectory",
    "VehiclePass",
    "WaypointWalker",
    "kmh_to_mps",
    "mps_to_kmh",
]
