"""Performance benchmarks of the core substrates.

Unlike the per-figure benchmarks (one pedantic round each), these
measure the library's hot paths with real repetition so regressions in
simulation speed show up:

* pattern synthesis (array factor + clutter on a 720-point grid);
* codebook construction (64 patterns);
* ray tracing in the conference room (LOS + 1st + 2nd order);
* the discrete-event MAC (simulated-seconds per wall-second);
* trace synthesis + frame detection round trip.

``test_perf_core_events_per_sec`` additionally writes the simulator's
events/sec on the saturated link to
``benchmarks/results/BENCH_core.json`` (unified :mod:`repro.obs.bench`
schema) — the baseline number any event-engine change is measured
against.  It deliberately avoids the pytest-benchmark fixture so CI
can run it with plain pytest.
"""

import math
import pathlib
import time

import numpy as np
import pytest

from repro.core.frames import FrameDetector
from repro.geometry.room import conference_room
from repro.geometry.vec import Vec2
from repro.obs.bench import bench_entry, write_bench
from repro.phy.antenna import PhaseShifterModel, UniformRectangularArray
from repro.phy.codebook import Codebook
from repro.phy.raytracing import RayTracer
from repro.phy.signal import Emission, synthesize_trace

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_core.json"


def run_50ms():
    """A saturated WiGig link: 50 ms of DES time, ~1 Gbit/s of TCP."""
    from repro.mac.simulator import Medium, Simulator, Station, StaticCoupling
    from repro.mac.tcp import IperfFlow, TcpParameters
    from repro.mac.wigig import WiGigLink

    sim = Simulator(seed=1)
    medium = Medium(
        sim,
        StaticCoupling({("tx", "rx"): -40.0, ("rx", "tx"): -40.0}),
        capture_history=False,
    )
    tx = Station("tx", Vec2(0, 0))
    rx = Station("rx", Vec2(2, 0))
    medium.register(tx)
    medium.register(rx)
    link = WiGigLink(sim, medium, transmitter=tx, receiver=rx,
                     snr_hint_db=35.0, send_beacons=False)
    flow = IperfFlow(sim, link, TcpParameters(window_bytes=256 * 1024))
    sim.run_until(0.05)
    return sim, flow


@pytest.fixture(scope="module")
def array():
    return UniformRectangularArray(
        2, 8, 60.48e9, phase_shifter=PhaseShifterModel(2),
        rng=np.random.default_rng(0),
    )


def test_perf_pattern_synthesis(benchmark, array):
    result = benchmark(lambda: array.steered_pattern(math.radians(17.0)))
    assert result.peak_gain_dbi() > 10.0


def test_perf_codebook_build(benchmark, array):
    result = benchmark.pedantic(
        lambda: Codebook.build(array, num_directional=32, num_quasi_omni=32),
        rounds=3,
        iterations=1,
    )
    assert len(result.directional_entries) == 32


def test_perf_ray_tracing(benchmark):
    room = conference_room()
    tracer = RayTracer(room, max_order=2)
    tx, rx = Vec2(6.5, 2.9), Vec2(0.6, 0.55)
    paths = benchmark(lambda: tracer.trace(tx, rx))
    assert len(paths) >= 3


def test_perf_mac_simulation(benchmark):
    """Simulated time per wall-clock: a saturated WiGig link."""
    _, flow = benchmark.pedantic(run_50ms, rounds=3, iterations=1)
    assert flow.throughput_bps() > 0.8e9


def test_perf_core_events_per_sec():
    """Simulator events/sec baseline, written to BENCH_core.json."""
    run_50ms()  # warm imports and allocator before timing

    best_s = math.inf
    events = 0
    for _ in range(3):
        t0 = time.perf_counter()
        sim, flow = run_50ms()
        elapsed = time.perf_counter() - t0
        if elapsed < best_s:
            best_s = elapsed
            events = sim.events_processed
    assert events > 10_000, "scenario no longer exercises the event loop"
    assert flow.throughput_bps() > 0.8e9
    events_per_s = events / best_s

    write_bench(RESULTS, "core", [
        # The headline number.  Wide tolerance — CI machines vary;
        # the gate only flags order-of-magnitude regressions.
        bench_entry("sim_events_per_s", round(events_per_s), "events/s",
                    "higher", tolerance=5.0),
        bench_entry("scenario_events", events, "events", "info"),
        bench_entry("scenario_wall_s", round(best_s, 5), "s", "info"),
        bench_entry("sim_seconds_per_wall_s", round(0.05 / best_s, 4), "s/s",
                    "info"),
    ])

    print(
        f"\ncore perf: {events} events in {best_s * 1e3:.1f} ms "
        f"-> {events_per_s / 1e6:.2f}M events/s"
    )


def test_perf_trace_pipeline(benchmark):
    emissions = [
        Emission(i * 30e-6, 20e-6, 0.5) for i in range(300)
    ]

    def round_trip():
        trace = synthesize_trace(
            emissions, duration_s=10e-3, noise_floor_v=0.01,
            rng=np.random.default_rng(0),
        )
        return FrameDetector(threshold_v=0.1).detect(trace)

    frames = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    assert len(frames) == 300
