"""Ablation: moving the interferer to the other 60 GHz channel.

The devices under test support two channel centers (60.48 and
62.64 GHz, Section 3.1) and the paper *forces* both systems onto the
same channel to study interference.  This ablation undoes that: with
the WiHD pair on channel 3 the inter-system interference of Figure 22
must vanish entirely — validating both the channel model and the
obvious mitigation.
"""


from repro.experiments.interference import (
    build_interference_scenario,
    channel_utilization,
)


def run_all():
    results = {}
    for label, wihd_channel, with_wihd in (
        ("co-channel", 2, True),
        ("other channel", 3, True),
        ("no WiHD", 2, False),
    ):
        scen = build_interference_scenario(
            wihd_offset_m=0.3, seed=31, with_wihd=with_wihd
        )
        if with_wihd and wihd_channel != 2:
            for name in ("wihd-tx", "wihd-rx"):
                scen.medium.station(name).channel = wihd_channel
        scen.run(0.3)
        util = channel_utilization(scen, 0.1, scen.sim.now)
        results[label] = (scen.link_a.stats.retransmissions, util, scen.flow_a.throughput_bps())
    return results


def test_channel_separation_removes_interference(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report.add("Ablation: WiHD on the same vs the other 60 GHz channel (0.3 m)")
    report.add(f"{'setup':>14} {'wigig retx':>11} {'utilization %':>14} {'tput mbps':>10}")
    for label, (retx, util, tput) in results.items():
        report.add(f"{label:>14} {retx:>11} {util * 100:>14.1f} {tput / 1e6:>10.1f}")

    co_retx, co_util, _ = results["co-channel"]
    other_retx, other_util, _ = results["other channel"]
    base_retx, base_util, _ = results["no WiHD"]
    # Co-channel: the Figure 21/22 pathology, far beyond the residual
    # WiGig-vs-WiGig hidden-terminal losses.
    assert co_retx > 3 * base_retx
    # Other channel: the WiHD contribution vanishes - what remains is
    # the same residue the WiHD-free baseline shows.
    assert other_retx < 1.5 * base_retx + 50
    # Note: channel_utilization measures what a wideband probe hears,
    # which still includes the WiHD frames RF energy; the *collisions*
    # are what the channel split removes.
    assert other_util <= co_util + 0.05
