"""Deterministic fallback RNG streams for default-constructed components.

Stochastic components (:class:`repro.phy.channel.ShadowingProcess`,
:func:`repro.phy.signal.synthesize_trace`, ...) take an explicit
``numpy.random.Generator`` so an experiment's ``--seed`` threads all
the way down and the campaign engine's content-addressed cache stays
valid.  When a caller does not supply one, falling back to OS entropy
would make nominally seeded runs irreproducible — but a single shared
``default_rng(0)`` is wrong in the other direction: every
default-constructed instance would replay one identical stream, so
processes that should be statistically independent (two shadowing
links, two synthesized traces) become perfectly correlated.

:func:`fallback_rng` threads the needle: each call spawns a fresh
child of a fixed :class:`numpy.random.SeedSequence`, so fallback
streams are mutually independent yet reproducible for a fixed
construction order within a process.  Because construction order *is*
part of the contract, a forgotten ``rng=`` hand-off is still a bug in
campaign code — each call therefore emits a
:class:`FallbackSeedWarning` so the omission is surfaced rather than
silently masked.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np


class FallbackSeedWarning(UserWarning):
    """A component drew its RNG from the deterministic fallback root.

    Harmless in throwaway scripts and tests; in campaign or experiment
    code it means a ``--seed`` is not reaching this component, so fix
    the call site to pass ``rng=`` explicitly.
    """


#: Root of all fallback streams.  Fixed entropy keeps fallback runs
#: reproducible; spawning children keeps separate instances
#: independent.
_FALLBACK_ROOT = np.random.SeedSequence(0)
_SPAWN_LOCK = threading.Lock()


def fallback_rng(owner: str) -> np.random.Generator:
    """Return a deterministic fallback :class:`numpy.random.Generator`.

    Each call yields an independent stream (a fresh child of the
    module's fixed :class:`~numpy.random.SeedSequence`), reproducible
    only for a fixed construction order within one process.  Emits
    :class:`FallbackSeedWarning` naming ``owner`` so callers that
    should be threading a campaign seed are surfaced.
    """
    warnings.warn(
        f"{owner}: no rng supplied; using a deterministic fallback stream "
        "(reproducible only for a fixed in-process construction order). "
        "Pass rng=numpy.random.default_rng(seed) to tie it to a campaign "
        "seed.",
        FallbackSeedWarning,
        stacklevel=3,
    )
    with _SPAWN_LOCK:
        child = _FALLBACK_ROOT.spawn(1)[0]
    return np.random.default_rng(child)
