"""End-to-end integration tests across the whole stack.

These exercise chains the unit tests cover only piecewise:
devices -> SLS training -> MAC simulation -> Vubiq capture -> trace
analysis -> persistence, verifying that the numbers agree at every
hand-off.
"""

import math

import numpy as np
import pytest

from repro.core.aggregation import frame_length_cdf, long_frame_fraction
from repro.core.frames import FrameDetector
from repro.core.utilization import medium_usage_from_records
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.devices.vubiq import VubiqReceiver
from repro.geometry.vec import Vec2
from repro.mac.beam_training import SectorSweepTrainer
from repro.mac.coupling import DeviceCoupling
from repro.mac.frames import FrameKind
from repro.mac.simulator import Medium, Simulator
from repro.mac.tcp import IperfFlow, TcpParameters
from repro.mac.wigig import WiGigLink
from repro.phy.antenna import open_waveguide
from repro.phy.channel import LinkBudget


@pytest.fixture(scope="module")
def full_pipeline(tmp_path_factory):
    """SLS-trained link, TCP run, Vubiq capture, trace analysis."""
    dock = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
    laptop = make_e7440_laptop(position=Vec2(2, 0), orientation_rad=math.pi)

    # 1. Beam training via the actual protocol, not an oracle.
    trainer = SectorSweepTrainer(rng=np.random.default_rng(5))
    training = trainer.train(laptop, dock)
    assert training.success

    # 2. MAC + TCP on the trained beams.
    budget = LinkBudget()
    sim = Simulator(seed=6)
    devices = {d.name: d for d in (dock, laptop)}
    coupling = DeviceCoupling(devices, budget=budget)
    medium = Medium(sim, coupling, budget=budget)
    st = {name: dev.make_station() for name, dev in devices.items()}
    for s in st.values():
        medium.register(s)
    link = WiGigLink(
        sim, medium, transmitter=st["laptop"], receiver=st["dock"],
        snr_hint_db=coupling.snr_db("laptop", "dock"),
    )
    flow = IperfFlow(sim, link, TcpParameters(window_bytes=64 * 1024))
    sim.run_until(0.1)

    # 3. Vubiq capture of a window.
    vubiq = VubiqReceiver(
        position=Vec2(2.5, 0.1),
        antenna=open_waveguide(),
        budget=budget,
        extra_gain_db=30.0,
    ).pointed_at(dock.position)
    window = (0.05, 0.052)
    records = [
        r for r in medium.history
        if r.start_s < window[1] and r.end_s > window[0]
    ]
    trace = vubiq.capture(
        records, devices, duration_s=window[1] - window[0],
        start_s=window[0], rng=np.random.default_rng(7),
    )
    detected = FrameDetector(threshold_v=0.05).detect(trace)
    return {
        "training": training,
        "sim": sim,
        "medium": medium,
        "link": link,
        "flow": flow,
        "trace": trace,
        "detected": detected,
        "window": window,
        "devices": devices,
    }


class TestTrainedLinkPerformance:
    def test_sls_link_carries_expected_throughput(self, full_pipeline):
        tput = full_pipeline["flow"].throughput_bps()
        assert tput > 750e6  # trained 2 m link should hit high rate

    def test_no_retransmissions_on_clean_link(self, full_pipeline):
        stats = full_pipeline["link"].stats
        assert stats.retransmissions <= 0.01 * stats.data_frames_sent


class TestTraceAgreement:
    def test_frame_counts_roughly_agree(self, full_pipeline):
        window = full_pipeline["window"]
        truth = [
            r for r in full_pipeline["medium"].history
            if window[0] <= r.start_s and r.end_s <= window[1]
        ]
        detected = full_pipeline["detected"]
        # ACKs can merge with their data frames; allow slack.
        assert len(detected) >= 0.4 * len(truth)
        assert len(detected) <= 1.2 * len(truth)

    def test_busy_fraction_agrees(self, full_pipeline):
        from repro.core.utilization import medium_usage_from_trace

        window = full_pipeline["window"]
        truth = medium_usage_from_records(
            full_pipeline["medium"].history, window[0], window[1]
        )
        estimated = medium_usage_from_trace(
            full_pipeline["trace"], threshold_v=0.05
        )
        assert estimated == pytest.approx(truth, abs=0.12)

    def test_detected_lengths_match_ground_truth_distribution(self, full_pipeline):
        window = full_pipeline["window"]
        truth = [
            r for r in full_pipeline["medium"].history
            if window[0] <= r.start_s and r.end_s <= window[1]
            and r.kind == FrameKind.DATA
        ]
        if len(truth) < 5:
            pytest.skip("window too quiet")
        truth_cdf = frame_length_cdf(truth)
        # Data frames dominate the capture; medians should agree.
        det_long = [f for f in full_pipeline["detected"] if f.duration_s > 4e-6]
        det_cdf = frame_length_cdf(det_long)
        assert det_cdf.median() == pytest.approx(truth_cdf.median(), rel=0.4)


class TestPersistenceIntegration:
    def test_save_analyze_reload_cycle(self, full_pipeline, tmp_path):
        from repro.io import (
            load_frame_records,
            load_trace,
            save_frame_records,
            save_trace,
        )

        trace_path = tmp_path / "capture.npz"
        frames_path = tmp_path / "history.jsonl"
        save_trace(full_pipeline["trace"], trace_path)
        save_frame_records(full_pipeline["medium"].history, frames_path)

        trace = load_trace(trace_path)
        records = load_frame_records(frames_path)

        redetected = FrameDetector(threshold_v=0.05).detect(trace)
        assert len(redetected) == len(full_pipeline["detected"])
        data = [r for r in records if r.kind == FrameKind.DATA]
        assert long_frame_fraction(data) == pytest.approx(
            long_frame_fraction(
                [r for r in full_pipeline["medium"].history if r.kind == FrameKind.DATA]
            )
        )


class TestSpatialIntegration:
    def test_conflict_tools_on_running_scenario(self):
        """Spatial planning verdicts agree with simulated outcomes."""
        from repro.core.spatial import Link, link_margins
        from repro.experiments.interference import build_interference_scenario

        scen = build_interference_scenario(wihd_offset_m=0.5, seed=41)
        links = [
            Link(tx=scen.devices["laptop-a"], rx=scen.devices["dock-a"]),
            Link(tx=scen.devices["laptop-b"], rx=scen.devices["dock-b"]),
        ]
        rows = link_margins(links, scen.coupling)
        scen.run(0.2)
        # The margins are finite and the simulation shows matching
        # levels of trouble: low margin <-> measurable retransmissions.
        min_margin = min(r.margin_db for r in rows)
        retx = scen.link_a.stats.retransmissions + scen.link_b.stats.retransmissions
        if min_margin > 25.0:
            assert retx < 2000
        else:
            assert retx > 0
