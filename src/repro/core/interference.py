"""Interference impact metrics (Section 4.4, Figures 21-23).

The paper quantifies inter-system interference through three effects:

* **link utilization increase** — the WiGig channel is busy longer
  because of WiHD frames, collisions, and retransmissions;
* **reported link rate decrease** — the D5000's rate adaptation reacts
  to SINR/loss, so the rate inversely correlates with utilization in
  the high-interference regime;
* **file transfer time / TCP throughput loss** — visible only once the
  link saturates (the reflection-interference setup of Figure 23).

This module holds the small result types and metric helpers shared by
the interference experiments and their benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class InterferencePoint:
    """One operating point of the side-lobe interference sweep.

    Attributes:
        distance_m: Horizontal separation between the WiGig link and
            the WiHD system (the x-axis of Figure 22).
        utilization: Measured WiGig-channel medium usage in [0, 1].
        link_rate_bps: PHY rate the D5000 driver reports.
        rotated: Whether the dock was misaligned by 70 degrees.
        retransmissions: Retransmission count during the window.
        transfer_time_s: Time to push the 1 GB file, if measured.
    """

    distance_m: float
    utilization: float
    link_rate_bps: float
    rotated: bool = False
    retransmissions: int = 0
    transfer_time_s: Optional[float] = None


def utilization_increase(
    with_interference: float,
    interference_free: float,
) -> float:
    """Absolute utilization increase caused by an interferer.

    The paper reports interference-free utilizations of 38% (aligned)
    and 42% (rotated) versus up to ~100% under interference — increases
    of 62 and 58 percentage points.
    """
    if not 0.0 <= interference_free <= 1.0 or not 0.0 <= with_interference <= 1.0:
        raise ValueError("utilizations must be fractions in [0, 1]")
    return with_interference - interference_free


def file_transfer_time_s(file_bytes: float, goodput_bps: float) -> float:
    """Time to transfer a file at a sustained goodput.

    Used for the 1 GB transfer-time metric of the interference setup.
    """
    if file_bytes <= 0:
        raise ValueError("file size must be positive")
    if goodput_bps <= 0:
        raise ValueError("goodput must be positive")
    return file_bytes * 8.0 / goodput_bps


def high_interference_regime_m(
    points: Sequence[InterferencePoint],
    interference_free_utilization: float,
    margin: float = 0.10,
) -> float:
    """Largest distance still showing clearly elevated utilization.

    The paper identifies "a high interference regime for distances of
    up to two meters" and recovery "only ... beyond 5 meters"; this
    helper extracts the regime boundary from a sweep: the largest
    distance whose utilization exceeds the interference-free level by
    more than ``margin``.
    """
    elevated = [
        p.distance_m
        for p in points
        if p.utilization > interference_free_utilization + margin
    ]
    return max(elevated) if elevated else 0.0


def rate_utilization_correlation(points: Sequence[InterferencePoint]) -> float:
    """Pearson correlation between link rate and utilization.

    Section 4.4 observes "an inverse correlation between link rate and
    link utilization" in the high-interference regime, i.e. this
    statistic should come out negative there.
    """
    if len(points) < 3:
        raise ValueError("need at least three points for a correlation")
    rates = np.array([p.link_rate_bps for p in points], dtype=float)
    utils = np.array([p.utilization for p in points], dtype=float)
    if np.std(rates) == 0 or np.std(utils) == 0:
        return 0.0
    return float(np.corrcoef(rates, utils)[0, 1])


def throughput_drop(
    baseline_bps: float,
    degraded_bps: float,
) -> float:
    """Relative throughput loss caused by interference, in [0, 1].

    Figure 23's headline: the WiHD reflection costs the WiGig TCP flow
    about 20% on average (up to 33%).
    """
    if baseline_bps <= 0:
        raise ValueError("baseline throughput must be positive")
    return max(0.0, (baseline_bps - degraded_bps) / baseline_bps)
