"""Rooms: closed wall polygons plus free-standing obstacles.

:class:`Room` models the floor plans of the paper's experiments.  The
conference room of Figure 4 is a 9 m x 3.25 m rectangle whose walls mix
brick, glass, and wood; the reflection setups add free-standing metal
reflectors, blockage elements, and shielding absorbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.geometry.materials import Material, get_material
from repro.geometry.segments import EPSILON, Segment, ray_segment_intersection
from repro.geometry.vec import Vec2


@dataclass(frozen=True)
class Obstacle:
    """A free-standing blocking/reflecting element inside a room.

    Modeled as a thin plate (single segment).  A metal reflector, a
    cardboard blockage element, or an RF absorber are all obstacles
    with different materials.
    """

    segment: Segment

    @property
    def material(self) -> Material:
        return self.segment.material

    @staticmethod
    def plate(a: Vec2, b: Vec2, material: str = "metal", name: str = "") -> "Obstacle":
        """Build a thin plate obstacle between two points."""
        return Obstacle(Segment(a, b, get_material(material), name=name))


class Room:
    """A 2D environment of wall segments and obstacles.

    Walls and obstacle plates are both treated as potential reflectors
    and potential blockers; the distinction only matters for
    construction convenience.
    """

    def __init__(self, walls: Iterable[Segment], obstacles: Iterable[Obstacle] = ()):
        self._walls: List[Segment] = list(walls)
        self._obstacles: List[Obstacle] = list(obstacles)
        if not self._walls and not self._obstacles:
            raise ValueError("a room needs at least one wall or obstacle")

    @property
    def walls(self) -> Sequence[Segment]:
        return tuple(self._walls)

    @property
    def obstacles(self) -> Sequence[Obstacle]:
        return tuple(self._obstacles)

    @property
    def surfaces(self) -> Tuple[Segment, ...]:
        """All reflective/blocking segments (walls + obstacle plates)."""
        return tuple(self._walls) + tuple(o.segment for o in self._obstacles)

    def add_obstacle(self, obstacle: Obstacle) -> None:
        """Place an additional obstacle into the room."""
        self._obstacles.append(obstacle)

    def first_hit(
        self,
        origin: Vec2,
        direction: Vec2,
        ignore: Optional[Segment] = None,
    ) -> Optional[Tuple[float, Segment]]:
        """First surface hit by a ray, as ``(distance, segment)``.

        ``ignore`` excludes one segment (the surface a reflected ray
        just bounced off).  Returns None if the ray escapes the room
        through a gap (possible with open geometries such as the
        outdoor semicircle setup).
        """
        unit = direction.normalized()
        best: Optional[Tuple[float, Segment]] = None
        for seg in self.surfaces:
            if ignore is not None and seg is ignore:
                continue
            t = ray_segment_intersection(origin, unit, seg)
            if t is not None and (best is None or t < best[0]):
                best = (t, seg)
        return best

    def path_is_clear(
        self,
        a: Vec2,
        b: Vec2,
        ignore: Sequence[Segment] = (),
        tol: float = 1e-6,
    ) -> bool:
        """Whether the straight path from ``a`` to ``b`` is unobstructed.

        Segments listed in ``ignore`` do not block (used for the walls a
        reflected path legitimately touches).  Endpoints touching a
        surface (within ``tol`` meters) do not count as blockage.
        """
        delta = b - a
        total = delta.length()
        if total < EPSILON:
            return True
        unit = delta / total
        ignored = set(map(id, ignore))
        for seg in self.surfaces:
            if id(seg) in ignored:
                continue
            t = ray_segment_intersection(a, unit, seg)
            if t is not None and tol < t < total - tol:
                return False
        return True

    def blockage_loss_db(self, a: Vec2, b: Vec2, ignore: Sequence[Segment] = ()) -> float:
        """Total penetration loss of all surfaces crossing path a->b, dB.

        60 GHz signals are nearly opaque to most materials; this returns
        the summed penetration losses so that a single brick wall
        effectively kills a link while a thin wooden panel merely
        attenuates it.
        """
        delta = b - a
        total = delta.length()
        if total < EPSILON:
            return 0.0
        unit = delta / total
        ignored = set(map(id, ignore))
        loss = 0.0
        tol = 1e-6
        for seg in self.surfaces:
            if id(seg) in ignored:
                continue
            t = ray_segment_intersection(a, unit, seg)
            if t is not None and tol < t < total - tol:
                loss += seg.material.penetration_loss_db
        return loss

    @staticmethod
    def rectangular(
        width: float,
        height: float,
        materials: Optional[Sequence[str]] = None,
        origin: Vec2 = Vec2(0.0, 0.0),
    ) -> "Room":
        """Build an axis-aligned rectangular room.

        ``materials`` names the materials of the (bottom, right, top,
        left) walls in that order; defaults to drywall everywhere.
        """
        if width <= 0 or height <= 0:
            raise ValueError("room dimensions must be positive")
        names = list(materials) if materials is not None else ["drywall"] * 4
        if len(names) != 4:
            raise ValueError("materials must name exactly 4 walls (bottom, right, top, left)")
        x0, y0 = origin.x, origin.y
        corners = [
            Vec2(x0, y0),
            Vec2(x0 + width, y0),
            Vec2(x0 + width, y0 + height),
            Vec2(x0, y0 + height),
        ]
        labels = ["bottom", "right", "top", "left"]
        walls = [
            Segment(corners[i], corners[(i + 1) % 4], get_material(names[i]), name=labels[i])
            for i in range(4)
        ]
        return Room(walls)


def conference_room() -> Room:
    """The 9 m x 3.25 m conference room of Figure 4.

    Wall materials follow the figure: the long bottom wall (with the
    receiver) is brick, the right section and top-right are glass (the
    window front), the top-left is wood, and the left short wall is
    brick.  The coordinate origin is the bottom-left corner; the paper's
    TX sits near the top wall and the RX near the bottom-left.
    """
    brick = get_material("brick")
    glass = get_material("glass")
    wood = get_material("wood")
    w, h = 9.0, 3.25
    walls = [
        Segment(Vec2(0, 0), Vec2(w, 0), brick, name="bottom-brick"),
        Segment(Vec2(w, 0), Vec2(w, h), glass, name="right-glass"),
        # Top wall: wooden section on the left, glass window on the right.
        Segment(Vec2(w, h), Vec2(4.0, h), glass, name="top-glass"),
        Segment(Vec2(4.0, h), Vec2(0, h), wood, name="top-wood"),
        Segment(Vec2(0, h), Vec2(0, 0), brick, name="left-brick"),
    ]
    return Room(walls)


def measurement_locations() -> List[Vec2]:
    """The six receiver locations A..F of Figure 4 (order A, B, ..., F).

    Distances follow the annotations in the figure: the locations form
    two rows spaced along the room length, 1.3 m and 1.6 m from the
    bottom wall, at 1.85 m horizontal spacing.
    """
    xs = [1.85 * (i + 1) for i in range(3)]
    row_low = 1.3    # locations A, B, C (paper draws C..A right-to-left)
    row_high = 1.3 + 1.6  # locations D, E, F
    a = Vec2(xs[2], row_low)
    b = Vec2(xs[1], row_low)
    c = Vec2(xs[0], row_low)
    d = Vec2(xs[0], row_high)
    e = Vec2(xs[1], row_high)
    f = Vec2(xs[2], row_high)
    return [a, b, c, d, e, f]
