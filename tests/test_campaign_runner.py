"""Tests for the campaign engine: sharding, caching, timeouts, retries.

The cells live in :mod:`tests.campaign_cells` so worker processes can
resolve them by dotted path like production cells.
"""

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.runner import CampaignRunner, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.telemetry import read_manifest

DOUBLE = "tests.campaign_cells:double_cell"
FLAKY = "tests.campaign_cells:flaky_cell"
BROKEN = "tests.campaign_cells:always_fails"
SLOW = "tests.campaign_cells:slow_cell"
DES = "tests.campaign_cells:des_cell"


def double_campaign(values=(1, 2, 3, 4), seeds=(0, 1)):
    return CampaignSpec(
        name="doubles",
        experiment=DOUBLE,
        base_params={"scale": 3},
        grid={"value": tuple(values)},
        seeds=seeds,
    )


class TestSerialEngine:
    def test_runs_every_cell(self):
        result = run_campaign(double_campaign())
        assert len(result.outcomes) == 8
        assert all(o.status == "completed" for o in result.outcomes)
        for outcome in result.outcomes:
            assert outcome.result["value"] == outcome.spec.param_dict()["value"] * 3

    def test_outcomes_follow_expansion_order(self):
        spec = double_campaign()
        result = run_campaign(spec)
        assert [o.spec for o in result.outcomes] == spec.expand()

    def test_telemetry_counts(self):
        result = run_campaign(double_campaign())
        t = result.telemetry
        assert t.scenarios_total == 8
        assert t.completed == 8
        assert t.cached == 0
        assert t.failed == 0
        assert t.wall_clock_s > 0
        assert t.worker_time_s > 0


class TestParallelEngine:
    def test_matches_serial_bit_for_bit(self):
        """The acceptance-critical property: worker count is invisible."""
        spec = double_campaign(values=tuple(range(10)))
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert serial.results() == parallel.results()
        assert [o.digest for o in serial.outcomes] == [
            o.digest for o in parallel.outcomes
        ]

    def test_shard_sizes_cover_all_scenarios(self):
        result = run_campaign(double_campaign(), workers=2)
        assert sum(result.telemetry.shard_sizes) == 8
        assert len(result.telemetry.shard_sizes) == 2
        shards = {o.shard for o in result.outcomes}
        assert shards <= {0, 1}


class TestCaching:
    def test_second_run_fully_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = double_campaign()
        first = run_campaign(spec, cache=cache, workers=2)
        assert first.telemetry.completed == 8
        second = run_campaign(spec, cache=cache, workers=2)
        assert second.telemetry.cached == 8
        assert second.telemetry.completed == 0
        assert second.results() == first.results()

    def test_only_changed_cells_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(double_campaign(values=(1, 2, 3)), cache=cache)
        grown = run_campaign(double_campaign(values=(1, 2, 3, 4)), cache=cache)
        assert grown.telemetry.cached == 6  # 3 values x 2 seeds
        assert grown.telemetry.completed == 2  # the new value x 2 seeds

    def test_failed_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = CampaignSpec(name="broken", experiment=BROKEN, seeds=(0,))
        run_campaign(spec, cache=cache, retries=0)
        assert cache.entry_count() == 0


class TestFailureHandling:
    def test_failures_recorded_not_fatal(self):
        spec = CampaignSpec(name="broken", experiment=BROKEN, seeds=(0, 1))
        result = run_campaign(spec, retries=0)
        assert len(result.failures()) == 2
        t = result.telemetry
        assert t.failed == 2
        assert len(t.failures) == 2
        assert "always fails" in t.failures[0]["error"]

    def test_mixed_campaign_completes_good_cells(self, tmp_path):
        good = run_campaign(double_campaign(values=(1,), seeds=(0,)))
        assert good.telemetry.completed == 1

    def test_transient_failure_retried(self, tmp_path):
        spec = CampaignSpec(
            name="flaky",
            experiment=FLAKY,
            base_params={"marker_dir": str(tmp_path)},
            seeds=(0, 1),
        )
        result = run_campaign(spec, retries=2, backoff_s=0.01)
        assert all(o.status == "completed" for o in result.outcomes)
        assert result.telemetry.retries == 2
        assert all(o.attempts == 2 for o in result.outcomes)

    def test_transient_failure_retried_in_workers(self, tmp_path):
        spec = CampaignSpec(
            name="flaky",
            experiment=FLAKY,
            base_params={"marker_dir": str(tmp_path)},
            seeds=(0, 1, 2),
        )
        result = run_campaign(spec, workers=2, retries=2, backoff_s=0.01)
        assert all(o.status == "completed" for o in result.outcomes)
        assert result.telemetry.retries == 3

    def test_retries_bounded(self, tmp_path):
        spec = CampaignSpec(name="broken", experiment=BROKEN, seeds=(0,))
        result = run_campaign(spec, retries=2, backoff_s=0.01)
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 3  # 1 try + 2 retries


class TestTimeouts:
    def test_slow_cell_times_out_serially(self):
        spec = CampaignSpec(
            name="slow",
            experiment=SLOW,
            base_params={"sleep_s": 5.0},
            seeds=(0,),
        )
        result = run_campaign(spec, timeout_s=0.3)
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert "ScenarioTimeout" in outcome.error
        t = result.telemetry
        assert t.timeouts == 1
        assert t.wall_clock_s < 4.0  # enforced well before the sleep ends

    def test_slow_cell_times_out_in_workers(self):
        spec = CampaignSpec(
            name="slow",
            experiment=SLOW,
            base_params={"sleep_s": 5.0},
            seeds=(0, 1),
        )
        result = run_campaign(spec, workers=2, timeout_s=0.3)
        assert result.telemetry.timeouts == 2
        assert result.telemetry.wall_clock_s < 4.0

    def test_timeouts_are_not_retried(self):
        spec = CampaignSpec(
            name="slow", experiment=SLOW, base_params={"sleep_s": 5.0}, seeds=(0,)
        )
        result = run_campaign(spec, timeout_s=0.3, retries=3)
        assert result.outcomes[0].attempts == 1
        assert result.telemetry.retries == 0


class TestTelemetry:
    def test_des_events_aggregate(self):
        spec = CampaignSpec(
            name="des",
            experiment=DES,
            base_params={"ticks": 40},
            seeds=(0, 1),
        )
        result = run_campaign(spec)
        t = result.telemetry
        assert t.events_simulated == 80
        assert t.events_per_second() > 0

    def test_manifest_roundtrip(self, tmp_path):
        result = run_campaign(double_campaign())
        path = result.telemetry.write_manifest(tmp_path / "manifest.json")
        manifest = read_manifest(path)
        assert manifest["scenarios"]["total"] == 8
        assert manifest["scenarios"]["completed"] == 8
        assert manifest["campaign"] == "doubles"
        assert manifest["campaign_digest"] == result.campaign.digest()
        assert manifest["timing"]["wall_clock_s"] > 0

    def test_manifest_rejects_unknown_schema(self, tmp_path):
        import json

        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError):
            read_manifest(path)


class TestRunnerValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(double_campaign(), retries=-1)

    def test_unknown_cell_fails_gracefully(self):
        spec = CampaignSpec(name="nope", experiment="no_such_cell", seeds=(0,))
        result = run_campaign(spec, retries=0)
        assert result.outcomes[0].status == "failed"
        assert "no_such_cell" in result.outcomes[0].error
