"""Ablation: antenna array order vs beam width and gain.

"Current devices use electronic beam steering with relatively low
order antenna arrays" (Section 1).  This ablation shows what a
higher-order array would buy: narrower beams and more gain — i.e. the
interference problems the paper measures are a direct consequence of
the 2x8 design point.
"""

import numpy as np
import pytest

from repro.phy.antenna import PhaseShifterModel, UniformRectangularArray

FREQ = 60.48e9


def sweep_orders():
    rows = []
    for rows_, cols in ((1, 4), (2, 8), (4, 8), (8, 8)):
        arr = UniformRectangularArray(
            rows_, cols, FREQ,
            phase_shifter=PhaseShifterModel(2),
            scatter_level_db=-300.0,
            amplitude_error_std_db=0.0,
            phase_error_std_rad=0.0,
            rng=np.random.default_rng(1),
        )
        p = arr.steered_pattern(0.0)
        rows.append((
            f"{rows_}x{cols}",
            arr.num_elements,
            p.half_power_beam_width_deg(),
            p.peak_gain_dbi(),
        ))
    return rows


def test_array_order_vs_directivity(benchmark, report):
    rows = benchmark.pedantic(sweep_orders, rounds=1, iterations=1)
    report.add("Ablation: array order (ideal elements, 2-bit shifters)")
    report.add(f"{'array':>6} {'elements':>9} {'HPBW deg':>9} {'peak dBi':>9}")
    for label, n, hpbw, peak in rows:
        report.add(f"{label:>6} {n:>9} {hpbw:9.1f} {peak:9.1f}")

    # More columns -> narrower azimuth beam.
    assert rows[0][2] > rows[1][2]          # 1x4 wider than 2x8
    assert rows[3][2] <= rows[1][2]         # 8x8 at most as wide (same cols)
    # More elements -> more gain, ~3 dB per doubling.
    gains = [peak for *_, peak in rows]
    assert gains == sorted(gains)
    assert gains[3] - gains[1] == pytest.approx(6.0, abs=1.5)  # 16 -> 64 elements
