"""Ablation: carrier sensing on the interfering system.

The root cause of the paper's inter-system interference is that the
WiHD system performs no carrier sensing and "blindly transmits data
causing collisions and retransmissions at the D5000 systems".  This
ablation gives the interferer an idealized listen-before-talk gate and
measures how many WiGig retransmissions disappear.
"""


from repro.experiments.interference import build_interference_scenario


def run_both():
    # Baseline: the real (blind) WiHD behavior.
    blind = build_interference_scenario(wihd_offset_m=0.3, seed=21)
    blind.run(0.25)

    # Ablated: a genie-aided listen-before-talk gate - the WiHD
    # transmitter defers whenever ANY frame is on the air.  (A
    # realistic energy-detection gate at the WiHD position barely
    # helps: the interferer sits behind the WiGig transmitter and only
    # hears its back lobes - a textbook hidden-terminal geometry - so
    # the genie isolates the upper bound of what carrier sensing could
    # ever buy.)
    polite = build_interference_scenario(wihd_offset_m=0.3, seed=21)
    original_send = polite.wihd._send_data

    def gated_send():
        if polite.medium.active_count() == 0:
            original_send()

    polite.wihd._send_data = gated_send
    polite.run(0.25)
    return blind, polite


def test_carrier_sense_ablation(benchmark, report):
    blind, polite = benchmark.pedantic(run_both, rounds=1, iterations=1)
    b = blind.link_a.stats
    p = polite.link_a.stats
    report.add("Ablation: carrier sensing at the interferer (0.3 m separation)")
    report.add(f"{'variant':>12} {'wigig retx':>11} {'wigig delivered':>16}")
    report.add(f"{'blind WiHD':>12} {b.retransmissions:11d} {b.mpdus_delivered:16d}")
    report.add(f"{'LBT WiHD':>12} {p.retransmissions:11d} {p.mpdus_delivered:16d}")

    # Blind transmission causes heavy retransmissions; the genie LBT
    # removes a large share of them - quantifying the paper's
    # diagnosis that the missing carrier sense is the root cause.
    assert b.retransmissions > 50
    assert p.retransmissions < 0.7 * b.retransmissions
