"""Domain rules RL001-RL008.

Each rule targets a bug class that has actually corrupted 60 GHz
measurement reproductions: unseeded randomness breaking the campaign
cache's determinism contract, wall-clock reads leaking into simulated
time, hand-rolled dB math drifting from the shared helpers, log/linear
unit mixing, float equality in link-budget code, frozen-spec mutation,
nondeterministic iteration feeding content-addressed hashes, and
swallowed simulator errors.

These per-file rules compose with the whole-program passes in
:mod:`repro.lint.flow`: unit inference (RL010-RL012), RNG taint
(RL013-RL015), parallelism safety (RL020-RL025), and the numpy
shape/dtype vectorization-readiness pass (RL030-RL036, ``--vec``).
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.lint.config import module_in
from repro.lint.engine import FileContext, ImportMap, Rule, register

# ---------------------------------------------------------------------------
# RL001 — unseeded / global RNG
# ---------------------------------------------------------------------------

#: numpy.random attributes that are fine to reference: explicitly
#: seeded construction paths, not the legacy global state.
_NP_RANDOM_OK = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: ``random`` module attributes that construct an explicitly seedable
#: instance rather than touching the global RNG.
_PY_RANDOM_OK = {"Random"}


def _default_rng_is_unseeded(node: ast.Call) -> bool:
    """True when a ``default_rng`` call pulls OS entropy.

    Both the bare ``default_rng()`` and an explicit ``None`` seed
    (``default_rng(None)`` / ``default_rng(seed=None)``) fall back to
    operating-system entropy and are equally nondeterministic.
    """
    if not node.args and not node.keywords:
        return True
    if node.args and isinstance(node.args[0], ast.Constant) and node.args[0].value is None:
        return True
    return any(
        kw.arg == "seed" and isinstance(kw.value, ast.Constant) and kw.value.value is None
        for kw in node.keywords
    )


@register
class UnseededRngRule(Rule):
    code = "RL001"
    name = "unseeded-rng"
    summary = "module-global or unseeded RNG breaks run reproducibility"
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not module_in(ctx.module, ctx.config.rng_entry_points)

    def begin_file(self, ctx: FileContext) -> None:
        self._imports = ImportMap.scan(ctx.tree)

    def _flag(self, node: ast.AST, ctx: FileContext, what: str) -> None:
        ctx.report(
            node,
            self.code,
            f"{what} — thread an explicit numpy.random.default_rng(seed) "
            "through instead so runs are reproducible",
        )

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            origin = self._imports.module_of(func.value.id)
            if origin == "random" and func.attr not in _PY_RANDOM_OK:
                self._flag(node, ctx, f"call to global RNG random.{func.attr}()")
            elif origin == "numpy.random":
                self._visit_np_random(node, func.attr, ctx)
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.attr == "random"
                and (self._imports.module_of(inner.value.id) or "").startswith("numpy")
            ):
                self._visit_np_random(node, func.attr, ctx)
        elif isinstance(func, ast.Name):
            origin = self._imports.origin_of(func.id)
            if origin == "numpy.random.default_rng":
                if _default_rng_is_unseeded(node):
                    self._flag(node, ctx, "unseeded numpy.random.default_rng()")
            elif origin and origin.startswith("numpy.random."):
                tail = origin.rsplit(".", 1)[1]
                if tail not in _NP_RANDOM_OK:
                    self._flag(node, ctx, f"call to legacy global numpy {origin}()")
            elif origin and origin.startswith("random."):
                tail = origin.rsplit(".", 1)[1]
                if tail not in _PY_RANDOM_OK:
                    self._flag(node, ctx, f"call to global RNG {origin}()")

    def _visit_np_random(self, node: ast.Call, attr: str, ctx: FileContext) -> None:
        if attr == "default_rng":
            if _default_rng_is_unseeded(node):
                self._flag(node, ctx, "unseeded numpy.random.default_rng()")
        elif attr not in _NP_RANDOM_OK:
            self._flag(node, ctx, f"call to legacy global numpy.random.{attr}()")


# ---------------------------------------------------------------------------
# RL002 — wall-clock reads in simulation code
# ---------------------------------------------------------------------------

_TIME_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register
class WallClockRule(Rule):
    code = "RL002"
    name = "wall-clock"
    summary = "simulation code must take time from the DES clock"
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        # The sanctioned clock shim(s) are exempt *by name* — they are
        # the single doorway everything else must go through.
        if module_in(ctx.module, ctx.config.clock_modules):
            return False
        return module_in(ctx.module, ctx.config.wall_clock_packages)

    def begin_file(self, ctx: FileContext) -> None:
        self._imports = ImportMap.scan(ctx.tree)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        what: Optional[str] = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            origin = self._imports.module_of(func.value.id)
            from_origin = self._imports.origin_of(func.value.id)
            if origin == "time" and func.attr in _TIME_FUNCS:
                what = f"time.{func.attr}()"
            elif origin == "datetime" and func.attr in _DATETIME_FUNCS:
                what = f"datetime.{func.attr}()"
            elif (
                from_origin in ("datetime.datetime", "datetime.date")
                and func.attr in _DATETIME_FUNCS
            ):
                what = f"{from_origin}.{func.attr}()"
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and self._imports.module_of(inner.value.id) == "datetime"
                and inner.attr in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS
            ):
                what = f"datetime.{inner.attr}.{func.attr}()"
        elif isinstance(func, ast.Name):
            origin = self._imports.origin_of(func.id)
            if origin and origin.startswith("time.") and origin[5:] in _TIME_FUNCS:
                what = f"{origin}()"
        if what is not None:
            ctx.report(
                node,
                self.code,
                f"wall-clock read {what} in simulation code — simulated "
                "time must come from the DES clock (Simulator.now); real "
                "telemetry belongs in allowlisted modules",
            )


# ---------------------------------------------------------------------------
# RL003 — inline dB <-> linear conversions
# ---------------------------------------------------------------------------


def _is_log10_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (isinstance(func, ast.Name) and func.id == "log10") or (
        isinstance(func, ast.Attribute) and func.attr == "log10"
    )


def _const_value(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    return None


@register
class InlineDbMathRule(Rule):
    code = "RL003"
    name = "inline-db-math"
    summary = "dB conversions must go through repro.analysis.dbmath"
    node_types = (ast.BinOp,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not module_in(ctx.module, ctx.config.dbmath_modules)

    def visit(self, node: ast.BinOp, ctx: FileContext) -> None:
        if isinstance(node.op, ast.Mult):
            for const, other in ((node.left, node.right), (node.right, node.left)):
                factor = _const_value(const)
                if factor in (10.0, 20.0) and _is_log10_call(other):
                    helper = (
                        "linear_to_db/linear_to_db_scalar"
                        if factor == 10.0
                        else "amplitude_to_db_scalar"
                    )
                    ctx.report(
                        node,
                        self.code,
                        f"inline {factor:.0f}*log10(...) conversion — use "
                        f"repro.analysis.dbmath.{helper} (keeps the DB_FLOOR "
                        "guard consistent)",
                    )
                    return
        elif isinstance(node.op, ast.Pow):
            base = _const_value(node.left)
            if base != 10.0:
                return
            exp = node.right
            if isinstance(exp, ast.BinOp) and isinstance(exp.op, ast.Div):
                divisor = _const_value(exp.right)
                if divisor in (10.0, 20.0):
                    helper = (
                        "db_to_linear/db_to_linear_scalar"
                        if divisor == 10.0
                        else "db_to_amplitude_scalar"
                    )
                    ctx.report(
                        node,
                        self.code,
                        f"inline 10**(x/{divisor:.0f}) conversion — use "
                        f"repro.analysis.dbmath.{helper}",
                    )


# ---------------------------------------------------------------------------
# RL004 — log/linear unit mixing
# ---------------------------------------------------------------------------

_LOG_SUFFIXES = ("_db", "_dbm", "_dbi")
_LINEAR_SUFFIXES = ("_mw", "_lin", "_linear", "_watts")


def _identifier_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit_group(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    lowered = name.lower()
    if lowered.endswith(_LOG_SUFFIXES):
        return "log"
    if lowered.endswith(_LINEAR_SUFFIXES):
        return "linear"
    return None


@register
class UnitMixingRule(Rule):
    code = "RL004"
    name = "db-unit-mixing"
    summary = "adding dB-suffixed and linear-suffixed values without converting"
    node_types = (ast.BinOp,)

    def visit(self, node: ast.BinOp, ctx: FileContext) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        left = _unit_group(_identifier_of(node.left))
        right = _unit_group(_identifier_of(node.right))
        if left and right and left != right:
            left_name = _identifier_of(node.left)
            right_name = _identifier_of(node.right)
            ctx.report(
                node,
                self.code,
                f"arithmetic mixes log-domain '{left_name}' with linear-"
                f"domain '{right_name}' without a dbmath conversion — "
                "powers add in the linear domain, gains in dB",
            )


# ---------------------------------------------------------------------------
# RL005 — float equality in physics modules
# ---------------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    code = "RL005"
    name = "float-equality"
    summary = "exact ==/!= against float literals in physics code"
    node_types = (ast.Compare,)

    def applies_to(self, ctx: FileContext) -> bool:
        return module_in(ctx.module, ctx.config.physics_packages)

    def visit(self, node: ast.Compare, ctx: FileContext) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[i], operands[i + 1]):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and side.value != 0.0
                ):
                    ctx.report(
                        node,
                        self.code,
                        f"exact float comparison against {side.value!r} — "
                        "use math.isclose or an explicit tolerance "
                        "(comparisons against 0.0 are exempt as exact-zero "
                        "guards)",
                    )
                    return


# ---------------------------------------------------------------------------
# RL006 — mutable defaults and frozen campaign-spec mutation
# ---------------------------------------------------------------------------

_SPEC_TYPES = {"CampaignSpec", "ScenarioSpec"}
_MUTABLE_CTORS = {"list", "dict", "set"}


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1]
    if isinstance(node, ast.Subscript):  # Optional[CampaignSpec] etc.
        return _annotation_name(node.slice)
    return None


@register
class MutationHazardRule(Rule):
    code = "RL006"
    name = "mutation-hazard"
    summary = "mutable default arguments / mutation of frozen campaign specs"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Call, ast.Assign)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            self._check_defaults(node, ctx)
        elif isinstance(node, ast.Call):
            self._check_object_setattr(node, ctx)
        elif isinstance(node, ast.Assign):
            self._check_spec_assignment(node, ctx)

    def _check_defaults(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CTORS
            )
            if mutable:
                ctx.report(
                    default,
                    self.code,
                    "mutable default argument is shared across calls — "
                    "default to None and construct inside the function",
                )

    def _check_object_setattr(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            return
        enclosing = ctx.enclosing_function()
        if enclosing is not None and getattr(enclosing, "name", "") == "__post_init__":
            return
        ctx.report(
            node,
            self.code,
            "object.__setattr__ outside __post_init__ mutates a frozen "
            "dataclass — campaign specs are immutable by contract; build "
            "a new spec (e.g. with_overrides) instead",
        )

    def _check_spec_assignment(self, node: ast.Assign, ctx: FileContext) -> None:
        spec_params = self._spec_parameters(ctx)
        if not spec_params:
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in spec_params
            ):
                ctx.report(
                    node,
                    self.code,
                    f"assignment to attribute of frozen campaign spec "
                    f"'{target.value.id}' — specs are immutable; derive a "
                    "new one with with_overrides",
                )

    def _spec_parameters(self, ctx: FileContext) -> Set[str]:
        enclosing = ctx.enclosing_function()
        if enclosing is None or isinstance(enclosing, ast.Lambda):
            return set()
        names: Set[str] = set()
        args = enclosing.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_name(arg.annotation) in _SPEC_TYPES:
                names.add(arg.arg)
        return names


# ---------------------------------------------------------------------------
# RL007 — unordered iteration feeding hashed/serialized output
# ---------------------------------------------------------------------------

_SERIALIZE_ATTRS = {
    "dump",
    "dumps",
    "hexdigest",
    "digest",
    "sha256",
    "sha1",
    "md5",
    "blake2b",
    "blake2s",
}


def _is_setish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in ("keys", "values", "items"):
            return True
    return False


@register
class UnorderedHashIterationRule(Rule):
    code = "RL007"
    name = "unordered-hash-iteration"
    summary = "set/dict iteration order feeding hashed or serialized output"
    node_types = (ast.For, ast.comprehension)

    def begin_file(self, ctx: FileContext) -> None:
        self._cache: Dict[int, bool] = {}

    def _serializes(self, func_node: ast.AST) -> bool:
        key = id(func_node)
        if key not in self._cache:
            found = False
            for sub in ast.walk(func_node):
                if isinstance(sub, ast.Call):
                    f = sub.func
                    name = (
                        f.attr
                        if isinstance(f, ast.Attribute)
                        else (f.id if isinstance(f, ast.Name) else None)
                    )
                    if name in _SERIALIZE_ATTRS:
                        found = True
                        break
            self._cache[key] = found
        return self._cache[key]

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        iter_expr = node.iter
        if not _is_setish(iter_expr):
            return
        enclosing = ctx.enclosing_function()
        if enclosing is None or not self._serializes(enclosing):
            return
        # A generator feeding sorted()/min()/max() imposes an order of
        # its own, so the underlying iteration order is immaterial.
        for ancestor in reversed(ctx.stack):
            if ancestor is enclosing:
                break
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id in ("sorted", "min", "max")
            ):
                return
        if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Attribute):
            what = f".{iter_expr.func.attr}()"
        else:
            what = "set"
        ctx.report(
            node if isinstance(node, ast.For) else iter_expr,
            self.code,
            f"iteration over {what} inside a function that hashes or "
            "serializes — wrap in sorted(...) so the cache key / output "
            "is deterministic",
        )


# ---------------------------------------------------------------------------
# RL008 — swallowed simulator errors
# ---------------------------------------------------------------------------


def _is_broad(exc_type: Optional[ast.AST]) -> bool:
    if exc_type is None:
        return True
    if isinstance(exc_type, ast.Name):
        return exc_type.id in ("Exception", "BaseException")
    if isinstance(exc_type, ast.Tuple):
        return any(_is_broad(el) for el in exc_type.elts)
    return False


def _body_is_noop(body) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register
class ExceptionSwallowRule(Rule):
    code = "RL008"
    name = "exception-swallow"
    summary = "bare/broad except that silently discards simulator errors"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(
                node,
                self.code,
                "bare except: catches everything including KeyboardInterrupt "
                "— name the exceptions a cell failure can raise",
            )
        elif _is_broad(node.type) and _body_is_noop(node.body):
            ctx.report(
                node,
                self.code,
                "broad except with a pass body silently swallows simulator "
                "errors — log, re-raise, or narrow the exception type",
            )
