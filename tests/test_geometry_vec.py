"""Unit tests for 2D vectors and angle helpers."""

import math

import pytest

from repro.geometry.vec import Vec2, angle_between, normalize_angle


class TestArithmetic:
    def test_add(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_sub(self):
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_mul_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_div(self):
        assert Vec2(2, 4) / 2 == Vec2(1, 2)

    def test_neg(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_iter_unpacking(self):
        x, y = Vec2(7, 8)
        assert (x, y) == (7, 8)


class TestProducts:
    def test_dot_orthogonal(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0

    def test_cross_sign(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1.0


class TestNormsAndAngles:
    def test_length(self):
        assert Vec2(3, 4).length() == 5.0

    def test_length_squared(self):
        assert Vec2(3, 4).length_squared() == 25.0

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(0, 5)) == 5.0

    def test_normalized(self):
        n = Vec2(0, 2).normalized()
        assert n == Vec2(0, 1)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Vec2(0, 0).normalized()

    def test_angle(self):
        assert Vec2(0, 1).angle() == pytest.approx(math.pi / 2)
        assert Vec2(-1, 0).angle() == pytest.approx(math.pi)

    def test_rotation_quarter_turn(self):
        r = Vec2(1, 0).rotated(math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)

    def test_rotation_preserves_length(self):
        v = Vec2(3, -4)
        assert v.rotated(1.234).length() == pytest.approx(v.length())

    def test_perpendicular_is_ccw(self):
        assert Vec2(1, 0).perpendicular() == Vec2(0, 1)

    def test_from_polar(self):
        v = Vec2.from_polar(2.0, math.pi)
        assert v.x == pytest.approx(-2.0)
        assert v.y == pytest.approx(0.0, abs=1e-12)

    def test_unit(self):
        assert Vec2.unit(0.0) == Vec2(1.0, 0.0)


class TestAngleHelpers:
    def test_normalize_wraps_above_pi(self):
        assert normalize_angle(3 * math.pi / 2) == pytest.approx(-math.pi / 2)

    def test_normalize_idempotent(self):
        for a in (-3.0, -0.5, 0.0, 0.5, 3.0):
            assert normalize_angle(normalize_angle(a)) == pytest.approx(normalize_angle(a))

    def test_angle_between_wraps(self):
        assert angle_between(math.pi - 0.1, -math.pi + 0.1) == pytest.approx(0.2)

    def test_angle_between_symmetric(self):
        assert angle_between(0.3, 1.2) == pytest.approx(angle_between(1.2, 0.3))
