"""CLI behavior of ``python -m repro lint``: exit codes, JSON, baseline."""

import json
import pathlib

import pytest

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CLEAN_SOURCE = """\
import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()
"""

DIRTY_SOURCE = """\
import random


def draw():
    return random.random()
"""


@pytest.fixture
def project(tmp_path):
    """A minimal project tree with a pyproject marking the root."""
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\nbaseline = \"lint-baseline.json\"\n"
    )
    pkg = tmp_path / "src" / "repro" / "phy"
    pkg.mkdir(parents=True)
    return tmp_path


def write_module(project, name, source):
    path = project / "src" / "repro" / "phy" / name
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        write_module(project, "clean.py", CLEAN_SOURCE)
        rc = main(["lint", "--root", str(project), str(project / "src")])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, project, capsys):
        write_module(project, "dirty.py", DIRTY_SOURCE)
        rc = main(["lint", "--root", str(project), str(project / "src")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "dirty.py" in out

    def test_missing_path_exits_two(self, project, capsys):
        rc = main(["lint", "--root", str(project), str(project / "nope")])
        assert rc == 2

    def test_default_path_is_src(self, project, capsys, monkeypatch):
        write_module(project, "dirty.py", DIRTY_SOURCE)
        monkeypatch.chdir(project)
        rc = main(["lint"])
        assert rc == 1


class TestJsonOutput:
    def test_json_document_shape(self, project, capsys):
        write_module(project, "dirty.py", DIRTY_SOURCE)
        rc = main(["lint", "--json", "--root", str(project), str(project / "src")])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["baselined"] == 0
        (finding,) = doc["findings"]
        assert finding["code"] == "RL001"
        assert finding["path"].endswith("dirty.py")
        assert finding["line"] >= 1
        assert len(finding["fingerprint"]) == 16

    def test_json_clean(self, project, capsys):
        write_module(project, "clean.py", CLEAN_SOURCE)
        rc = main(["lint", "--json", "--root", str(project), str(project / "src")])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == {"findings": [], "count": 0, "baselined": 0}


class TestBaseline:
    def test_write_then_baseline_suppresses(self, project, capsys):
        write_module(project, "dirty.py", DIRTY_SOURCE)
        rc = main(
            ["lint", "--write-baseline", "--root", str(project), str(project / "src")]
        )
        assert rc == 0
        baseline = json.loads((project / "lint-baseline.json").read_text())
        assert len(baseline["entries"]) == 1
        assert baseline["entries"][0]["code"] == "RL001"

        rc = main(
            ["lint", "--baseline", "--root", str(project), str(project / "src")]
        )
        assert rc == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_finding_fails_despite_baseline(self, project, capsys):
        write_module(project, "dirty.py", DIRTY_SOURCE)
        main(["lint", "--write-baseline", "--root", str(project), str(project / "src")])
        write_module(
            project,
            "newer.py",
            "import random\ny = random.uniform(0.0, 1.0)\n",
        )
        rc = main(["lint", "--baseline", "--root", str(project), str(project / "src")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "newer.py" in out
        assert "dirty.py" not in out.replace("1 baselined", "")

    def test_missing_baseline_treated_as_empty(self, project, capsys):
        write_module(project, "dirty.py", DIRTY_SOURCE)
        rc = main(["lint", "--baseline", "--root", str(project), str(project / "src")])
        assert rc == 1

    def test_corrupt_baseline_exits_two(self, project, capsys):
        write_module(project, "clean.py", CLEAN_SOURCE)
        (project / "lint-baseline.json").write_text("{not json")
        rc = main(["lint", "--baseline", "--root", str(project), str(project / "src")])
        assert rc == 2

    def test_baseline_is_multiset(self, project):
        # Two identical violations need two baseline entries; fixing one
        # but reintroducing it elsewhere must not widen the allowance.
        write_module(
            project,
            "dirty.py",
            "import random\nx = random.random()\nx = random.random()\n",
        )
        main(["lint", "--write-baseline", "--root", str(project), str(project / "src")])
        baseline = json.loads((project / "lint-baseline.json").read_text())
        assert len(baseline["entries"]) == 2
        rc = main(["lint", "--baseline", "--root", str(project), str(project / "src")])
        assert rc == 0


class TestConfig:
    def test_pyproject_per_file_ignores(self, project, capsys):
        (project / "pyproject.toml").write_text(
            "[tool.repro-lint.per-file-ignores]\n"
            '"src/repro/phy/dirty.py" = ["RL001"]\n'
        )
        write_module(project, "dirty.py", DIRTY_SOURCE)
        rc = main(["lint", "--root", str(project), str(project / "src")])
        assert rc == 0

    def test_pyproject_global_disable(self, project):
        (project / "pyproject.toml").write_text(
            "[tool.repro-lint]\ndisable = [\"RL001\"]\n"
        )
        write_module(project, "dirty.py", DIRTY_SOURCE)
        rc = main(["lint", "--root", str(project), str(project / "src")])
        assert rc == 0

    def test_exclude_glob(self, project):
        (project / "pyproject.toml").write_text(
            "[tool.repro-lint]\nexclude = [\"*/generated/*\"]\n"
        )
        gen = project / "src" / "repro" / "phy" / "generated"
        gen.mkdir()
        (gen / "dirty.py").write_text(DIRTY_SOURCE)
        rc = main(["lint", "--root", str(project), str(project / "src")])
        assert rc == 0

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for i in range(1, 9):
            assert f"RL00{i}" in out


class TestSelfLint:
    """The repository's own source must be clean modulo the baseline."""

    def test_src_tree_clean_against_committed_baseline(self, capsys):
        rc = main(
            [
                "lint",
                "--baseline",
                "--root",
                str(REPO_ROOT),
                str(REPO_ROOT / "src"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, f"repro lint found new violations:\n{out}"

    def test_committed_baseline_is_empty(self):
        # All real findings were fixed in-tree rather than grandfathered;
        # keep it that way.
        baseline = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert baseline["entries"] == []
