"""Tests for campaign/scenario specs: hashing, expansion, sharding."""

import os
import subprocess
import sys

import pytest

from repro.campaign.spec import CampaignSpec, ScenarioSpec, canonicalize


class TestCanonicalize:
    def test_scalars_pass_through(self):
        assert canonicalize("x") == "x"
        assert canonicalize(3) == 3
        assert canonicalize(True) is True
        assert canonicalize(None) is None

    def test_integral_floats_normalize_to_int(self):
        assert canonicalize(2.0) == 2
        assert isinstance(canonicalize(2.0), int)
        assert canonicalize(2.5) == 2.5

    def test_sequences_become_lists(self):
        assert canonicalize((1, 2.0, "a")) == [1, 2, "a"]

    def test_non_data_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())
        with pytest.raises(TypeError):
            canonicalize(lambda: None)


class TestScenarioSpec:
    def test_param_order_does_not_matter(self):
        a = ScenarioSpec("exp", {"x": 1, "y": 2}, seed=3)
        b = ScenarioSpec("exp", {"y": 2, "x": 1}, seed=3)
        assert a == b
        assert a.canonical() == b.canonical()
        assert a.digest() == b.digest()

    def test_float_int_equivalence(self):
        a = ScenarioSpec("exp", {"d": 2.0})
        b = ScenarioSpec("exp", {"d": 2})
        assert a.digest() == b.digest()

    def test_identity_fields_distinguish(self):
        base = ScenarioSpec("exp", {"x": 1}, seed=0, repetition=0)
        assert base.digest() != ScenarioSpec("exp2", {"x": 1}).digest()
        assert base.digest() != ScenarioSpec("exp", {"x": 2}).digest()
        assert base.digest() != ScenarioSpec("exp", {"x": 1}, seed=1).digest()
        assert base.digest() != ScenarioSpec("exp", {"x": 1}, repetition=1).digest()

    def test_salt_changes_digest(self):
        spec = ScenarioSpec("exp", {"x": 1})
        assert spec.digest("v1") != spec.digest("v2")

    def test_digest_stable_across_processes(self):
        """Content addresses must not depend on hash randomization."""
        spec = ScenarioSpec("exp", {"x": 1, "label": "dock"}, seed=7)
        code = (
            "from repro.campaign.spec import ScenarioSpec;"
            "print(ScenarioSpec('exp', {'x': 1, 'label': 'dock'}, seed=7)"
            ".digest('salty'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONHASHSEED": "12345"},
        )
        assert out.stdout.strip() == spec.digest("salty")

    def test_param_dict_roundtrip(self):
        spec = ScenarioSpec("exp", {"grid": [1, 2], "name": "a"})
        assert spec.param_dict() == {"grid": [1, 2], "name": "a"}

    def test_shard_in_range_and_deterministic(self):
        spec = ScenarioSpec("exp", {"x": 5})
        shards = {spec.shard(4) for _ in range(10)}
        assert len(shards) == 1
        assert 0 <= shards.pop() < 4
        with pytest.raises(ValueError):
            spec.shard(0)


class TestCampaignSpec:
    def grid_spec(self):
        return CampaignSpec(
            name="t",
            experiment="exp",
            base_params={"fixed": "yes"},
            grid={"a": (1, 2, 3), "b": ("x", "y")},
            seeds=(0, 1),
        )

    def test_scenario_count(self):
        assert self.grid_spec().scenario_count() == 12

    def test_expand_is_full_product(self):
        scenarios = self.grid_spec().expand()
        assert len(scenarios) == 12
        combos = {(s.param_dict()["a"], s.param_dict()["b"], s.seed) for s in scenarios}
        assert len(combos) == 12
        assert all(s.param_dict()["fixed"] == "yes" for s in scenarios)

    def test_expand_deterministic_order(self):
        a = [s.digest() for s in self.grid_spec().expand()]
        b = [s.digest() for s in self.grid_spec().expand()]
        assert a == b

    def test_shards_partition_the_expansion(self):
        spec = self.grid_spec()
        shards = spec.shards(3)
        assert len(shards) == 3
        flat = [s for shard in shards for s in shard]
        assert sorted(s.digest() for s in flat) == sorted(
            s.digest() for s in spec.expand()
        )
        # Assignment is digest-driven, hence identical across calls.
        assert [[s.digest() for s in shard] for shard in shards] == [
            [s.digest() for s in shard] for shard in spec.shards(3)
        ]

    def test_repetitions_expand(self):
        spec = CampaignSpec(name="t", experiment="exp", seeds=(0,), repetitions=3)
        reps = [s.repetition for s in spec.expand()]
        assert reps == [0, 1, 2]

    def test_with_overrides_pins_axis_and_merges_base(self):
        spec = self.grid_spec().with_overrides({"a": 9, "new": 1}, seeds=(5,))
        assert spec.grid_dict()["a"] == [9]
        assert spec.base_param_dict()["new"] == 1
        assert spec.seeds == (5,)
        assert spec.scenario_count() == 2  # a pinned, b has 2 values, 1 seed

    def test_campaign_digest_tracks_content(self):
        assert self.grid_spec().digest() == self.grid_spec().digest()
        assert (
            self.grid_spec().digest()
            != self.grid_spec().with_overrides({"a": 9}).digest()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="t", experiment="exp", seeds=())
        with pytest.raises(ValueError):
            CampaignSpec(name="t", experiment="exp", repetitions=0)
