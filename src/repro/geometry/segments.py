"""Line segments with intersection and mirroring primitives.

These are the building blocks of the image-method ray tracer: walls are
segments, reflection points are segment/segment intersections, and
virtual (image) sources are produced by mirroring points across wall
lines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.geometry.materials import Material, MATERIALS
from repro.geometry.vec import Vec2

#: Geometric tolerance in meters.  Room dimensions are on the order of
#: meters and wavelengths are 5 mm, so 1e-9 m is far below anything
#: physically meaningful while comfortably absorbing float error.
EPSILON = 1e-9


@dataclass(frozen=True)
class Segment:
    """A wall or obstacle edge between two endpoints."""

    a: Vec2
    b: Vec2
    material: Material = field(default=MATERIALS["drywall"])
    name: str = ""

    def __post_init__(self) -> None:
        if self.a.distance_to(self.b) < EPSILON:
            raise ValueError("degenerate segment: endpoints coincide")

    def length(self) -> float:
        """Segment length in meters."""
        return self.a.distance_to(self.b)

    def direction(self) -> Vec2:
        """Unit vector from ``a`` to ``b``."""
        return (self.b - self.a).normalized()

    def normal(self) -> Vec2:
        """Unit normal (CCW perpendicular of the direction)."""
        return self.direction().perpendicular()

    def midpoint(self) -> Vec2:
        """Geometric center of the segment."""
        return (self.a + self.b) * 0.5

    def point_at(self, t: float) -> Vec2:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return self.a + (self.b - self.a) * t

    def contains_point(self, p: Vec2, tol: float = 1e-6) -> bool:
        """Whether ``p`` lies on the segment within tolerance."""
        ab = self.b - self.a
        ap = p - self.a
        if abs(ab.cross(ap)) > tol * max(1.0, ab.length()):
            return False
        t = ap.dot(ab) / ab.length_squared()
        return -tol <= t <= 1.0 + tol

    def mirror_point(self, p: Vec2) -> Vec2:
        """Reflect ``p`` across the infinite line through this segment.

        This is the core operation of the image method: the virtual
        source of a reflection off a wall is the real source mirrored
        across the wall's line.
        """
        d = self.direction()
        ap = p - self.a
        along = d * ap.dot(d)
        perp = ap - along
        return self.a + along - perp

    def distance_to_point(self, p: Vec2) -> float:
        """Shortest distance from ``p`` to the segment."""
        ab = self.b - self.a
        t = (p - self.a).dot(ab) / ab.length_squared()
        t = min(1.0, max(0.0, t))
        return p.distance_to(self.point_at(t))


def segment_intersection(
    s1: Segment,
    s2: Segment,
    tol: float = EPSILON,
) -> Optional[Vec2]:
    """Intersection point of two segments, or None if they do not cross.

    Collinear overlaps return None: for ray tracing purposes a ray
    sliding exactly along a wall carries no reflected energy and is
    treated as a miss.
    """
    p, r = s1.a, s1.b - s1.a
    q, s = s2.a, s2.b - s2.a
    denom = r.cross(s)
    if abs(denom) < tol:
        return None
    qp = q - p
    t = qp.cross(s) / denom
    u = qp.cross(r) / denom
    if -tol <= t <= 1.0 + tol and -tol <= u <= 1.0 + tol:
        return p + r * t
    return None


def ray_segment_intersection(
    origin: Vec2,
    direction: Vec2,
    segment: Segment,
    tol: float = EPSILON,
) -> Optional[float]:
    """Distance along a ray to its first hit on ``segment``.

    Returns the (positive) ray parameter, i.e. the travel distance when
    ``direction`` is a unit vector, or None if the ray misses.  Hits at
    (essentially) zero distance are ignored so that rays cast *from* a
    wall do not immediately re-hit it.
    """
    r = direction
    q, s = segment.a, segment.b - segment.a
    denom = r.cross(s)
    if abs(denom) < tol:
        return None
    qp = q - origin
    t = qp.cross(s) / denom
    u = qp.cross(r) / denom
    if t > tol and -tol <= u <= 1.0 + tol:
        return t
    return None


def angle_of_incidence(incoming: Vec2, segment: Segment) -> float:
    """Angle between an incoming ray direction and the wall normal.

    Returned in radians, in [0, pi/2].  Used by reflection models that
    scale loss with incidence angle.
    """
    n = segment.normal()
    cos_theta = abs(incoming.normalized().dot(n))
    cos_theta = min(1.0, max(-1.0, cos_theta))
    return math.acos(cos_theta)
