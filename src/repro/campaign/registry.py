"""Experiment-cell registry and the built-in campaign catalog.

A *cell* is a plain module-level function ``fn(*, seed, **params) ->
dict`` that computes one scenario and returns JSON-style data.  Cells
are addressed by name so scenario specs stay pure data and worker
processes can resolve them independently:

* registered short names (``beam_pattern``, ``range_point``, ...) map
  to dotted paths below;
* any ``module:function`` dotted path works directly, which is how
  test suites inject their own cells without touching this module.

Cells may include an ``events_simulated`` key in their result when
they drive the discrete-event simulator; the runner folds it into the
run telemetry (events per worker-second).
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List

from repro.campaign.spec import CampaignSpec

#: Registered cell name -> "module:function" dotted path.
CELLS: Dict[str, str] = {
    "beam_pattern": "repro.experiments.beam_patterns:pattern_cell",
    "range_point": "repro.experiments.range_vs_distance:distance_cell",
    "interference_point": "repro.experiments.interference:interference_cell",
    "mobility_vehicular": "repro.experiments.mobility:vehicular_cell",
    "mobility_handover": "repro.experiments.mobility:handover_cell",
}


def register_cell(name: str, dotted_path: str) -> None:
    """Register (or replace) a cell name -> dotted path mapping."""
    if ":" not in dotted_path:
        raise ValueError("dotted path must look like 'package.module:function'")
    CELLS[name] = dotted_path


def resolve_cell(name: str) -> Callable[..., Dict]:
    """Import and return the cell function behind a name or dotted path."""
    dotted = CELLS.get(name, name)
    if ":" not in dotted:
        raise KeyError(
            f"unknown experiment cell {name!r} "
            f"(registered: {', '.join(sorted(CELLS))})"
        )
    module_name, _, attr = dotted.partition(":")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError as exc:
        raise KeyError(f"{dotted!r}: {exc}") from None
    if not callable(fn):
        raise TypeError(f"{dotted!r} is not callable")
    return fn


def builtin_campaigns() -> Dict[str, CampaignSpec]:
    """The campaign catalog exposed by ``python -m repro campaign``.

    * ``beam-patterns`` — the Section 4.2 outdoor semicircle sweep
      (Figure 17): laptop, aligned dock, and 70-degree rotated dock,
      100 positions each, repeated over seeds.
    * ``range-vs-distance`` — the Figure 13 grid: one cell per
      (distance, run-seed) pair, 1-20 m x 10 runs.
    * ``interference`` — the Figure 22 side-lobe sweep: one cell per
      (WiHD offset, alignment), full DES simulation per cell.
    """
    return {
        "beam-patterns": CampaignSpec(
            name="beam-patterns",
            experiment="beam_pattern",
            base_params={"positions": 100},
            grid={"setup": ("laptop", "dock_aligned", "dock_rotated_70")},
            seeds=(0, 1, 2),
            description="Figure 17 semicircle beam-pattern sweep",
        ),
        "range-vs-distance": CampaignSpec(
            name="range-vs-distance",
            experiment="range_point",
            base_params={},
            grid={"distance_m": tuple(float(d) for d in range(1, 21))},
            seeds=tuple(range(10)),
            description="Figure 13 TCP throughput vs link length",
        ),
        "interference": CampaignSpec(
            name="interference",
            experiment="interference_point",
            base_params={"duration_s": 0.25},
            grid={
                "wihd_offset_m": (0.0, 0.5, 1.0, 1.6, 2.0, 2.5, 3.0),
                "rotated": (False, True),
            },
            seeds=(10,),
            description="Figure 22 side-lobe interference sweep (DES)",
        ),
        "mobility-speed": CampaignSpec(
            name="mobility-speed",
            experiment="mobility_vehicular",
            base_params={},
            grid={"speed_kmh": (50.0, 70.0, 110.0)},
            seeds=(0, 1),
            description="Vehicular drive-by: throughput and re-training "
            "overhead vs speed (DES)",
        ),
        "mobility-handover": CampaignSpec(
            name="mobility-handover",
            experiment="mobility_handover",
            base_params={},
            grid={"policy": ("sticky", "hysteresis", "wifi")},
            seeds=(0, 1),
            description="Corridor walk: handover policies, goodput, and "
            "AP contact time (DES)",
        ),
    }


def campaign_names() -> List[str]:
    return sorted(builtin_campaigns())


def get_campaign(name: str) -> CampaignSpec:
    campaigns = builtin_campaigns()
    try:
        return campaigns[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r} (available: {', '.join(sorted(campaigns))})"
        ) from None
