"""Tests for campaign result persistence (JSONL + manifest layout)."""

import json

import pytest

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import load_manifest, load_results, save_results, write_run
from repro.campaign.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    RunTelemetry,
    read_manifest,
    upgrade_manifest,
)
from repro.io import load_jsonl, save_jsonl

DOUBLE = "tests.campaign_cells:double_cell"


@pytest.fixture()
def result():
    spec = CampaignSpec(
        name="doubles",
        experiment=DOUBLE,
        grid={"value": (1, 2)},
        seeds=(0,),
    )
    return run_campaign(spec)


class TestJsonlHelpers:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1}, {"b": [1, 2]}, {"c": None}]
        path = tmp_path / "rows.jsonl"
        assert save_jsonl(rows, path) == 3
        assert load_jsonl(path) == rows

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert load_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n{broken\n')
        with pytest.raises(ValueError, match=":2"):
            load_jsonl(path)


class TestResultRows:
    def test_save_load_roundtrip(self, result, tmp_path):
        path = tmp_path / "results.jsonl"
        assert save_results(result, path) == 2
        rows = load_results(path)
        assert [r["digest"] for r in rows] == [o.digest for o in result.outcomes]
        assert rows[0]["status"] == "completed"
        assert rows[0]["result"]["value"] in (2, 4)
        assert rows[0]["params"] == {"value": rows[0]["result"]["value"] // 2}

    def test_load_validates_required_keys(self, tmp_path):
        path = tmp_path / "results.jsonl"
        save_jsonl([{"digest": "x"}], path)
        with pytest.raises(ValueError, match="experiment"):
            load_results(path)


class TestWriteRun:
    def test_layout_and_contents(self, result, tmp_path):
        out = write_run(result, tmp_path / "run")
        assert (out / "results.jsonl").is_file()
        assert (out / "manifest.json").is_file()
        manifest = read_manifest(out / "manifest.json")
        assert manifest["scenarios"]["total"] == 2
        assert len(load_results(out / "results.jsonl")) == 2

    def test_no_trace_file_without_tracing(self, result, tmp_path):
        out = write_run(result, tmp_path / "run")
        assert not (out / "trace.json").exists()


class TestManifestSchema:
    def test_v3_schema_locked(self, result, tmp_path):
        # The manifest is the contract external tooling reads; lock the
        # exact top-level key set so additions are deliberate (and
        # versioned), mirroring the lint --json schema lock.
        path = result.telemetry.write_manifest(tmp_path / "manifest.json")
        manifest = json.loads(path.read_text())
        assert sorted(manifest) == [
            "cache_hit_ratio",
            "campaign",
            "campaign_digest",
            "des",
            "failures",
            "finished_unix",
            "metrics",
            "profile",
            "scenarios",
            "schema_version",
            "shard_sizes",
            "spans_file",
            "started_unix",
            "timing",
            "workers",
        ]
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION == 3
        assert sorted(manifest["scenarios"]) == [
            "cached",
            "completed",
            "failed",
            "retries",
            "timeouts",
            "total",
        ]
        assert sorted(manifest["timing"]) == [
            "speedup_vs_serial",
            "wall_clock_s",
            "worker_time_s",
        ]
        assert sorted(manifest["des"]) == ["events_per_second", "events_simulated"]

    def test_v1_manifest_upgraded_on_read(self, tmp_path):
        # A pre-observability manifest (schema 1, no metrics/spans_file)
        # must stay readable: the shim upgrades it in place.
        v1 = {
            "schema_version": 1,
            "campaign": "legacy",
            "campaign_digest": "abc",
            "workers": 2,
            "scenarios": {"total": 4, "completed": 4, "cached": 0, "failed": 0},
            "timing": {"wall_clock_s": 1.0, "worker_time_s": 1.5},
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(v1))
        manifest = read_manifest(path)
        assert manifest["schema_version"] == 3
        assert manifest["metrics"] is None
        assert manifest["spans_file"] is None
        assert manifest["profile"] is None
        assert manifest["campaign"] == "legacy"

    def test_v2_manifest_upgraded_on_read(self, tmp_path):
        # A pre-profiling manifest (schema 2, metrics but no profile)
        # must stay readable: the shim upgrades it in place.
        v2 = {
            "schema_version": 2,
            "campaign": "legacy-v2",
            "campaign_digest": "def",
            "workers": 1,
            "scenarios": {"total": 1, "completed": 1, "cached": 0, "failed": 0},
            "timing": {"wall_clock_s": 0.5, "worker_time_s": 0.5},
            "metrics": {"counters": {"n": 1}, "gauges": {}, "histograms": {}},
            "spans_file": None,
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(v2))
        manifest = read_manifest(path)
        assert manifest["schema_version"] == 3
        assert manifest["metrics"]["counters"] == {"n": 1}
        assert manifest["profile"] is None

    def test_load_manifest_is_the_run_dir_shim(self, result, tmp_path):
        out = write_run(result, tmp_path / "run")
        manifest = load_manifest(out)
        assert manifest["schema_version"] == 3
        assert "metrics" in manifest and "spans_file" in manifest
        assert "profile" in manifest

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            upgrade_manifest({"schema_version": 999})


class TestEventsPerSecond:
    def test_zero_duration_reports_null_not_inf(self):
        # Regression: a cached-everything run has events_simulated > 0
        # but ~zero summed worker time; the old code divided and put
        # inf in the manifest (invalid JSON).
        t = RunTelemetry(events_simulated=1000, worker_time_s=0.0)
        assert t.events_per_second() is None
        manifest = t.as_manifest()
        assert manifest["des"]["events_per_second"] is None
        # json round-trips (inf would raise / emit Infinity)
        assert json.loads(json.dumps(manifest))["des"]["events_per_second"] is None

    def test_no_events_is_zero_rate(self):
        t = RunTelemetry(events_simulated=0, worker_time_s=5.0)
        assert t.events_per_second() == 0.0

    def test_normal_rate(self):
        t = RunTelemetry(events_simulated=100, worker_time_s=2.0)
        assert t.events_per_second() == 50.0

    def test_summary_omits_rate_when_null(self):
        t = RunTelemetry(events_simulated=1000, worker_time_s=0.0)
        assert "events/s" not in t.summary()

    def test_speedup_guarded_the_same_way(self):
        t = RunTelemetry(worker_time_s=2.0, wall_clock_s=0.0)
        assert t.speedup_vs_serial() is None
        assert RunTelemetry().speedup_vs_serial() == 0.0
