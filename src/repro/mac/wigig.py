"""WiGig (Dell D5000) MAC model.

Reproduces the protocol behavior the paper reverse-engineers from the
traces (Section 4.1):

* three phases — device discovery, link setup, data transmission;
* discovery frames every 102.4 ms while unassociated, each ~1 ms long
  and swept over 32 quasi-omni patterns (Figure 3);
* a beacon exchange between dock and notebook every 1.1 ms;
* data sent in bursts of at most 2 ms, each opened by two control
  frames (RTS/CTS), followed by data/ACK pairs (Figure 8);
* CSMA/CA carrier sensing — the D5000 defers to frames it can hear
  (Figure 21b) — with slotted backoff;
* queue-driven aggregation: data frames are ~5 us when carrying a
  single MPDU and grow to at most 25 us under load (Figure 9), which
  is how throughput scales at constant MCS and medium usage
  (Figures 10-12).

Calibration: MPDUs model the ~320-byte wireless-bus-extension transfer
units the D5000 tunnels Ethernet through.  With a 4.5 us PHY/MAC frame
overhead and ~1 us per-MPDU sub-header, a single-MPDU frame lasts
~6 us ("short") and a 12-MPDU aggregate ~25 us ("long"), yielding
~200 mbps unaggregated and ~920 mbps fully aggregated — the paper's
171 -> 934 mbps span (5.4x) with the GigE cap on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import obs
from repro.mac.frames import FrameKind, FrameRecord, MacTiming, WIGIG_TIMING
from repro.mac.simulator import Medium, Simulator, Station
from repro.phy.mcs import MCS, MAX_OBSERVED_MCS_INDEX, mcs_by_index, select_mcs

#: Payload bits of one MPDU (the WBE transfer unit, ~320 bytes).
MPDU_BITS = 2560

#: Fixed on-air overhead of every data frame (PHY preamble, MAC header).
FRAME_OVERHEAD_S = 4.5e-6

#: Additional on-air time per aggregated MPDU beyond its payload bits
#: (sub-header, padding to FEC block boundaries).
PER_MPDU_OVERHEAD_S = 1.0e-6

#: Maximum MPDUs per aggregate such that frames stay within the 25 us
#: maximum the paper observed.
MAX_AGGREGATION = 12

#: Fixed obs-histogram buckets for MPDUs-per-aggregate; fixed bounds
#: are what make per-worker histogram merges deterministic.
AGGREGATION_BUCKETS = (1.0, 2.0, 4.0, 8.0, float(MAX_AGGREGATION))

#: Contention parameters (802.11ad-like EDCA).
MIN_CONTENTION_WINDOW = 8
MAX_CONTENTION_WINDOW = 64
MAX_RETRIES = 7


def data_frame_duration_s(num_mpdus: int, mcs: MCS) -> float:
    """On-air duration of a data frame aggregating ``num_mpdus`` MPDUs."""
    if num_mpdus < 1:
        raise ValueError("a data frame carries at least one MPDU")
    payload_time = num_mpdus * MPDU_BITS / mcs.phy_rate_bps
    return FRAME_OVERHEAD_S + num_mpdus * PER_MPDU_OVERHEAD_S + payload_time


def max_aggregation_for(mcs: MCS, max_frame_s: float = WIGIG_TIMING.max_data_frame_s) -> int:
    """Largest aggregate that keeps the frame within the duration cap.

    The 25 us ceiling observed in Figure 9 applies to the *duration*;
    at lower MCSs each MPDU takes more air time, so fewer fit.
    """
    n = MAX_AGGREGATION
    while n > 1 and data_frame_duration_s(n, mcs) > max_frame_s:
        n -= 1
    return n


class WiGigStation(Station):
    """A WiGig endpoint (dock or notebook) with D5000-like defaults."""

    def __init__(self, name: str, position, **kwargs):
        kwargs.setdefault("tx_power_dbm", 10.0)
        kwargs.setdefault("cca_threshold_dbm", -60.0)
        super().__init__(name, position, **kwargs)


@dataclass
class WiGigLinkStats:
    """Counters a :class:`WiGigLink` accumulates while running."""

    data_frames_sent: int = 0
    data_frames_delivered: int = 0
    retransmissions: int = 0
    mpdus_delivered: int = 0
    bursts_started: int = 0
    rts_failures: int = 0
    cca_deferrals: int = 0

    @property
    def delivery_ratio(self) -> float:
        if self.data_frames_sent == 0:
            return 1.0
        return self.data_frames_delivered / self.data_frames_sent

    @property
    def bits_delivered(self) -> int:
        return self.mpdus_delivered * MPDU_BITS


class WiGigLink:
    """One dock <-> notebook WiGig link running on a shared medium.

    The link transmits whatever its queue holds.  Traffic sources
    (e.g. :class:`repro.mac.tcp.IperfFlow`) push MPDUs via
    :meth:`enqueue_mpdus` and learn about deliveries through the
    ``on_delivery`` callback.

    Args:
        sim: Shared event loop.
        medium: Shared channel.
        transmitter: Station sending the data frames.
        receiver: Station returning ACKs.
        timing: MAC timing constants.
        initial_mcs_index: Starting MCS (rate adaptation may move it).
        snr_hint_db: SNR the rate controller believes the link has;
            used to cap the MCS search.  If None, adaptation is purely
            loss-driven.
        associated: Start in the data-transfer phase.  When False the
            transmitter emits discovery sweeps until
            :meth:`associate` is called.
        send_beacons: Emit the periodic beacon exchange.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        transmitter: Station,
        receiver: Station,
        timing: MacTiming = WIGIG_TIMING,
        initial_mcs_index: int = MAX_OBSERVED_MCS_INDEX,
        snr_hint_db: Optional[float] = None,
        associated: bool = True,
        send_beacons: bool = True,
        on_delivery: Optional[Callable[[int], None]] = None,
        rate_adaptation_interval_s: float = 50e-3,
        tx_arbiter=None,
        max_aggregation: int = MAX_AGGREGATION,
    ):
        self.sim = sim
        self.medium = medium
        self.tx = transmitter
        self.rx = receiver
        self.timing = timing
        self.stats = WiGigLinkStats()
        self.on_delivery = on_delivery
        self._queue_mpdus = 0
        # FIFO of enqueue timestamps, popped on delivery: measures the
        # MAC-level queueing+service delay of each MPDU (the Figure 1
        # aggregation/delay trade-off).
        self._enqueue_times = deque()
        self.delivery_delays_s: List[float] = []
        self._snr_hint = snr_hint_db
        if snr_hint_db is not None:
            # Link setup ends with an SNR estimate; start from the MCS
            # it supports instead of walking down from the top.
            best = select_mcs(snr_hint_db)
            initial_mcs_index = best.index if best is not None else 1
        self._mcs = mcs_by_index(initial_mcs_index)
        self._associated = associated
        self._in_burst = False
        self._awaiting_data = False
        self._burst_serial = 0
        self._contending = False
        self._cw = MIN_CONTENTION_WINDOW
        self._retries = 0
        self._rate_interval = rate_adaptation_interval_s
        self._recent_sent = 0
        self._recent_delivered = 0
        self.mcs_history: List[tuple] = []  # (time_s, mcs_index)
        # Several links can share one radio (the dock serving multiple
        # WBE stations); an arbiter serializes their TXOPs.
        self._arbiter = tx_arbiter
        if tx_arbiter is not None:
            tx_arbiter.register(self)
        if not 1 <= max_aggregation <= MAX_AGGREGATION:
            raise ValueError(
                f"max_aggregation must be in [1, {MAX_AGGREGATION}]"
            )
        # Device aggregation policy: the D5000 uses the full 12-MPDU /
        # 25 us ceiling; Section 5 argues the level should depend on
        # how many nodes share the medium, so it is a knob here.
        self.max_aggregation = max_aggregation

        if send_beacons:
            self._schedule_beacon()
        if not associated:
            self._schedule_discovery()
        if self._rate_interval > 0:
            self.sim.schedule(self._rate_interval, self._rate_adaptation_tick)

    # -- public API -----------------------------------------------------

    @property
    def mcs(self) -> MCS:
        """MCS currently used for data frames."""
        return self._mcs

    @property
    def queue_depth_mpdus(self) -> int:
        return self._queue_mpdus

    @property
    def associated(self) -> bool:
        return self._associated

    def associate(self) -> None:
        """Complete link setup and move to the data-transfer phase."""
        self._associated = True

    def enqueue_mpdus(self, count: int) -> None:
        """Add MPDUs to the transmit queue and kick off contention.

        If the link is currently holding its TXOP waiting for data
        (the delay-minimizing behavior of Section 4.4), transmission
        resumes immediately instead of re-contending.
        """
        if count < 0:
            raise ValueError("cannot enqueue a negative MPDU count")
        self._queue_mpdus += count
        now = self.sim.now
        for _ in range(count):
            self._enqueue_times.append(now)
        if self._awaiting_data:
            self._awaiting_data = False
            self.sim.schedule(0.0, self._send_next_data)
            return
        self._maybe_start_contention()

    def set_mcs(self, index: int) -> None:
        """Force the data MCS (used by tests and ablations)."""
        self._mcs = mcs_by_index(index)
        self.mcs_history.append((self.sim.now, index))
        if obs.STATE.metrics:
            obs.add("mac.wigig.mcs_transitions")

    # -- beacons and discovery -------------------------------------------

    def _schedule_beacon(self) -> None:
        self.sim.schedule(self.timing.beacon_interval_s, self._beacon_tick)

    def _beacon_tick(self) -> None:
        # Beacons are only sent outside bursts and on an idle channel;
        # a busy channel just skips this beacon opportunity.
        if not self._in_burst and not self.medium.channel_busy_for(self.rx):
            beacon = FrameRecord(
                start_s=self.sim.now,
                duration_s=self.timing.beacon_frame_s,
                source=self.rx.name,  # the dock beacons; notebook answers
                destination="",
                kind=FrameKind.BEACON,
            )
            self.medium.transmit(beacon)
            self.sim.schedule(
                self.timing.beacon_frame_s + self.timing.sifs_s,
                lambda: self.medium.transmit(
                    FrameRecord(
                        start_s=self.sim.now,
                        duration_s=self.timing.beacon_frame_s,
                        source=self.tx.name,
                        destination="",
                        kind=FrameKind.BEACON,
                    )
                ),
            )
        self._schedule_beacon()

    def _schedule_discovery(self) -> None:
        self.sim.schedule(self.timing.discovery_interval_s, self._discovery_tick)

    def _discovery_tick(self) -> None:
        if self._associated:
            return  # association stops the discovery sweep
        frame = FrameRecord(
            start_s=self.sim.now,
            duration_s=self.timing.discovery_frame_s,
            source=self.rx.name,  # the dock searches for remote stations
            destination="",
            kind=FrameKind.DISCOVERY,
        )
        self.medium.transmit(frame)
        self._schedule_discovery()

    # -- CSMA/CA + burst machinery ----------------------------------------

    def kick(self) -> None:
        """Prod the link to contend (used by the transmit arbiter)."""
        self._maybe_start_contention()

    def _maybe_start_contention(self) -> None:
        if (
            self._contending
            or self._in_burst
            or self._queue_mpdus == 0
            or not self._associated
        ):
            return
        if self._arbiter is not None and not self._arbiter.may_transmit(self):
            return  # another link on this radio holds the TXOP token
        self._contending = True
        self._backoff_slots = int(self.sim.rng.integers(0, self._cw))
        self._backoff_step()

    def _backoff_step(self) -> None:
        if self._queue_mpdus == 0:
            self._contending = False
            return
        if self.medium.channel_busy_for(self.tx):
            self.stats.cca_deferrals += 1
            self.medium.wait_for_idle(self.tx, self._backoff_step)
            return
        if self._backoff_slots > 0:
            self._backoff_slots -= 1
            self.sim.schedule(self.timing.slot_s, self._backoff_step)
            return
        self._contending = False
        self._start_burst()

    def _start_burst(self) -> None:
        self._in_burst = True
        self._burst_end = self.sim.now + self.timing.max_burst_s
        self._burst_serial += 1
        self.stats.bursts_started += 1
        # Hard stop for a held TXOP: if the burst is still waiting for
        # data when its 2 ms expire, release the channel.
        serial = self._burst_serial

        def expire() -> None:
            if self._in_burst and self._burst_serial == serial and self._awaiting_data:
                self._awaiting_data = False
                self._end_burst(failed=False)

        self.sim.schedule(self.timing.max_burst_s, expire)
        rts = FrameRecord(
            start_s=self.sim.now,
            duration_s=self.timing.rts_frame_s,
            source=self.tx.name,
            destination=self.rx.name,
            kind=FrameKind.RTS,
            nav_duration_s=max(0.0, self._burst_end - self.sim.now - self.timing.rts_frame_s),
        )
        self.medium.transmit(rts, on_complete=self._rts_done)

    def _rts_done(self, record: FrameRecord, delivered: bool) -> None:
        if not delivered:
            self.stats.rts_failures += 1
            self._end_burst(failed=True)
            return
        self.sim.schedule(self.timing.sifs_s, self._send_cts)

    def _send_cts(self) -> None:
        cts = FrameRecord(
            start_s=self.sim.now,
            duration_s=self.timing.cts_frame_s,
            source=self.rx.name,
            destination=self.tx.name,
            kind=FrameKind.CTS,
            nav_duration_s=max(0.0, self._burst_end - self.sim.now - self.timing.cts_frame_s),
        )
        self.medium.transmit(cts, on_complete=self._cts_done)

    def _cts_done(self, record: FrameRecord, delivered: bool) -> None:
        if not delivered:
            self.stats.rts_failures += 1
            self._end_burst(failed=True)
            return
        self.sim.schedule(self.timing.sifs_s, self._send_next_data)

    def _send_next_data(self) -> None:
        if not self._in_burst:
            return
        if self.sim.now >= self._burst_end:
            self._end_burst(failed=False)
            return
        if self._queue_mpdus == 0:
            # Hold the TXOP: send as soon as the Ethernet side delivers
            # more data (minimizes delay at the cost of medium time).
            self._awaiting_data = True
            return
        n = min(
            self._queue_mpdus,
            self.max_aggregation,
            max_aggregation_for(self._mcs),
        )
        duration = data_frame_duration_s(n, self._mcs)
        # Never start a frame that cannot finish (with its ACK) inside
        # the burst; shrink the aggregate instead.
        while n > 1 and self.sim.now + duration > self._burst_end:
            n -= 1
            duration = data_frame_duration_s(n, self._mcs)
        self._queue_mpdus -= n
        frame = FrameRecord(
            start_s=self.sim.now,
            duration_s=duration,
            source=self.tx.name,
            destination=self.rx.name,
            kind=FrameKind.DATA,
            mcs_index=self._mcs.index,
            payload_bits=n * MPDU_BITS,
            aggregated_mpdus=n,
            retransmission=self._retries > 0,
        )
        self.stats.data_frames_sent += 1
        self._recent_sent += 1
        if obs.STATE.metrics:
            obs.add("mac.wigig.data_frames")
            obs.observe("mac.wigig.aggregation_mpdus", n, buckets=AGGREGATION_BUCKETS)
        self.medium.transmit(frame, on_complete=self._data_done)

    def _data_done(self, record: FrameRecord, delivered: bool) -> None:
        if delivered:
            self.stats.data_frames_delivered += 1
            self._recent_delivered += 1
            self.sim.schedule(self.timing.sifs_s, lambda: self._send_ack(record))
        else:
            # No ACK will come; requeue after an ACK-timeout-sized gap.
            self._retries += 1
            self.stats.retransmissions += 1
            if obs.STATE.metrics:
                obs.add("mac.wigig.retransmissions")
            self._queue_mpdus += record.aggregated_mpdus
            if self._retries > MAX_RETRIES:
                # Give up on this burst; back off harder.
                self._cw = min(self._cw * 2, MAX_CONTENTION_WINDOW)
                self._retries = 0
                self._end_burst(failed=True)
                return
            timeout = self.timing.sifs_s + self.timing.ack_frame_s + self.timing.sifs_s
            self.sim.schedule(timeout, self._send_next_data)

    def _send_ack(self, data_record: FrameRecord) -> None:
        ack = FrameRecord(
            start_s=self.sim.now,
            duration_s=self.timing.ack_frame_s,
            source=self.rx.name,
            destination=self.tx.name,
            kind=FrameKind.ACK,
        )

        def ack_done(record: FrameRecord, delivered: bool) -> None:
            # The MPDUs were received regardless of whether the ACK got
            # back cleanly; a lost ACK causes a spurious retransmission.
            if delivered:
                self._retries = 0
                self._cw = MIN_CONTENTION_WINDOW
                self.stats.mpdus_delivered += data_record.aggregated_mpdus
                now = self.sim.now
                for _ in range(min(data_record.aggregated_mpdus, len(self._enqueue_times))):
                    self.delivery_delays_s.append(now - self._enqueue_times.popleft())
                if self.on_delivery is not None:
                    self.on_delivery(data_record.aggregated_mpdus)
                self.sim.schedule(self.timing.sifs_s, self._send_next_data)
            else:
                self._retries += 1
                self.stats.retransmissions += 1
                if obs.STATE.metrics:
                    obs.add("mac.wigig.retransmissions")
                self._queue_mpdus += data_record.aggregated_mpdus
                self.sim.schedule(self.timing.sifs_s, self._send_next_data)

        self.medium.transmit(ack, on_complete=ack_done)

    def _end_burst(self, failed: bool) -> None:
        self._in_burst = False
        self._awaiting_data = False
        if self._arbiter is not None:
            self._arbiter.burst_finished(self)
        if failed:
            self._cw = min(self._cw * 2, MAX_CONTENTION_WINDOW)
        if self._queue_mpdus > 0:
            self._maybe_start_contention()

    # -- rate adaptation ---------------------------------------------------

    def _rate_adaptation_tick(self) -> None:
        """Loss-driven rate stepping, bounded by the SNR hint.

        Mirrors the behavior inferred in Section 4.4: the D5000 adjusts
        its rate "according to SINR measurements and packet loss
        statistics", so under collision-heavy operation the reported
        rate drops even when the geometry is unchanged.
        """
        if self._recent_sent >= 5:
            ratio = self._recent_delivered / self._recent_sent
            idx = self._mcs.index
            if ratio < 0.9 and idx > 1:
                self.set_mcs(idx - 1)
            elif ratio > 0.99:
                ceiling = MAX_OBSERVED_MCS_INDEX
                if self._snr_hint is not None:
                    best = select_mcs(self._snr_hint)
                    ceiling = best.index if best is not None else 1
                if idx < ceiling:
                    self.set_mcs(idx + 1)
        self._recent_sent = 0
        self._recent_delivered = 0
        self.sim.schedule(self._rate_interval, self._rate_adaptation_tick)
