"""Coupling models that connect the MAC simulator to the PHY substrate.

:class:`DeviceCoupling` computes station-to-station path gains from the
actual :class:`~repro.devices.base.RadioDevice` models — their trained
beams, control patterns, and positions — optionally through a
:class:`~repro.phy.raytracing.RayTracer` so that blockage and wall
reflections shape the MAC-level interference, as in the reflection-
interference experiment (Figure 7/23).

Couplings are cached per (tx, rx, control) triple: device geometry is
static within an experiment and ray tracing is the expensive step.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.dbmath import power_sum_db
from repro.devices.base import RadioDevice
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind
from repro.mac.simulator import Station
from repro.phy.channel import LinkBudget
from repro.phy.raytracing import RayTracer


class DeviceCoupling:
    """Path gain between stations backed by full device models.

    Args:
        devices: Station-name -> device map.  Every station that will
            transmit or receive must be present.
        budget: Link-budget parameters (implementation loss etc.).
        tracer: Optional ray tracer.  Without one, free space with the
            devices' patterns is used.  With one, all LOS/reflected
            paths contribute and blockage penetration losses apply.
        isolation_db: Coupling assigned when no propagation path exists
            at all (e.g. fully shielded).
    """

    def __init__(
        self,
        devices: Mapping[str, RadioDevice],
        budget: LinkBudget = LinkBudget(),
        tracer: Optional[RayTracer] = None,
        isolation_db: float = -200.0,
    ):
        self._devices = dict(devices)
        self._budget = budget
        self._tracer = tracer
        self._isolation = isolation_db
        self._cache: Dict[Tuple[str, str, bool], float] = {}

    def invalidate(self, *device_names: str) -> None:
        """Drop cached couplings after moving or retraining devices.

        With device names, only entries involving those devices are
        dropped — unrelated pairs keep their (expensive, ray-traced)
        couplings.  With no arguments everything is cleared, which is
        what scenario-wide changes (an outage flag, a budget swap)
        need.
        """
        if not device_names:
            self._cache.clear()
            return
        names = set(device_names)
        stale = [key for key in self._cache if key[0] in names or key[1] in names]
        for key in stale:
            del self._cache[key]

    @property
    def cached_pair_count(self) -> int:
        """Number of (tx, rx, control) entries currently cached."""
        return len(self._cache)

    def _device_gain(
        self, device: RadioDevice, toward: Vec2, control: bool
    ) -> float:
        kind = FrameKind.BEACON if control else FrameKind.DATA
        return device.tx_gain_dbi(toward, kind)

    def _compute(self, tx_dev: RadioDevice, rx_dev: RadioDevice, control: bool) -> float:
        if self._tracer is None:
            distance = tx_dev.position.distance_to(rx_dev.position)
            if distance <= 0:
                raise ValueError("devices are co-located")
            return (
                self._device_gain(tx_dev, rx_dev.position, control)
                + self._device_gain(rx_dev, tx_dev.position, control)
                - self._budget.propagation_loss_db(distance)
                - self._budget.implementation_loss_db
            )
        paths = self._tracer.trace(tx_dev.position, rx_dev.position)
        if not paths:
            return self._isolation
        contributions = []
        for path in paths:
            departure_point = tx_dev.position + Vec2.unit(path.departure_angle_rad())
            arrival_point = rx_dev.position + Vec2.unit(path.arrival_angle_rad())
            tx_gain = self._device_gain(tx_dev, departure_point, control)
            rx_gain = self._device_gain(rx_dev, arrival_point, control)
            loss = self._budget.propagation_loss_db(path.length_m())
            loss += path.extra_loss_db()
            contributions.append(
                tx_gain + rx_gain - loss - self._budget.implementation_loss_db
            )
        total = power_sum_db(contributions)
        return total if total > self._isolation else self._isolation

    def coupling_db(self, tx: Station, rx: Station, control: bool = False) -> float:
        """CouplingModel interface used by the medium."""
        key = (tx.name, rx.name, control)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        try:
            tx_dev = self._devices[tx.name]
            rx_dev = self._devices[rx.name]
        except KeyError as exc:
            raise KeyError(f"no device model registered for station {exc}") from None
        value = self._compute(tx_dev, rx_dev, control)
        self._cache[key] = value
        return value

    def snr_db(self, tx_name: str, rx_name: str, control: bool = False) -> float:
        """Convenience: SNR of a (tx, rx) pair under this coupling."""
        tx_dev = self._devices[tx_name]
        rx_dev = self._devices[rx_name]
        power = tx_dev.tx_power_for(FrameKind.BEACON if control else FrameKind.DATA)
        coupling = self._compute(tx_dev, rx_dev, control)
        return power + coupling - self._budget.noise_floor_dbm()
