"""Ray tracing and planning in non-rectangular (L-shaped) rooms."""

import math


from repro.geometry.materials import get_material
from repro.geometry.room import Room
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2
from repro.phy.channel import LinkBudget
from repro.phy.raytracing import RayTracer


def l_shaped_room() -> Room:
    """An L-shaped corridor pair:

    ::

        (0,6)----(3,6)
          |        |
          |        |           outer corner at (3,3)
          |        +----(9,3)
          |                |
        (0,0)-----------(9,0)
    """
    brick = get_material("brick")  # opaque at 60 GHz (40 dB through)
    corners = [
        Vec2(0, 0), Vec2(9, 0), Vec2(9, 3), Vec2(3, 3), Vec2(3, 6), Vec2(0, 6),
    ]
    walls = [
        Segment(corners[i], corners[(i + 1) % len(corners)], brick,
                name=f"w{i}")
        for i in range(len(corners))
    ]
    return Room(walls)


class TestLShapedRoom:
    def test_around_the_corner_no_los(self):
        room = l_shaped_room()
        a = Vec2(1.5, 5.0)   # up the vertical arm
        b = Vec2(7.0, 1.5)   # down the horizontal arm
        assert not room.path_is_clear(a, b)

    def test_same_arm_has_los(self):
        room = l_shaped_room()
        assert room.path_is_clear(Vec2(1.0, 1.0), Vec2(8.0, 2.0))

    def test_corner_turn_via_reflection(self):
        """A bounce off the far wall carries energy around the corner —
        the corridor-bend scenario 60 GHz deployments care about."""
        room = l_shaped_room()
        tracer = RayTracer(room, max_order=2)
        a = Vec2(1.5, 4.5)
        b = Vec2(6.5, 1.5)
        paths = tracer.trace(a, b)
        assert paths  # something gets around the corner
        assert all(p.order >= 1 for p in paths)
        # The best path is usable at some MCS.
        best = tracer.strongest_path(a, b, LinkBudget(), 17.0, 17.0)
        assert best is not None
        power = best.received_power_dbm(LinkBudget(), 17.0, 17.0)
        assert power - LinkBudget().noise_floor_dbm() > 0.0

    def test_deep_corner_unreachable_first_order(self):
        room = l_shaped_room()
        a = Vec2(0.5, 5.5)
        b = Vec2(8.5, 0.5)
        first = RayTracer(room, max_order=1).trace(a, b)
        second = RayTracer(room, max_order=2).trace(a, b)
        assert len(second) >= len(first)

    def test_coverage_map_respects_corner(self):
        from repro.core.spatial import coverage_map
        from repro.devices.d5000 import make_d5000_dock

        room = l_shaped_room()
        tracer = RayTracer(room, max_order=0)  # LOS only
        dock = make_d5000_dock(position=Vec2(1.5, 4.5),
                               orientation_rad=-math.pi / 2)
        dock.train_toward(Vec2(1.5, 1.0))
        import numpy as np

        xs, ys, snr = coverage_map(
            dock, LinkBudget(), bounds=(0.5, 0.5, 8.5, 5.5),
            resolution_m=1.0, tracer=tracer,
        )
        # A spot around the corner has no LOS coverage at all.
        j = int(np.searchsorted(ys, 1.5))
        i = int(np.searchsorted(xs, 7.5))
        assert math.isinf(snr[j, i]) and snr[j, i] < 0
        # A spot in the same arm does.
        i_near = int(np.searchsorted(xs, 1.5))
        assert np.isfinite(snr[j, i_near])
