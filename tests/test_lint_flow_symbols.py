"""Symbol table and call graph construction (``repro.lint.flow``).

The interprocedural passes are only as good as call resolution, so the
tricky shapes get direct coverage: decorated functions,
``functools.partial`` references, ``self.method`` dispatch through
base classes, ``__init__.py`` re-exports, and locals with
statically-known constructor types.
"""

import ast

from repro.lint.flow.callgraph import bind_arguments, build_call_graph
from repro.lint.flow.symbols import build_symbol_table

PKG_IMPL = """\
def helper(x):
    return x


class Thing:
    def __init__(self, size=1):
        self.size = size

    def run(self):
        return self.size
"""

PKG_INIT = """\
from pkg.impl import Thing, helper
"""

APP = """\
from pkg import Thing, helper


def use():
    return helper(1)


def make():
    t = Thing(size=3)
    return t.run()
"""


def _graph(files):
    table = build_symbol_table(files)
    return table, build_call_graph(table)


class TestSymbolTable:
    def test_functions_and_methods_indexed(self):
        table = build_symbol_table([("src/pkg/impl.py", PKG_IMPL)])
        assert "pkg.impl.helper" in table.functions
        assert "pkg.impl.Thing.run" in table.functions
        run = table.functions["pkg.impl.Thing.run"]
        assert run.is_method and run.class_name == "Thing"
        assert [p.name for p in run.call_params] == []

    def test_reexport_alias_resolves_to_defining_module(self):
        table = build_symbol_table(
            [("src/pkg/impl.py", PKG_IMPL), ("src/pkg/__init__.py", PKG_INIT)]
        )
        assert table.resolve_alias("pkg.helper") == "pkg.impl.helper"
        fn = table.function("pkg.helper")
        assert fn is not None and fn.qualname == "pkg.impl.helper"

    def test_class_name_resolves_to_init(self):
        table = build_symbol_table([("src/pkg/impl.py", PKG_IMPL)])
        fn = table.function("pkg.impl.Thing")
        assert fn is not None and fn.name == "__init__"

    def test_decorated_function_still_indexed(self):
        source = (
            "import functools\n\n\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def cached(x):\n"
            "    return x\n"
        )
        table = build_symbol_table([("src/pkg/deco.py", source)])
        fn = table.functions["pkg.deco.cached"]
        assert "lru_cache" in fn.decorators

    def test_unit_annotation_on_def_line(self):
        source = "def loss(d):  # replint: unit=dB\n    return d\n"
        table = build_symbol_table([("src/pkg/m.py", source)])
        assert table.functions["pkg.m.loss"].unit_annotation == "dB"

    def test_syntax_error_file_skipped(self):
        table = build_symbol_table(
            [("src/pkg/bad.py", "def broken(:\n"), ("src/pkg/impl.py", PKG_IMPL)]
        )
        assert "pkg.bad" not in table.modules
        assert "pkg.impl" in table.modules


class TestCallGraph:
    def test_reexported_call_resolves_across_modules(self):
        _, graph = _graph(
            [
                ("src/pkg/impl.py", PKG_IMPL),
                ("src/pkg/__init__.py", PKG_INIT),
                ("src/app.py", APP),
            ]
        )
        callees = [s.callee.qualname for s in graph.calls_from("app.use")]
        assert callees == ["pkg.impl.helper"]

    def test_local_constructor_type_binds_method_calls(self):
        _, graph = _graph(
            [
                ("src/pkg/impl.py", PKG_IMPL),
                ("src/pkg/__init__.py", PKG_INIT),
                ("src/app.py", APP),
            ]
        )
        callees = {s.callee.qualname for s in graph.calls_from("app.make")}
        assert callees == {"pkg.impl.Thing.__init__", "pkg.impl.Thing.run"}

    def test_self_method_resolves_through_base_class(self):
        source = (
            "class Base:\n"
            "    def ping(self):\n"
            "        return 1\n\n\n"
            "class Child(Base):\n"
            "    def run(self):\n"
            "        return self.ping()\n"
        )
        _, graph = _graph([("src/pkg/hier.py", source)])
        callees = [s.callee.qualname for s in graph.calls_from("pkg.hier.Child.run")]
        assert callees == ["pkg.hier.Base.ping"]
        assert graph.calls_from("pkg.hier.Child.run")[0].bound

    def test_functools_partial_produces_partial_edge(self):
        source = (
            "import functools\n\n\n"
            "def f(a, b):\n"
            "    return a + b\n\n\n"
            "def g():\n"
            "    return functools.partial(f, 1)\n"
        )
        _, graph = _graph([("src/pkg/part.py", source)])
        sites = graph.calls_from("pkg.part.g")
        assert len(sites) == 1
        assert sites[0].kind == "partial"
        assert sites[0].callee.qualname == "pkg.part.f"

    def test_decorated_function_call_resolves(self):
        source = (
            "import functools\n\n\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def cached(x):\n"
            "    return x\n\n\n"
            "def use():\n"
            "    return cached(2)\n"
        )
        _, graph = _graph([("src/pkg/deco.py", source)])
        callees = [s.callee.qualname for s in graph.calls_from("pkg.deco.use")]
        assert callees == ["pkg.deco.cached"]

    def test_module_level_calls_tracked(self):
        source = "def setup():\n    return 1\n\n\nVALUE = setup()\n"
        _, graph = _graph([("src/pkg/top.py", source)])
        callees = [s.callee.qualname for s in graph.calls_from("pkg.top:<module>")]
        assert callees == ["pkg.top.setup"]


class TestBindArguments:
    def _site(self, source, caller):
        _, graph = _graph([("src/pkg/m.py", source)])
        return graph.calls_from(f"pkg.m.{caller}")[0]

    def test_positional_and_keyword_binding(self):
        site = self._site(
            "def f(a, b, c=0):\n"
            "    return a\n\n\n"
            "def g():\n"
            "    return f(1, c=3, b=2)\n",
            "g",
        )
        bound, exhaustive = bind_arguments(site)
        assert exhaustive
        assert set(bound) == {"a", "b", "c"}
        assert isinstance(bound["a"], ast.Constant) and bound["a"].value == 1

    def test_star_args_mark_binding_inexhaustive(self):
        site = self._site(
            "def f(a, b):\n"
            "    return a\n\n\n"
            "def g(args):\n"
            "    return f(*args)\n",
            "g",
        )
        _, exhaustive = bind_arguments(site)
        assert not exhaustive

    def test_bound_method_skips_self(self):
        source = (
            "class C:\n"
            "    def m(self, x):\n"
            "        return x\n\n\n"
            "def g():\n"
            "    c = C()\n"
            "    return c.m(5)\n"
        )
        _, graph = _graph([("src/pkg/m.py", source)])
        site = next(
            s for s in graph.calls_from("pkg.m.g") if s.callee.name == "m"
        )
        bound, exhaustive = bind_arguments(site)
        assert exhaustive
        assert set(bound) == {"x"}
