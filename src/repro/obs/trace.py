"""Span recording: timed regions that become Chrome trace events.

A span is a ``with``-block timed via :mod:`repro.obs.clock` and
buffered as a dict already shaped like a Chrome trace-event complete
event (``ph="X"``, microsecond ``ts``/``dur``) minus the ``pid``,
which the campaign runner assigns at merge time (one pid per shard).

The buffer is bounded: past :data:`MAX_EVENTS` the recorder counts
drops instead of growing without limit, so tracing a pathological run
degrades into a truncated (but loadable) timeline rather than an OOM.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import clock

#: Per-cell span cap; beyond this, events are dropped (and counted).
MAX_EVENTS = 200_000


class TraceBuffer:
    """Bounded in-process buffer of trace-event dicts."""

    def __init__(self, max_events: int = MAX_EVENTS):
        self.max_events = max_events
        self.events: List[Dict] = []
        self.dropped = 0

    def record(self, event: Dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def drain(self) -> List[Dict]:
        events, self.events = self.events, []
        dropped, self.dropped = self.dropped, 0
        if dropped:
            events.append(
                {
                    "name": "obs.dropped_spans",
                    "cat": "obs",
                    "ph": "C",
                    "ts": events[-1]["ts"] if events else 0.0,
                    "tid": 0,
                    "args": {"dropped": dropped},
                }
            )
        return events

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0


def complete_event(
    name: str,
    start_ns: int,
    end_ns: int,
    args: Optional[Dict] = None,
    tid: int = 0,
) -> Dict:
    """Build a Chrome ``ph="X"`` complete event from clock-ns stamps."""
    event = {
        "name": name,
        "cat": name.split(".", 1)[0],
        "ph": "X",
        "ts": start_ns / 1e3,
        "dur": max(end_ns - start_ns, 0) / 1e3,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


class Span:
    """A live span; created by :func:`repro.obs.span` when tracing."""

    __slots__ = ("name", "args", "buffer", "_start_ns")

    def __init__(self, name: str, buffer: TraceBuffer, args: Optional[Dict] = None):
        self.name = name
        self.args = args
        self.buffer = buffer
        self._start_ns = 0

    def __enter__(self) -> "Span":
        self._start_ns = clock.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.buffer.record(
            complete_event(
                self.name, self._start_ns, clock.perf_counter_ns(), self.args
            )
        )
        return False


class NoopSpan:
    """The disabled-path span: a shared, do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()

__all__ = [
    "MAX_EVENTS",
    "NOOP_SPAN",
    "NoopSpan",
    "Span",
    "TraceBuffer",
    "complete_event",
]
