"""Side-lobe interference between WiGig and WiHD (Figures 6/21/22).

Setup (Figure 6): two D5000 docking-station links operate in parallel
(they share the channel via CSMA/CA and do not collide with each
other).  A WiHD pair — which performs *no* carrier sensing — runs on
the same channel; its horizontal offset from the first docking link is
swept from 0 to 3 m.  Interference appears whenever the WiHD signal
enters the D5000 link through its (side-)lobes:

* the channel seen near the D5000 link gets busier (link utilization
  rises from the interference-free 38-42% toward 100% at close range);
* collisions cause missing ACKs and retransmissions (Figure 21a);
* the D5000's carrier sensing defers to strong WiHD frames, creating
  enlarged gaps occupied by WiHD traffic (Figure 21b);
* the reported link rate drops when utilization spikes (the inverse
  correlation of Figure 22), and everything is worse by ~10% when the
  dock is misaligned by 70 degrees, because boundary beams have
  stronger side lobes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interference import InterferencePoint
from repro.core.utilization import medium_usage_from_records
from repro.devices.air3c import make_air3c_receiver, make_air3c_transmitter
from repro.devices.base import RadioDevice
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.devices.vubiq import VubiqReceiver
from repro.experiments.common import derive_seed, misalignment_70deg
from repro.geometry.vec import Vec2
from repro.mac.coupling import DeviceCoupling
from repro.mac.frames import FrameKind, FrameRecord
from repro.mac.simulator import Medium, Simulator
from repro.mac.tcp import IperfFlow, TcpParameters
from repro.mac.wigig import WiGigLink
from repro.mac.wihd import WiHDLink
from repro.phy.antenna import open_waveguide
from repro.phy.channel import LinkBudget
from repro.phy.mcs import mcs_by_index
from repro.phy.signal import Trace

#: Geometry of Figure 6 (meters).  Docks on the y=0 line facing +y,
#: laptops 6 m up; the WiHD transmitter sits past the laptops firing
#: down toward its receiver 8 m away, so its frames arrive at the
#: docks near their receive boresight.
DOCK_A = Vec2(0.0, 0.0)
LAPTOP_A = Vec2(0.0, 6.0)
DOCK_B = Vec2(4.0, 0.0)
LAPTOP_B = Vec2(4.0, 6.0)
WIHD_TX_Y = 7.0
WIHD_RX_Y = -1.0

#: TCP window of each docking link's file transfer, calibrated for the
#: paper's interference-free utilization of roughly 38-42%.
WIGIG_WINDOW_BYTES = 10 * 1024

#: WiHD video rate calibrated for the paper's standalone WiHD link
#: utilization of about 46%.
WIHD_VIDEO_RATE_BPS = 1.7e9

#: Detection threshold of the channel-trace utilization estimate at
#: the measurement position near the first docking link.
UTILIZATION_THRESHOLD_DBM = -75.0

#: Size of the transferred file in the paper's setup (1 GB).
FILE_SIZE_BYTES = 1.0e9


@dataclass
class InterferenceScenario:
    """A built Figure 6 scenario, ready to run."""

    sim: Simulator
    medium: Medium
    coupling: DeviceCoupling
    devices: Dict[str, RadioDevice]
    link_a: WiGigLink
    link_b: WiGigLink
    flow_a: IperfFlow
    flow_b: IperfFlow
    wihd: Optional[WiHDLink]
    rotated: bool

    def run(self, duration_s: float) -> None:
        self.sim.run_until(self.sim.now + duration_s)


def build_interference_scenario(
    wihd_offset_m: float = 0.0,
    rotated: bool = False,
    with_wihd: bool = True,
    seed: int = 10,
    window_bytes: float = WIGIG_WINDOW_BYTES,
    video_rate_bps: float = WIHD_VIDEO_RATE_BPS,
) -> InterferenceScenario:
    """Assemble the two docking links plus the WiHD pair.

    ``rotated`` misaligns dock A by 70 degrees, forcing it onto a
    boundary beam with strong side lobes, as in the paper's second
    setup.
    """
    dock_a_orientation = math.pi / 2.0
    if rotated:
        dock_a_orientation += misalignment_70deg()
    dock_a = make_d5000_dock(name="dock-a", position=DOCK_A, orientation_rad=dock_a_orientation)
    laptop_a = make_e7440_laptop(name="laptop-a", position=LAPTOP_A, orientation_rad=-math.pi / 2.0)
    dock_b = make_d5000_dock(name="dock-b", position=DOCK_B, orientation_rad=math.pi / 2.0, unit_seed=12)
    laptop_b = make_e7440_laptop(
        name="laptop-b", position=LAPTOP_B, orientation_rad=-math.pi / 2.0, unit_seed=22
    )
    for dock, laptop in ((dock_a, laptop_a), (dock_b, laptop_b)):
        dock.train_toward(laptop.position)
        laptop.train_toward(dock.position)

    devices: Dict[str, RadioDevice] = {
        d.name: d for d in (dock_a, laptop_a, dock_b, laptop_b)
    }
    wihd_tx = wihd_rx = None
    if with_wihd:
        wihd_tx = make_air3c_transmitter(
            name="wihd-tx",
            position=Vec2(wihd_offset_m, WIHD_TX_Y),
            orientation_rad=-math.pi / 2.0,
        )
        wihd_rx = make_air3c_receiver(
            name="wihd-rx",
            position=Vec2(wihd_offset_m, WIHD_RX_Y),
            orientation_rad=math.pi / 2.0,
        )
        wihd_tx.train_toward(wihd_rx.position)
        wihd_rx.train_toward(wihd_tx.position)
        devices[wihd_tx.name] = wihd_tx
        devices[wihd_rx.name] = wihd_rx

    budget = LinkBudget()
    sim = Simulator(seed=seed)
    coupling = DeviceCoupling(devices, budget=budget)
    medium = Medium(sim, coupling, budget=budget)
    stations = {name: dev.make_station() for name, dev in devices.items()}
    for st in stations.values():
        medium.register(st)

    links = []
    flows = []
    for dock, laptop in ((dock_a, laptop_a), (dock_b, laptop_b)):
        snr = coupling.snr_db(laptop.name, dock.name)
        link = WiGigLink(
            sim,
            medium,
            transmitter=stations[laptop.name],
            receiver=stations[dock.name],
            snr_hint_db=snr,
        )
        flow = IperfFlow(sim, link, TcpParameters(window_bytes=window_bytes))
        links.append(link)
        flows.append(flow)

    wihd_link = None
    if with_wihd:
        wihd_link = WiHDLink(
            sim,
            medium,
            transmitter=stations["wihd-tx"],
            receiver=stations["wihd-rx"],
            video_rate_bps=video_rate_bps,
        )
    return InterferenceScenario(
        sim=sim,
        medium=medium,
        coupling=coupling,
        devices=devices,
        link_a=links[0],
        link_b=links[1],
        flow_a=flows[0],
        flow_b=flows[1],
        wihd=wihd_link,
        rotated=rotated,
    )


def _measurement_receiver(budget: LinkBudget = LinkBudget()) -> VubiqReceiver:
    """The channel-trace receiver placed next to docking link A."""
    return VubiqReceiver(
        position=DOCK_A + Vec2(0.35, 1.8),
        boresight_rad=math.pi / 2.0,
        antenna=open_waveguide(),
        budget=budget,
    )


def channel_utilization(
    scenario: InterferenceScenario,
    window_start_s: float,
    window_end_s: float,
    threshold_dbm: float = UTILIZATION_THRESHOLD_DBM,
    seed: int = 17,
) -> float:
    """Trace-style utilization of the channel near docking link A.

    Only frames whose received power at the measurement position
    clears the detection threshold count — distant WiHD frames fall
    below it, which is what makes utilization distance-dependent.
    The default ``seed`` reproduces the published figures.
    """
    vubiq = _measurement_receiver()
    rng = np.random.default_rng(seed)
    power_cache: Dict[Tuple[str, FrameKind], float] = {}
    busy: List[FrameRecord] = []
    for rec in scenario.medium.history:
        if rec.end_s <= window_start_s or rec.start_s >= window_end_s:
            continue
        device = scenario.devices.get(rec.source)
        if device is None:
            continue
        key = (rec.source, rec.kind)
        power = power_cache.get(key)
        if power is None:
            power = vubiq.received_power_dbm(device, rec.kind)
            power_cache[key] = power
        # Per-frame fading jitter: frames near the detection threshold
        # are caught probabilistically, which smooths the utilization
        # roll-off with distance like the real traces.
        if power + float(rng.normal(0.0, 2.5)) >= threshold_dbm:
            busy.append(rec)
    return medium_usage_from_records(busy, window_start_s, window_end_s, bridge_gap_s=4e-6)


def mean_link_rate_bps(link: WiGigLink, window_start_s: float, window_end_s: float) -> float:
    """Time-weighted average of the link's reported PHY rate."""
    # Reconstruct the MCS as a step function over the window.
    events = [(t, idx) for t, idx in link.mcs_history if t <= window_end_s]
    current = link.mcs.index if not events else events[0][1]
    # Determine the MCS in force at window start.
    idx_at_start = None
    for t, idx in events:
        if t <= window_start_s:
            idx_at_start = idx
    if idx_at_start is None:
        idx_at_start = current if not events else events[0][1]
    steps: List[Tuple[float, int]] = [(window_start_s, idx_at_start)]
    steps.extend((t, idx) for t, idx in events if window_start_s < t <= window_end_s)
    total = 0.0
    for (t0, idx), (t1, _next_idx) in zip(steps, steps[1:] + [(window_end_s, 0)]):
        total += mcs_by_index(idx).phy_rate_bps * (t1 - t0)
    return total / (window_end_s - window_start_s)


def measure_interference_point(
    scenario: InterferenceScenario,
    wihd_offset_m: float,
    duration_s: float = 0.4,
    warmup_s: float = 0.1,
) -> InterferencePoint:
    """Warm a built scenario up, then measure one sweep point."""
    scenario.run(warmup_s)
    scenario.flow_a.reset_counters()
    retx_before = scenario.link_a.stats.retransmissions
    start = scenario.sim.now
    scenario.run(duration_s)
    end = scenario.sim.now
    utilization = channel_utilization(scenario, start, end)
    rate = mean_link_rate_bps(scenario.link_a, start, end)
    goodput = scenario.flow_a.throughput_bps()
    transfer = FILE_SIZE_BYTES * 8.0 / goodput if goodput > 0 else None
    return InterferencePoint(
        distance_m=wihd_offset_m,
        utilization=utilization,
        link_rate_bps=rate,
        rotated=scenario.rotated,
        retransmissions=scenario.link_a.stats.retransmissions - retx_before,
        transfer_time_s=transfer,
    )


def run_interference_point(
    wihd_offset_m: float,
    rotated: bool = False,
    duration_s: float = 0.4,
    warmup_s: float = 0.1,
    with_wihd: bool = True,
    seed: int = 10,
) -> InterferencePoint:
    """Measure one distance point of the Figure 22 sweep."""
    scenario = build_interference_scenario(
        wihd_offset_m=wihd_offset_m, rotated=rotated, with_wihd=with_wihd, seed=seed
    )
    return measure_interference_point(
        scenario, wihd_offset_m, duration_s=duration_s, warmup_s=warmup_s
    )


def interference_cell(
    *,
    wihd_offset_m: float,
    rotated: bool = False,
    duration_s: float = 0.4,
    warmup_s: float = 0.1,
    with_wihd: bool = True,
    seed: int = 10,
    repetition: int = 0,
) -> dict:
    """One campaign cell of the Figure 22 sweep (full DES run).

    Reports ``events_simulated`` so the run manifest can derive the
    simulator's events-per-second throughput.
    """
    scenario = build_interference_scenario(
        wihd_offset_m=wihd_offset_m,
        rotated=rotated,
        with_wihd=with_wihd,
        seed=seed if repetition == 0 else derive_seed(seed, "rep", repetition),
    )
    point = measure_interference_point(
        scenario, wihd_offset_m, duration_s=duration_s, warmup_s=warmup_s
    )
    return {
        "distance_m": point.distance_m,
        "utilization": point.utilization,
        "link_rate_bps": point.link_rate_bps,
        "rotated": point.rotated,
        "retransmissions": point.retransmissions,
        "transfer_time_s": point.transfer_time_s,
        "events_simulated": scenario.sim.events_processed,
    }


def interference_sweep(
    distances_m: Sequence[float] = (0.0, 0.5, 1.0, 1.6, 2.0, 2.5, 3.0),
    rotated: bool = False,
    duration_s: float = 0.4,
    seed: int = 10,
) -> List[InterferencePoint]:
    """The full Figure 22 sweep for one alignment setting."""
    return [
        run_interference_point(
            d, rotated=rotated, duration_s=duration_s, seed=seed + i
        )
        for i, d in enumerate(distances_m)
    ]


def interference_free_baseline(
    rotated: bool = False,
    duration_s: float = 0.4,
    seed: int = 99,
) -> InterferencePoint:
    """Utilization/rate without the WiHD system (paper: 38%/42%)."""
    return run_interference_point(
        0.0, rotated=rotated, duration_s=duration_s, with_wihd=False, seed=seed
    )


def capture_interference_trace(
    wihd_offset_m: float = 0.5,
    duration_s: float = 1.0e-3,
    run_for_s: float = 0.12,
    seed: int = 11,
) -> Tuple[Trace, InterferenceScenario]:
    """A 1 ms channel capture under heavy interference (Figure 21)."""
    scenario = build_interference_scenario(wihd_offset_m=wihd_offset_m, seed=seed)
    scenario.run(run_for_s)
    vubiq = _measurement_receiver()
    vubiq.extra_gain_db = 30.0  # protocol-capture front-end gain
    start = scenario.sim.now - duration_s
    records = [
        r for r in scenario.medium.history if r.end_s > start
    ]
    trace = vubiq.capture(
        records,
        scenario.devices,
        duration_s=duration_s,
        start_s=start,
        rng=np.random.default_rng(seed),
    )
    return trace, scenario
