"""Unit tests for rooms, obstacles, and blockage."""

import pytest

from repro.geometry.materials import MATERIALS, Material, get_material
from repro.geometry.room import Obstacle, Room, conference_room, measurement_locations
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2


class TestMaterials:
    def test_registry_has_paper_materials(self):
        for name in ("brick", "glass", "wood", "metal", "absorber"):
            assert name in MATERIALS

    def test_metal_reflects_best(self):
        losses = {name: m.reflection_loss_db for name, m in MATERIALS.items()}
        assert losses["metal"] < losses["glass"] < losses["brick"] < losses["wood"]

    def test_unknown_material_raises(self):
        with pytest.raises(KeyError):
            get_material("unobtainium")

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", reflection_loss_db=-1.0, penetration_loss_db=0.0)


class TestRoomConstruction:
    def test_rectangular_room_has_four_walls(self):
        room = Room.rectangular(4.0, 3.0)
        assert len(room.walls) == 4

    def test_rectangular_material_assignment(self):
        room = Room.rectangular(4.0, 3.0, materials=["brick", "glass", "wood", "brick"])
        assert room.walls[0].material.name == "brick"
        assert room.walls[1].material.name == "glass"

    def test_rectangular_validates_dimensions(self):
        with pytest.raises(ValueError):
            Room.rectangular(0.0, 3.0)

    def test_rectangular_validates_material_count(self):
        with pytest.raises(ValueError):
            Room.rectangular(4.0, 3.0, materials=["brick"])

    def test_empty_room_raises(self):
        with pytest.raises(ValueError):
            Room([])

    def test_obstacle_counts_as_surface(self):
        room = Room.rectangular(4.0, 3.0)
        room.add_obstacle(Obstacle.plate(Vec2(1, 1), Vec2(2, 1), material="metal"))
        assert len(room.surfaces) == 5


class TestVisibility:
    def test_clear_path_in_empty_room(self):
        room = Room.rectangular(10.0, 10.0)
        assert room.path_is_clear(Vec2(1, 1), Vec2(9, 9))

    def test_obstacle_blocks(self):
        room = Room.rectangular(10.0, 10.0)
        room.add_obstacle(Obstacle.plate(Vec2(5, 0.5), Vec2(5, 9.5), material="metal"))
        assert not room.path_is_clear(Vec2(1, 5), Vec2(9, 5))

    def test_ignored_segment_does_not_block(self):
        room = Room.rectangular(10.0, 10.0)
        plate = Obstacle.plate(Vec2(5, 0.5), Vec2(5, 9.5), material="metal")
        room.add_obstacle(plate)
        assert room.path_is_clear(Vec2(1, 5), Vec2(9, 5), ignore=[plate.segment])

    def test_blockage_loss_sums_crossed_walls(self):
        room = Room.rectangular(10.0, 10.0, materials=["wood"] * 4)
        room.add_obstacle(Obstacle.plate(Vec2(5, 0.5), Vec2(5, 9.5), material="wood"))
        loss = room.blockage_loss_db(Vec2(1, 5), Vec2(9, 5))
        assert loss == pytest.approx(get_material("wood").penetration_loss_db)

    def test_blockage_loss_zero_when_clear(self):
        room = Room.rectangular(10.0, 10.0)
        assert room.blockage_loss_db(Vec2(1, 1), Vec2(2, 2)) == 0.0


class TestFirstHit:
    def test_hit_distance(self):
        room = Room.rectangular(10.0, 4.0)
        hit = room.first_hit(Vec2(5, 2), Vec2(1, 0))
        assert hit is not None
        distance, wall = hit
        assert distance == pytest.approx(5.0)
        assert wall.name == "right"

    def test_ray_escaping_open_geometry(self):
        # A single free-standing plate: rays away from it escape.
        room = Room([Segment(Vec2(0, 0), Vec2(1, 0), get_material("metal"))])
        assert room.first_hit(Vec2(0.5, 1.0), Vec2(0, 1)) is None


class TestConferenceRoom:
    def test_dimensions(self):
        room = conference_room()
        xs = [p.x for w in room.walls for p in (w.a, w.b)]
        ys = [p.y for w in room.walls for p in (w.a, w.b)]
        assert max(xs) == pytest.approx(9.0)
        assert max(ys) == pytest.approx(3.25)

    def test_wall_materials_match_figure4(self):
        room = conference_room()
        names = {w.name: w.material.name for w in room.walls}
        assert names["bottom-brick"] == "brick"
        assert names["right-glass"] == "glass"
        assert names["top-wood"] == "wood"

    def test_six_measurement_locations_inside(self):
        points = measurement_locations()
        assert len(points) == 6
        for p in points:
            assert 0 < p.x < 9.0
            assert 0 < p.y < 3.25
