"""Shared helpers for the per-figure benchmarks (reporting + caches)."""

from __future__ import annotations

import functools
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class FigureReport:
    """Collects and persists the reproduced rows of one figure."""

    def __init__(self, figure_id: str):
        self.figure_id = figure_id
        self.lines = []

    def add(self, line: str = "") -> None:
        self.lines.append(line)

    def write(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.figure_id}.txt"
        path.write_text("\n".join(self.lines) + "\n")


@functools.lru_cache(maxsize=1)
def cached_aggregation_sweep():
    """The Figures 9-11 TCP sweep, computed once per session."""
    from repro.experiments.frame_level import aggregation_sweep

    return aggregation_sweep(duration_s=0.15, warmup_s=0.05)


@functools.lru_cache(maxsize=1)
def cached_interference_sweeps():
    """The Figure 22 aligned + rotated sweeps, computed once."""
    from repro.experiments.interference import (
        interference_free_baseline,
        interference_sweep,
    )

    distances = (0.0, 0.5, 1.0, 1.6, 2.0, 2.5, 3.0)
    aligned = interference_sweep(distances, rotated=False, duration_s=0.3)
    rotated = interference_sweep(distances, rotated=True, duration_s=0.3)
    base_aligned = interference_free_baseline(duration_s=0.3)
    base_rotated = interference_free_baseline(rotated=True, duration_s=0.3)
    return aligned, rotated, base_aligned, base_rotated


@functools.lru_cache(maxsize=1)
def cached_room_profiles():
    """The Figures 18/19 conference-room sweeps, computed once."""
    from repro.experiments.reflections import compare_systems

    return compare_systems(steps=72)
