"""Figure 15: the DVDO Air-3c WiHD frame flow.

Paper: variable-length data frames follow the receiver's periodic
beacons; there is no data/ACK exchange; when no data is queued, only
beacons remain (the active -> idle transition in the figure).
"""

import numpy as np

from repro.core.frames import FrameDetector
from repro.experiments.frame_level import (
    CAPTURE_DETECTION_THRESHOLD_V,
    capture_wihd_with_vubiq,
    run_wihd_stream,
)
from repro.mac.frames import FrameKind


def run_flow():
    setup = run_wihd_stream(duration_s=0.02, stop_after_s=0.012, video_rate_bps=1.5e9)
    trace = capture_wihd_with_vubiq(setup, 0.008, 8e-3)
    return setup, trace


def test_fig15_wihd_frame_flow(benchmark, report):
    setup, trace = benchmark.pedantic(run_flow, rounds=1, iterations=1)
    history = setup.medium.history
    active = [r for r in history if 0.008 <= r.start_s < 0.012]
    idle = [r for r in history if 0.013 <= r.start_s < 0.016]
    active_kinds = {k: sum(1 for r in active if r.kind == k) for k in FrameKind}
    idle_kinds = {k: sum(1 for r in idle if r.kind == k) for k in FrameKind}
    data_durations = [r.duration_s for r in active if r.kind == FrameKind.DATA]
    report.add("Figure 15 - WiHD frame flow (active -> idle transition)")
    report.add(
        f"active period: {active_kinds[FrameKind.DATA]} data, "
        f"{active_kinds[FrameKind.BEACON]} beacons, "
        f"{active_kinds[FrameKind.ACK]} acks"
    )
    report.add(
        f"idle period:   {idle_kinds[FrameKind.DATA]} data, "
        f"{idle_kinds[FrameKind.BEACON]} beacons"
    )
    if data_durations:
        report.add(
            f"data frame durations: {min(data_durations) * 1e6:.0f}-"
            f"{max(data_durations) * 1e6:.0f} us (variable length)"
        )

    # No ACK exchange, variable-length data after beacons, idle period
    # has beacons only.
    assert active_kinds[FrameKind.ACK] == 0
    assert active_kinds[FrameKind.DATA] >= 5
    assert idle_kinds[FrameKind.DATA] == 0
    assert idle_kinds[FrameKind.BEACON] >= 10
    assert len(set(np.round(np.array(data_durations) * 1e6))) >= 1
    # The capture sees the flow too.
    frames = FrameDetector(threshold_v=CAPTURE_DETECTION_THRESHOLD_V).detect(trace)
    assert len(frames) >= 10
