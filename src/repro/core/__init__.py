"""The paper's primary contribution: the measurement analysis pipeline.

Everything in this package mirrors the offline Matlab processing of
Sections 3-4, rewritten as a reusable library:

* :mod:`repro.core.frames` — threshold-based frame extraction from
  amplitude traces, amplitude-based source separation, burst grouping,
  and periodicity estimation (Table 1, Figures 8/15).
* :mod:`repro.core.aggregation` — frame-length CDFs, long-frame
  fractions, and aggregation-gain computation (Figures 9/10).
* :mod:`repro.core.utilization` — medium-usage / link-utilization
  estimation from traces and from ground-truth timelines (Figures
  11/22).
* :mod:`repro.core.beams` — beam-pattern measurement on the outdoor
  semicircle, with control-frame filtering (Figures 16/17).
* :mod:`repro.core.discovery` — discovery-frame sub-element splitting
  (Figure 3) and per-sub-element pattern assembly (Figure 16).
* :mod:`repro.core.angular` — angular profiles from rotating-horn
  sweeps and reflection-lobe classification (Figures 18-20).
* :mod:`repro.core.interference` — interference impact metrics
  (Figures 21-23).
"""

from repro.core.frames import (
    DetectedFrame,
    FrameDetector,
    estimate_periodicity_s,
    group_bursts,
    split_sources_by_amplitude,
)
from repro.core.aggregation import (
    AggregationReport,
    aggregation_gain,
    frame_length_cdf,
    long_frame_fraction,
)
from repro.core.utilization import medium_usage_from_records, medium_usage_from_trace
from repro.core.beams import BeamPatternCampaign, MeasuredPattern
from repro.core.discovery import split_discovery_subelements, subelement_amplitudes
from repro.core.angular import AngularProfile, Lobe, classify_lobes, find_lobes
from repro.core.interference import (
    InterferencePoint,
    file_transfer_time_s,
    utilization_increase,
)
from repro.core.spatial import (
    Conflict,
    Link,
    conflict_graph,
    coverage_map,
    greedy_schedule,
    link_margins,
    recommend_mac_behavior,
)

__all__ = [
    "AggregationReport",
    "Conflict",
    "Link",
    "conflict_graph",
    "coverage_map",
    "greedy_schedule",
    "link_margins",
    "recommend_mac_behavior",
    "AngularProfile",
    "BeamPatternCampaign",
    "DetectedFrame",
    "FrameDetector",
    "InterferencePoint",
    "Lobe",
    "MeasuredPattern",
    "aggregation_gain",
    "classify_lobes",
    "estimate_periodicity_s",
    "file_transfer_time_s",
    "find_lobes",
    "frame_length_cdf",
    "group_bursts",
    "long_frame_fraction",
    "medium_usage_from_records",
    "medium_usage_from_trace",
    "split_discovery_subelements",
    "split_sources_by_amplitude",
    "subelement_amplitudes",
    "utilization_increase",
]
