"""repro.obs — zero-overhead-when-disabled observability.

The paper's methodology is a flight recorder for invisible radio
behavior; this package is the same instrument pointed at our own
internals.  It provides:

* :func:`span` — timed regions (``with obs.span("phy.raytracing.trace")``)
  recorded as Chrome trace events, loadable in Perfetto;
* :func:`add` / :func:`set_gauge` / :func:`observe` — a metrics
  registry (:mod:`repro.obs.metrics`) whose per-cell snapshots merge
  deterministically across campaign workers into the v2 run manifest;
* :mod:`repro.obs.clock` — the single sanctioned clock shim (the only
  module allowed to read wall/monotonic time; everything else is
  policed by lint rules RL002/RL022);
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — the Perfetto
  exporter and the ``repro obs report`` summary.

**Disabled is the default and costs (almost) nothing.**  Hot paths
guard metric updates with a plain attribute check::

    if obs.STATE.metrics:
        obs.add("mac.wigig.retransmissions")

and ``obs.span(...)`` returns a shared no-op context manager when
tracing is off.  ``benchmarks/test_perf_obs.py`` holds the disabled
path under 2% of the core scenario's runtime.

Enablement is process-global (:func:`enable` / :func:`disable`) and
propagates to campaign pool workers through the ``REPRO_OBS``
environment variable, which this module reads at import time.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import clock  # noqa: F401  (re-exported: the sanctioned shim)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import ProfileAccumulator
from repro.obs.trace import NOOP_SPAN, Span, TraceBuffer

#: Environment variable that switches observability on in spawned /
#: forked campaign workers.  Comma-joined tokens from {``"metrics"``,
#: ``"trace"``, ``"profile"``}; the legacy single values ``"metrics"``,
#: ``"trace"`` and ``"1"`` keep their original meaning.
OBS_ENV = "REPRO_OBS"


class ObsState:
    """Process-global enable flags, designed for cheap reads.

    ``STATE.metrics`` / ``STATE.tracing`` / ``STATE.profiling`` are
    plain attributes so the disabled-path cost at an instrumented site
    is one attribute load and a falsy check.
    """

    __slots__ = ("metrics", "tracing", "profiling")

    def __init__(self) -> None:
        self.metrics = False
        self.tracing = False
        self.profiling = False

    @property
    def enabled(self) -> bool:
        return self.metrics or self.tracing or self.profiling


STATE = ObsState()

_REGISTRY = MetricsRegistry()
_BUFFER = TraceBuffer()
_PROFILE = ProfileAccumulator()


def enable(metrics: bool = True, trace: bool = False, profile: bool = False) -> None:
    """Switch observability on for this process."""
    STATE.metrics = bool(metrics)
    STATE.tracing = bool(trace)
    STATE.profiling = bool(profile)


def disable() -> None:
    """Switch all observability off (the default state)."""
    STATE.metrics = False
    STATE.tracing = False
    STATE.profiling = False


def reset() -> None:
    """Clear all recorded metrics, buffered spans, and profile data."""
    _REGISTRY.reset()
    _BUFFER.reset()
    _PROFILE.reset()


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> None:
    """Apply the ``REPRO_OBS`` environment setting, if any.

    Called at import time so campaign workers (forked or spawned)
    inherit the parent's observability mode.  The value is a
    comma-joined token set, e.g. ``"metrics,trace,profile"``; metrics
    are implied whenever anything is enabled.
    """
    env = os.environ if environ is None else environ
    mode = env.get(OBS_ENV, "").strip().lower()
    if not mode:
        return
    tokens = {token.strip() for token in mode.split(",") if token.strip()}
    trace = bool(tokens & {"trace", "1"})
    profile = "profile" in tokens
    metrics = bool(tokens & {"metrics"}) or trace or profile
    if metrics:
        enable(metrics=True, trace=trace, profile=profile)


# -- recording API -------------------------------------------------------------


def span(name: str, **attrs):
    """A timed region; a shared no-op when tracing is disabled.

    Span names follow ``layer.component.op`` (see CONTRIBUTING), e.g.
    ``"mac.beam_training.sls"``.  ``attrs`` become the Chrome event's
    ``args`` and must be JSON-serializable.
    """
    if not STATE.tracing:
        return NOOP_SPAN
    return Span(name, _BUFFER, attrs or None)


def add(name: str, value: int = 1) -> None:
    """Increment a counter (no-op when metrics are disabled)."""
    if STATE.metrics:
        _REGISTRY.add(name, value)


def set_gauge(name: str, value: float) -> None:
    """Record a gauge (merged across workers with ``max``)."""
    if STATE.metrics:
        _REGISTRY.set_gauge(name, value)


def observe(name: str, value: float, buckets: Sequence[float]) -> None:
    """Record a histogram observation into fixed buckets."""
    if STATE.metrics:
        _REGISTRY.observe(name, value, buckets)


def record_handler(name: str, elapsed_ns: int) -> None:
    """Attribute one DES event's wall time to its handler qualname.

    Called by the simulator hot loop only when ``STATE.profiling`` is
    on; the guard lives at the call site so the disabled path pays one
    attribute read before the loop, not per event.
    """
    _PROFILE.record(name, elapsed_ns)


def metrics_snapshot() -> Optional[Dict]:
    """Deterministic snapshot of this process's registry (or ``None``)."""
    return _REGISTRY.snapshot()


def profile_snapshot() -> Optional[Dict]:
    """Deterministic snapshot of the handler profile (or ``None``)."""
    return _PROFILE.snapshot()


def registry() -> MetricsRegistry:
    """The process-global registry (benchmarks read ``.ops`` off it)."""
    return _REGISTRY


# -- campaign-cell scoping -----------------------------------------------------


def begin_cell() -> None:
    """Reset per-cell state before executing a campaign cell."""
    _REGISTRY.reset()
    _BUFFER.reset()
    _PROFILE.reset()


def collect_cell() -> Tuple[Optional[Dict], List[Dict], Optional[Dict]]:
    """Collect (metrics snapshot, span events, profile snapshot)
    recorded since :func:`begin_cell`; drains the buffers."""
    return _REGISTRY.snapshot(), _BUFFER.drain(), _PROFILE.snapshot()


configure_from_env()

__all__ = [
    "OBS_ENV",
    "STATE",
    "MetricsRegistry",
    "ProfileAccumulator",
    "add",
    "begin_cell",
    "clock",
    "collect_cell",
    "configure_from_env",
    "disable",
    "enable",
    "metrics_snapshot",
    "observe",
    "profile_snapshot",
    "record_handler",
    "registry",
    "reset",
    "set_gauge",
    "span",
]
