"""Unit tests for repro.obs: state, metrics, spans, export, report."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    TRACE_FILENAME,
    build_trace_doc,
    read_trace,
    validate_trace,
    write_trace,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.report import aggregate_spans, render_report
from repro.obs.trace import NOOP_SPAN, TraceBuffer, complete_event


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestState:
    def test_disabled_by_default(self):
        assert not obs.STATE.metrics
        assert not obs.STATE.tracing
        assert not obs.STATE.enabled

    def test_enable_disable(self):
        obs.enable(metrics=True, trace=True)
        assert obs.STATE.enabled and obs.STATE.tracing
        obs.disable()
        assert not obs.STATE.enabled

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("phy.raytracing.trace") is NOOP_SPAN
        with obs.span("mac.simulator.run") as s:
            assert s is NOOP_SPAN

    def test_disabled_add_records_nothing(self):
        obs.add("x.y.z", 5)
        assert obs.metrics_snapshot() is None

    def test_configure_from_env(self):
        obs.configure_from_env({"REPRO_OBS": "metrics"})
        assert obs.STATE.metrics and not obs.STATE.tracing
        obs.disable()
        obs.configure_from_env({"REPRO_OBS": "trace"})
        assert obs.STATE.metrics and obs.STATE.tracing
        obs.disable()
        obs.configure_from_env({})
        assert not obs.STATE.enabled


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.add("a.b.count")
        reg.add("a.b.count", 4)
        reg.set_gauge("a.b.peak", 2.5)
        reg.observe("a.b.size", 3, buckets=(1.0, 4.0, 8.0))
        snap = reg.snapshot()
        assert snap["counters"] == {"a.b.count": 5}
        assert snap["gauges"] == {"a.b.peak": 2.5}
        assert snap["histograms"]["a.b.size"]["counts"] == [0, 1, 0, 0]

    def test_empty_snapshot_is_none(self):
        assert MetricsRegistry().snapshot() is None

    def test_merge_is_order_independent(self):
        snaps = []
        for values in ((1, 3.0), (7, 9.0), (2, 1.0)):
            reg = MetricsRegistry()
            reg.add("n", values[0])
            reg.set_gauge("g", values[1])
            reg.observe("h", values[0], buckets=(2.0, 8.0))
            snaps.append(reg.snapshot())

        def merged(order):
            out = MetricsRegistry()
            for i in order:
                out.merge_snapshot(snaps[i])
            return json.dumps(out.snapshot(), sort_keys=True)

        assert merged([0, 1, 2]) == merged([2, 0, 1]) == merged([1, 2, 0])
        final = json.loads(merged([0, 1, 2]))
        assert final["counters"]["n"] == 10
        assert final["gauges"]["g"] == 9.0  # gauges merge with max
        assert final["histograms"]["h"]["counts"] == [2, 1, 0]

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.add("n")
        reg.merge_snapshot(None)
        assert reg.snapshot()["counters"] == {"n": 1}

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.observe("h", 1, buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.observe("h", 1, buckets=(1.0, 3.0))
        other = MetricsRegistry()
        other.observe("h", 1, buckets=(5.0,))
        with pytest.raises(ValueError):
            reg.merge_snapshot(other.snapshot())

    def test_merge_mismatch_is_loud_deterministic_and_nonmutating(self):
        reg = MetricsRegistry()
        reg.add("n", 1)
        reg.observe("b.hist", 1, buckets=(1.0, 2.0))
        reg.observe("a.hist", 1, buckets=(5.0,))
        other = MetricsRegistry()
        other.add("n", 9)
        other.observe("b.hist", 1, buckets=(1.0, 3.0))
        other.observe("a.hist", 1, buckets=(6.0,))
        before = json.dumps(reg.snapshot(), sort_keys=True)
        with pytest.raises(ValueError) as exc:
            reg.merge_snapshot(other.snapshot())
        message = str(exc.value)
        # Every mismatched name, in sorted order — the same message on
        # every run, never just whichever dict iteration hit first.
        assert "['a.hist', 'b.hist']" in message
        assert "registry left unmodified" in message
        # Nothing merged — not even the counters that would have been
        # valid on their own.
        assert json.dumps(reg.snapshot(), sort_keys=True) == before

    def test_histogram_overflow_bin(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(99.0)
        assert hist.counts == [0, 0, 1]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram((3.0, 1.0))

    def test_ops_counts_every_mutation(self):
        reg = MetricsRegistry()
        reg.add("a")
        reg.set_gauge("b", 1.0)
        reg.observe("c", 1, buckets=(1.0,))
        assert reg.ops == 3


class TestSpans:
    def test_enabled_span_records_event(self):
        obs.enable(metrics=True, trace=True)
        with obs.span("mac.beam_training.sls", initiator="tx"):
            pass
        _, spans, _ = obs.collect_cell()
        assert len(spans) == 1
        event = spans[0]
        assert event["name"] == "mac.beam_training.sls"
        assert event["ph"] == "X"
        assert event["cat"] == "mac"
        assert event["dur"] >= 0
        assert event["args"] == {"initiator": "tx"}

    def test_buffer_caps_and_counts_drops(self):
        buf = TraceBuffer(max_events=2)
        for i in range(5):
            buf.record(complete_event("x", 0, 10))
        events = buf.drain()
        # 2 recorded events + 1 synthetic drop counter
        assert len(events) == 3
        assert events[-1]["name"] == "obs.dropped_spans"
        assert events[-1]["args"]["dropped"] == 3

    def test_begin_cell_resets(self):
        obs.enable(metrics=True, trace=True)
        obs.add("n")
        with obs.span("x.y.z"):
            pass
        obs.begin_cell()
        metrics, spans, _ = obs.collect_cell()
        assert metrics is None
        assert spans == []


class TestExport:
    def test_trace_doc_roundtrip_and_validation(self, tmp_path):
        events = [
            complete_event("phy.raytracing.trace", 1000, 5000),
            {**complete_event("campaign.cell", 0, 9000), "pid": 1},
        ]
        path = write_trace(tmp_path / TRACE_FILENAME, events, label="demo")
        doc = read_trace(path)
        assert validate_trace(doc) == []
        names = [e["name"] for e in doc["traceEvents"]]
        assert "process_name" in names  # pid metadata for Perfetto
        assert doc["otherData"] == {"campaign": "demo"}

    def test_validator_catches_malformed_events(self):
        assert validate_trace([]) == ["trace document must be an object, got list"]
        assert validate_trace({"traceEvents": "nope"}) == ["traceEvents must be a list"]
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "Z", "pid": 0, "tid": 0},
                {"name": "", "ph": "X", "pid": 0, "tid": 0, "ts": 1, "dur": 1},
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 1},
                {"name": "x", "ph": "X", "pid": "p", "tid": 0, "ts": 1, "dur": 1},
            ]
        }
        problems = validate_trace(bad)
        assert len(problems) == 4

    def test_build_doc_defaults_pid_tid(self):
        doc = build_trace_doc([{"name": "x", "ph": "X", "ts": 0.0, "dur": 1.0}])
        assert validate_trace(doc) == []


class TestReport:
    def test_aggregate_spans(self):
        doc = build_trace_doc(
            [
                complete_event("a.b.c", 0, 3000),
                complete_event("a.b.c", 0, 1000),
                complete_event("d.e.f", 0, 10000),
            ]
        )
        rows = aggregate_spans(doc)
        assert [r["name"] for r in rows] == ["d.e.f", "a.b.c"]
        assert rows[1]["count"] == 2
        assert rows[1]["max_us"] == 3.0

    def test_render_report_includes_metrics_and_spans(self):
        manifest = {
            "campaign": "demo",
            "workers": 2,
            "scenarios": {"total": 4},
            "timing": {"wall_clock_s": 1.25},
            "metrics": {
                "counters": {"mac.simulator.events": 120},
                "gauges": {},
                "histograms": {
                    "mac.wigig.aggregation_mpdus": {
                        "buckets": [1.0, 12.0],
                        "counts": [1, 2, 0],
                        "count": 3,
                        "sum": 20.0,
                    }
                },
            },
        }
        doc = build_trace_doc([complete_event("mac.simulator.run", 0, 2000)])
        text = render_report(manifest, doc)
        assert "mac.simulator.events" in text
        assert "120" in text
        assert "mac.simulator.run" in text
        assert "aggregation_mpdus" in text

    def test_render_report_without_trace(self):
        manifest = {"campaign": "demo", "workers": 1, "scenarios": {}, "timing": {}}
        text = render_report(manifest, None)
        assert "no metrics recorded" in text
        assert "no trace.json" in text

    def test_report_json_is_byte_deterministic(self):
        from repro.obs.report import render_report_json

        manifest = {
            "campaign": "demo",
            "workers": 2,
            "schema_version": 3,
            "scenarios": {"total": 4},
            "timing": {"wall_clock_s": 1.25},
            "metrics": {"counters": {"n": 1}, "gauges": {}, "histograms": {}},
            "profile": {"handlers": {"h": {"calls": 1, "total_ns": 5}}},
        }
        doc = build_trace_doc([complete_event("mac.simulator.run", 0, 2000)])
        first = render_report_json(manifest, doc)
        # Key insertion order must not leak into the bytes.
        shuffled = json.loads(json.dumps(manifest, sort_keys=True))
        shuffled["profile"] = dict(reversed(list(shuffled["profile"].items())))
        assert render_report_json(shuffled, doc) == first
        parsed = json.loads(first)
        assert parsed["dropped_spans"] == 0
        assert parsed["profile"]["handlers"]["h"]["calls"] == 1
        assert parsed["spans"][0]["name"] == "mac.simulator.run"


class TestDroppedSpans:
    """Buffer overflow is surfaced loudly, never silently undercounted."""

    def _overflowed_run(self, tmp_path, monkeypatch):
        from repro import obs as obs_module

        monkeypatch.setattr(obs_module, "_BUFFER", TraceBuffer(max_events=2))
        obs.enable(metrics=True, trace=True)
        obs.begin_cell()
        for _ in range(6):
            with obs.span("x.y.z"):
                pass
        _, spans, _ = obs.collect_cell()
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        write_trace(run_dir / TRACE_FILENAME, spans, label="demo")
        manifest = {
            "schema_version": 3,
            "campaign": "demo",
            "workers": 1,
            "scenarios": {"total": 1},
            "timing": {"wall_clock_s": 0.1},
            "spans_file": TRACE_FILENAME,
            "metrics": None,
            "profile": None,
        }
        (run_dir / "manifest.json").write_text(json.dumps(manifest))
        return run_dir, spans

    def test_collect_cell_appends_drop_counter(self, tmp_path, monkeypatch):
        _, spans = self._overflowed_run(tmp_path, monkeypatch)
        # 2 recorded + 1 synthetic counter for the 4 dropped spans.
        assert len(spans) == 3
        assert spans[-1]["name"] == "obs.dropped_spans"
        assert spans[-1]["args"]["dropped"] == 4

    def test_export_check_reports_drop_count(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        run_dir, _ = self._overflowed_run(tmp_path, monkeypatch)
        assert main(["obs", "export", str(run_dir), "--check"]) == 0
        captured = capsys.readouterr()
        assert "4 dropped" in captured.out
        assert "WARNING" in captured.err
        assert "incomplete" in captured.err

    def test_report_warns_and_json_counts(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        run_dir, _ = self._overflowed_run(tmp_path, monkeypatch)
        assert main(["obs", "report", str(run_dir)]) == 0
        assert "dropped 4 span(s)" in capsys.readouterr().out
        assert main(["obs", "report", str(run_dir), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["dropped_spans"] == 4


class TestInstrumentation:
    """The hot paths actually feed the registry when enabled."""

    def test_simulator_events_counter(self):
        from repro.mac.simulator import Simulator

        obs.enable(metrics=True)
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(0.001, lambda: fired.append(1))
        sim.run_until(0.01)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["mac.simulator.events"] == 1

    def test_raytracer_counters_and_span(self):
        from repro.geometry.room import Room
        from repro.geometry.vec import Vec2
        from repro.phy.raytracing import RayTracer

        obs.enable(metrics=True, trace=True)
        tracer = RayTracer(Room.rectangular(6.0, 4.0))
        paths = tracer.trace(Vec2(1.0, 1.0), Vec2(5.0, 3.0))
        snap, spans, _ = obs.collect_cell()
        assert snap["counters"]["phy.raytracing.traces"] == 1
        assert snap["counters"]["phy.raytracing.paths"] == len(paths)
        assert any(e["name"] == "phy.raytracing.trace" for e in spans)

    def test_disabled_instrumentation_records_nothing(self):
        from repro.geometry.room import Room
        from repro.geometry.vec import Vec2
        from repro.phy.raytracing import RayTracer

        tracer = RayTracer(Room.rectangular(6.0, 4.0))
        tracer.trace(Vec2(1.0, 1.0), Vec2(5.0, 3.0))
        assert obs.metrics_snapshot() is None
