"""RNG-determinism taint tracking (rules RL013-RL015).

The campaign engine's content-addressed cache is only valid if a
cell's ``seed`` reaches every stochastic component.  The per-file rule
RL001 catches *unseeded* RNG construction; the failure modes it cannot
see are structural:

* **RL013** — a library function constructs its own fixed-seed
  generator instead of accepting one: every caller gets the same
  stream, so nominally independent draws are perfectly correlated and
  a campaign ``--seed`` cannot reach them.
* **RL014** — a generator stored on a module (or class-body) global:
  one process-wide stream shared across all users, with draw order —
  not seeds — deciding the results.
* **RL015** — a seeded generator that is *dropped* mid-chain: the
  caller holds an rng, the callee accepts one, but the call site does
  not forward it, so the callee silently falls back to its own
  stream.

Sources are ``numpy.random.default_rng`` / ``Generator`` /
``RandomState``, ``random.Random``, and the toolkit's own
:func:`repro.seeding.fallback_rng`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.config import module_in
from repro.lint.flow.callgraph import CallGraph, CallResolver, bind_arguments
from repro.lint.flow.symbols import FunctionInfo, ModuleInfo, ParamInfo, SymbolTable

#: Canonical dotted names that construct (or are) an RNG stream.
RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "random.Random",
    "repro.seeding.fallback_rng",
}


def is_rng_param(param: ParamInfo) -> bool:
    """Heuristic: does this parameter carry a generator?"""
    if param.name == "rng" or param.name.endswith("_rng"):
        return True
    return "Generator" in param.annotation


def rng_params(fn: FunctionInfo) -> List[ParamInfo]:
    return [p for p in fn.params if is_rng_param(p)]


def _expr_mentions_identifier(node: ast.AST) -> bool:
    """True when an expression references any name — i.e. the seed is
    derived from surrounding state rather than hard-coded."""
    return any(isinstance(sub, (ast.Name, ast.Attribute)) for sub in ast.walk(node))


class RngPass:
    """Runs the three RNG-taint checks over the symbol table."""

    def __init__(self, table: SymbolTable, graph: CallGraph, config, reporter):
        self.table = table
        self.graph = graph
        self.config = config
        self.reporter = reporter
        self.resolver = CallResolver(table)

    def run(self) -> None:
        for module in sorted(self.table.modules.values(), key=lambda m: m.name):
            self._check_module_globals(module)
            if not module_in(module.name, self.config.flow_rng_packages):
                continue
            functions = list(module.functions.values())
            for cls in module.classes.values():
                functions.extend(cls.methods.values())
            for fn in functions:
                self._check_internal_construction(fn, module)
                self._check_dropped_chain(fn, module)

    # -- helpers ----------------------------------------------------

    def _rng_constructor_target(self, call: ast.Call, module: ModuleInfo) -> Optional[str]:
        dotted = self.resolver.dotted_callee(call.func, module)
        dotted = self.table.resolve_alias(dotted) if dotted else dotted
        return dotted if dotted in RNG_CONSTRUCTORS else None

    def _available_rngs(self, fn: FunctionInfo, module: ModuleInfo) -> Set[str]:
        """Names bound to generators inside ``fn`` (params + locals)."""
        names = {p.name for p in rng_params(fn)}
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                if self._rng_constructor_target(node.value, module):
                    names.add(target.id)
        return names

    # -- RL013 ------------------------------------------------------

    def _check_internal_construction(self, fn: FunctionInfo, module: ModuleInfo) -> None:
        if rng_params(fn):
            # The function *does* accept a generator; an internal
            # construction is then the sanctioned fallback pattern.
            return
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if not self._rng_constructor_target(node, module):
                continue
            seed_exprs = [*node.args, *[kw.value for kw in node.keywords]]
            if not seed_exprs:
                continue  # bare default_rng() is RL001's unseeded case
            if any(_expr_mentions_identifier(e) for e in seed_exprs):
                continue  # seed derives from a parameter / surrounding state
            self.reporter.report(
                module,
                node,
                "RL013",
                f"{fn.qualname} constructs a fixed-seed RNG internally — "
                "every caller replays one stream; accept a "
                "numpy.random.Generator (or a seed parameter) so campaign "
                "seeds thread through",
                context=fn.qualname,
            )

    # -- RL014 ------------------------------------------------------

    def _check_module_globals(self, module: ModuleInfo) -> None:
        def check_body(body, context: str) -> None:
            for stmt in body:
                value = None
                if isinstance(stmt, ast.Assign):
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                if (
                    isinstance(value, ast.Call)
                    and self._rng_constructor_target(value, module)
                ):
                    self.reporter.report(
                        module,
                        stmt,
                        "RL014",
                        "RNG stored on a module/class global shares one "
                        "stream across every user, making results depend on "
                        "draw order — construct per run and pass it down",
                        context=context,
                    )

        check_body(module.tree.body, "")
        for cls in module.classes.values():
            check_body(cls.node.body, cls.name)

    # -- RL015 ------------------------------------------------------

    def _check_dropped_chain(self, fn: FunctionInfo, module: ModuleInfo) -> None:
        available = self._available_rngs(fn, module)
        if not available:
            return
        for site in self.graph.calls_from(fn.qualname):
            if site.kind != "call":
                continue
            params = site.callee.call_params if site.bound else site.callee.params
            rng_like = [p for p in params if is_rng_param(p)]
            if not rng_like:
                continue
            bound, exhaustive = bind_arguments(site)
            if not exhaustive:
                continue  # *args/**kwargs may forward it
            for param in rng_like:
                if param.name in bound:
                    continue
                self.reporter.report(
                    module,
                    site.node,
                    "RL015",
                    f"seeded generator ({', '.join(sorted(available))}) is "
                    f"available here but not forwarded: "
                    f"{site.callee.qualname} accepts '{param.name}' and will "
                    "fall back to its own stream, breaking the seed chain",
                    context=fn.qualname,
                )
