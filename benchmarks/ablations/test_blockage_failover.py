"""Extension experiment: human blockage and SLS fail-over.

Not a paper figure, but the combination its Sections 2 and 4.3 set up:
blockage is the flip side of directionality, and reflections carry
real throughput.  This benchmark measures a pedestrian crossing a 3 m
link with and without reflection fail-over.
"""


from repro.experiments.blockage import run_blockage_crossing


def run_variants():
    return {
        "no fail-over": run_blockage_crossing(failover=False, with_wall=True),
        "SLS fail-over": run_blockage_crossing(failover=True, with_wall=True),
        "fail-over, no wall": run_blockage_crossing(failover=True, with_wall=False),
    }


def test_blockage_failover(benchmark, report):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    report.add("Extension: pedestrian crossing a 3 m link (2 s window)")
    report.add(f"{'variant':>20} {'outage ms':>10} {'min rate Gbps':>14} {'retrains':>9}")
    for label, r in results.items():
        report.add(
            f"{label:>20} {r.outage_s(20e-3) * 1e3:10.0f} "
            f"{r.min_rate_bps() / 1e9:14.2f} {r.retrain_count:9d}"
        )
    report.add("")
    report.add(
        "fail-over onto the wall reflection removes the outage entirely; "
        "without a reflector there is nothing to fail over to"
    )

    plain = results["no fail-over"]
    rescued = results["SLS fail-over"]
    no_wall = results["fail-over, no wall"]
    # The crossing kills an unprotected link for a human-crossing-scale
    # interval (body width / walking speed, plus the edge regions).
    assert 0.2 < plain.outage_s(20e-3) < 0.6
    # Fail-over with a wall: zero outage, reduced-but-alive rate.
    assert rescued.outage_s(20e-3) == 0.0
    assert rescued.min_rate_bps() > 0
    assert rescued.retrain_count >= 1
    # Fail-over without a wall cannot help.
    assert no_wall.outage_s(20e-3) > 0.2
