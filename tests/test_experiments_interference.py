"""Integration tests for the interference experiments (Figures 21-23).

The full Figure 22 sweep takes tens of seconds; these tests run
short-duration versions that still exhibit every qualitative effect the
paper reports.
"""

import numpy as np
import pytest

from repro.core.frames import FrameDetector
from repro.experiments.interference import (
    build_interference_scenario,
    capture_interference_trace,
    interference_free_baseline,
    mean_link_rate_bps,
    run_interference_point,
)
from repro.experiments.reflection_interference import (
    build_reflector_room,
    interference_path_report,
    run_reflection_interference,
)
from repro.mac.frames import FrameKind


class TestScenarioConstruction:
    def test_all_devices_present(self):
        scen = build_interference_scenario(wihd_offset_m=1.0)
        assert set(scen.devices) == {
            "dock-a", "laptop-a", "dock-b", "laptop-b", "wihd-tx", "wihd-rx",
        }

    def test_without_wihd(self):
        scen = build_interference_scenario(with_wihd=False)
        assert "wihd-tx" not in scen.devices
        assert scen.wihd is None

    def test_rotated_dock_orientation(self):
        import math

        aligned = build_interference_scenario(rotated=False)
        rotated = build_interference_scenario(rotated=True)
        diff = rotated.devices["dock-a"].orientation_rad - aligned.devices[
            "dock-a"
        ].orientation_rad
        assert math.degrees(diff) == pytest.approx(70.0)


class TestFigure21FrameEffects:
    @pytest.fixture(scope="class")
    def close_scenario(self):
        scen = build_interference_scenario(wihd_offset_m=0.3, seed=11)
        scen.run(0.25)
        return scen

    def test_wigig_suffers_retransmissions(self, close_scenario):
        """Figure 21a: collisions cause missing ACKs and retries."""
        assert close_scenario.link_a.stats.retransmissions > 10

    def test_far_scenario_is_cleaner(self, close_scenario):
        far = build_interference_scenario(wihd_offset_m=3.0, seed=11)
        far.run(0.25)
        assert far.link_a.stats.retransmissions < (
            close_scenario.link_a.stats.retransmissions / 2
        )

    def test_trace_capture_contains_both_systems(self):
        trace, scen = capture_interference_trace(wihd_offset_m=0.5, run_for_s=0.1)
        frames = FrameDetector(threshold_v=0.05).detect(trace)
        assert len(frames) >= 10

    def test_overlapping_transmissions_exist(self, close_scenario):
        """WiHD transmits blindly, so real frame overlaps must occur."""
        records = close_scenario.medium.history
        wihd = [r for r in records if r.source == "wihd-tx" and r.kind == FrameKind.DATA]
        wigig = [r for r in records if r.source == "laptop-a" and r.kind == FrameKind.DATA]
        overlaps = 0
        wigig_sorted = sorted(wigig, key=lambda r: r.start_s)
        starts = np.array([r.start_s for r in wigig_sorted])
        ends = np.array([r.end_s for r in wigig_sorted])
        for w in wihd[:500]:
            idx = np.searchsorted(ends, w.start_s)
            if idx < starts.size and starts[idx] < w.end_s:
                overlaps += 1
        assert overlaps > 0


class TestFigure22Sweep:
    @pytest.fixture(scope="class")
    def baseline(self):
        return interference_free_baseline(duration_s=0.25)

    @pytest.fixture(scope="class")
    def close_point(self):
        return run_interference_point(0.5, duration_s=0.25, seed=10)

    @pytest.fixture(scope="class")
    def far_point(self):
        return run_interference_point(3.0, duration_s=0.25, seed=10)

    def test_baseline_utilization_paper_range(self, baseline):
        """Interference-free utilization ~38% (paper: 38%/42%)."""
        assert 0.2 < baseline.utilization < 0.55

    def test_interference_raises_utilization(self, baseline, close_point):
        assert close_point.utilization > baseline.utilization + 0.15

    def test_utilization_decays_with_distance(self, close_point, far_point):
        assert far_point.utilization < close_point.utilization - 0.1

    def test_far_point_near_baseline(self, baseline, far_point):
        assert far_point.utilization == pytest.approx(baseline.utilization, abs=0.12)

    def test_link_rate_drops_under_interference(self, baseline, close_point):
        """The inverse rate/utilization correlation of Figure 22."""
        assert close_point.link_rate_bps < baseline.link_rate_bps

    def test_rotated_baseline_rate_lower(self):
        aligned = interference_free_baseline(duration_s=0.2, seed=42)
        rotated = interference_free_baseline(duration_s=0.2, rotated=True, seed=42)
        assert rotated.link_rate_bps < aligned.link_rate_bps

    def test_transfer_time_computed(self, close_point):
        assert close_point.transfer_time_s is not None
        assert close_point.transfer_time_s > 0


class TestFigure23ReflectionInterference:
    def test_geometry_direct_blocked_reflection_open(self):
        report = interference_path_report()
        assert report["wihd_direct_db"] <= -150.0
        assert report["wihd_reflected_db"] > -100.0
        assert report["wigig_signal_db"] > -70.0

    def test_shields_block_all_direct_pairs(self):
        from repro.experiments.reflection_interference import (
            DOCK_POS, LAPTOP_POS, WIHD_RX_POS, WIHD_TX_POS,
        )

        room = build_reflector_room()
        for a in (WIHD_TX_POS, WIHD_RX_POS):
            for b in (DOCK_POS, LAPTOP_POS):
                assert not room.path_is_clear(a, b)

    def test_wigig_los_is_clear(self):
        from repro.experiments.reflection_interference import DOCK_POS, LAPTOP_POS

        room = build_reflector_room()
        assert room.path_is_clear(DOCK_POS, LAPTOP_POS)

    @pytest.fixture(scope="class")
    def result(self):
        return run_reflection_interference(duration_s=1.6, wihd_off_at_s=1.2)

    def test_throughput_drop_paper_range(self, result):
        """Paper: ~20% average loss, up to 33%."""
        assert 0.08 < result.throughput_drop < 0.45

    def test_recovery_after_power_off(self, result):
        assert result.mean_without_interference_bps > 850e6

    def test_worst_case_drop_substantial(self, result):
        """Paper: instantaneous drops of almost 300 mbps."""
        assert result.worst_drop_bps > 200e6

    def test_throughput_fluctuates_under_interference(self, result):
        on = result.times_s < result.wihd_off_time_s
        settled = result.times_s > 0.3
        on_std = float(np.std(result.throughput_bps[on & settled]))
        off_std = float(np.std(result.throughput_bps[~on]))
        assert on_std > off_std

    def test_off_instant_validation(self):
        with pytest.raises(ValueError):
            run_reflection_interference(duration_s=1.0, wihd_off_at_s=2.0)


class TestMeanLinkRate:
    def test_constant_mcs_rate(self):
        scen = build_interference_scenario(with_wihd=False, seed=30)
        scen.run(0.1)
        rate = mean_link_rate_bps(scen.link_a, 0.05, 0.1)
        from repro.phy.mcs import mcs_by_index

        assert rate == pytest.approx(mcs_by_index(scen.link_a.mcs.index).phy_rate_bps, rel=0.3)
