"""Unit tests for the empirical CDF helper."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCDF


class TestConstruction:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_samples_are_sorted(self):
        cdf = EmpiricalCDF([3.0, 1.0, 2.0])
        assert list(cdf.samples) == [1.0, 2.0, 3.0]

    def test_n(self):
        assert EmpiricalCDF([5.0, 6.0]).n == 2


class TestEvaluation:
    def test_below_minimum_is_zero(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0])
        assert cdf(0.5) == 0.0

    def test_at_maximum_is_one(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0])
        assert cdf(3.0) == 1.0

    def test_right_continuity(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        assert cdf(1.0) == 0.5  # includes the sample at 1.0

    def test_midpoint(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf(2.5) == 0.5


class TestQuantiles:
    def test_median_of_odd(self):
        assert EmpiricalCDF([1.0, 2.0, 3.0]).median() == 2.0

    def test_full_quantile_is_max(self):
        assert EmpiricalCDF([1.0, 5.0, 9.0]).quantile(1.0) == 9.0

    def test_invalid_quantile_raises(self):
        cdf = EmpiricalCDF([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_quantile_cdf_consistency(self):
        rng = np.random.default_rng(0)
        cdf = EmpiricalCDF(rng.normal(size=101))
        for q in (0.1, 0.5, 0.9):
            assert cdf(cdf.quantile(q)) >= q


class TestLongFrameFraction:
    def test_fraction_above(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_above(2.0) == 0.5

    def test_fraction_above_max_is_zero(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        assert cdf.fraction_above(2.0) == 0.0


class TestCurves:
    def test_curve_shape(self):
        x, y = EmpiricalCDF([1.0, 2.0, 3.0]).curve(points=50)
        assert x.shape == y.shape == (50,)
        assert y[0] > 0.0  # first grid point sits on the smallest sample
        assert y[-1] == 1.0
        assert np.all(np.diff(y) >= 0)

    def test_overlay_shared_grid(self):
        a = EmpiricalCDF([1.0, 2.0])
        b = EmpiricalCDF([3.0, 4.0])
        x, rows = EmpiricalCDF.overlay([a, b], points=10)
        assert rows.shape == (2, 10)
        assert x[0] == 1.0 and x[-1] == 4.0

    def test_overlay_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.overlay([])
