"""Figure 9: CDF of WiGig data frame length per TCP throughput.

Paper: frames are either short (~5 us) or long (15-20 us, up to 25 us);
the share of long frames grows with throughput.  The benchmark prints
the CDF quantiles for every operating point and asserts the bimodal
short/long structure.
"""


from figreport import cached_aggregation_sweep


def test_fig09_frame_length_cdf(benchmark, report):
    reports = benchmark.pedantic(cached_aggregation_sweep, rounds=1, iterations=1)
    report.add("Figure 9 - WiGig data frame length vs TCP throughput")
    report.add(
        f"{'operating point':>14} {'tput mbps':>10} {'median us':>10} "
        f"{'p95 us':>8} {'long %':>7}"
    )
    for r in reports:
        report.add(
            f"{r.label:>14} {r.throughput_bps / 1e6:10.2f} "
            f"{r.median_frame_s * 1e6:10.1f} {r.p95_frame_s * 1e6:8.1f} "
            f"{r.long_fraction * 100:7.1f}"
        )

    mbps_points = reports[2:]
    # Short frames at the low end (~6 us), long at the top (~25 us).
    assert mbps_points[0].median_frame_s < 8e-6
    assert mbps_points[-1].median_frame_s > 20e-6
    # The 25 us maximum is never exceeded.
    assert all(r.p95_frame_s <= 25.5e-6 for r in reports)
    # Monotone-ish growth of the long-frame share with throughput.
    fractions = [r.long_fraction for r in mbps_points]
    assert all(b >= a - 0.15 for a, b in zip(fractions, fractions[1:]))
