"""Figures 5/20: range extension over a wall reflection.

Paper: with the line of sight blocked, the angular energy profile at
the docking station shows no LOS lobe — all energy arrives via the
wall — and Iperf still measures 550 Mbps (+-18, 95% confidence), more
than half of the LOS value.
"""

import math


from repro.experiments.reflection_range import run_nlos_throughput


def run_experiment():
    return run_nlos_throughput(duration_s=0.3, intervals=6)


def test_fig20_nlos_reflection_link(benchmark, report):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report.add("Figures 5/20 - NLOS link over a wall reflection")
    report.add(f"LOS blocked (validated via angular profile): {result.los_blocked}")
    for lobe in result.lobes:
        report.add(
            f"  lobe at {lobe.bearing_deg:.0f} deg, {lobe.relative_db:.1f} dB "
            f"-> {lobe.attribution}"
        )
    report.add(
        f"NLOS TCP throughput: {result.nlos_throughput.mean / 1e6:.0f} mbps "
        f"(+-{result.nlos_throughput.half_width / 1e6:.0f}, 95% CI)  "
        f"[paper: 550 +-18 mbps]"
    )
    report.add(
        f"LOS TCP throughput:  {result.los_throughput_bps / 1e6:.0f} mbps; "
        f"NLOS/LOS = {result.nlos_over_los:.2f} (paper: 'more than half')"
    )

    assert result.los_blocked
    # All energy from the wall side (the lower half-plane).
    strongest = max(result.lobes, key=lambda l: l.power_dbm)
    assert math.sin(strongest.bearing_rad) < 0
    # Throughput: substantial, and roughly half the LOS value.
    assert result.nlos_throughput.mean > 300e6
    assert 0.4 < result.nlos_over_los < 0.85
