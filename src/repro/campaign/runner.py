"""The campaign engine: sharded parallel execution with caching.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec`, serves
every cell it can from the content-addressed cache, and executes the
rest — serially in-process for ``workers <= 1``, or on a
``ProcessPoolExecutor`` otherwise.  Scenario-to-shard assignment is
deterministic (content digest modulo shard count), per-scenario
timeouts are enforced inside the worker via ``SIGALRM``, transient
failures are retried with bounded exponential backoff, and failed
cells are *recorded*, never fatal: a campaign always returns a result
for every cell, even if some results are failure records.

Results are bit-for-bit identical between serial and parallel runs
because cells are deterministic functions of (experiment, params,
seed, repetition) and the outcome list preserves expansion order
regardless of completion order.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.campaign.cache import ResultCache
from repro.campaign.registry import resolve_cell
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.campaign.telemetry import RunTelemetry
from repro.obs import clock
from repro.obs.export import TRACE_FILENAME
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import merge_profile, span_aggregate
from repro.obs.trace import complete_event

#: Result key cells may use to report DES event counts to telemetry.
EVENTS_KEY = "events_simulated"


class ScenarioTimeout(Exception):
    """A cell exceeded its per-scenario time budget."""


def _alarm_handler(signum, frame):  # pragma: no cover - trivial
    raise ScenarioTimeout("scenario exceeded its time budget")


def execute_cell(
    experiment: str,
    params: Dict,
    seed: int,
    repetition: int,
    timeout_s: Optional[float] = None,
) -> Dict:
    """Run one cell, enforcing the timeout from inside the process.

    This is the function worker processes execute; it must stay
    module-level (picklable) and resolve the cell itself so forked and
    spawned workers behave identically.  Returns
    ``{"result", "elapsed_s", "events"}``; exceptions (including
    :class:`ScenarioTimeout`) propagate to the parent via the future.
    """
    fn = resolve_cell(experiment)
    collect = obs.STATE.enabled
    if collect:
        obs.begin_cell()
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    old_handler = None
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    t0 = clock.perf_counter()
    try:
        result = fn(seed=seed, repetition=repetition, **params)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
    elapsed = clock.perf_counter() - t0
    if not isinstance(result, dict):
        raise TypeError(
            f"cell {experiment!r} returned {type(result).__name__}, expected dict"
        )
    events = int(result.get(EVENTS_KEY, 0))
    payload = {"result": result, "elapsed_s": elapsed, "events": events}
    if collect:
        metrics, spans, profile = obs.collect_cell()
        payload["metrics"] = metrics
        payload["spans"] = spans
        payload["profile"] = profile
    return payload


@dataclass
class ScenarioOutcome:
    """What happened to one cell of the campaign."""

    spec: ScenarioSpec
    digest: str
    shard: int
    status: str  # "completed" | "cached" | "failed"
    result: Optional[Dict] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    attempts: int = 0
    # Observability sidecar (populated only when the runner collects
    # metrics/traces; deliberately NOT part of result_rows, so the
    # canonical row text repro campaign verify compares is unchanged).
    metrics: Optional[Dict] = None
    spans: Optional[List[Dict]] = None
    profile: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.status in ("completed", "cached")


@dataclass
class CampaignResult:
    """Outcomes (in expansion order) plus run telemetry."""

    campaign: CampaignSpec
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    telemetry: RunTelemetry = field(default_factory=RunTelemetry)
    #: Chrome trace events (cell spans pid=shard+1, runner spans
    #: pid=0); empty unless the runner ran with ``trace=True``.
    trace_events: List[Dict] = field(default_factory=list)

    def results(self) -> Dict[str, Dict]:
        """Digest -> result for every successful cell."""
        return {o.digest: o.result for o in self.outcomes if o.ok}

    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def result_rows(self) -> List[Dict]:
        """JSON-style rows, one per cell (the JSONL store format)."""
        rows = []
        for o in self.outcomes:
            rows.append(
                {
                    "digest": o.digest,
                    "experiment": o.spec.experiment,
                    "params": o.spec.param_dict(),
                    "seed": o.spec.seed,
                    "repetition": o.spec.repetition,
                    "shard": o.shard,
                    "status": o.status,
                    "attempts": o.attempts,
                    "elapsed_s": o.elapsed_s,
                    "result": o.result,
                    "error": o.error,
                }
            )
        return rows


@dataclass
class _Pending:
    """Parent-side bookkeeping for one in-flight scenario."""

    index: int
    spec: ScenarioSpec
    digest: str
    shard: int
    attempts: int = 0
    next_eligible: float = 0.0
    submitted_ns: int = 0


class CampaignRunner:
    """Execute a campaign with caching, sharding, timeouts, retries.

    Args:
        campaign: The campaign to run.
        cache: Result cache; ``None`` disables caching entirely.
        workers: Process count.  ``<= 1`` runs serially in-process
            (the reference path parallel runs must match bit-for-bit).
        timeout_s: Per-scenario wall-clock budget, enforced inside the
            executing process; ``None`` disables it.
        retries: How many times a *failed* cell is re-executed.
            Timeouts are not retried — a deterministic cell that blew
            its budget once will blow it again.
        backoff_s: Base of the bounded exponential backoff between
            retry attempts (``backoff_s * 2**attempt``, capped).
        max_backoff_s: Backoff ceiling.
        shuffle_seed: When set, parallel submission order is a seeded
            permutation of the deterministic shard order.  Results
            must be identical either way (outcomes are indexed by
            expansion order); ``repro campaign verify`` uses this to
            prove that claim rather than assume it.
        metrics: Collect per-cell :mod:`repro.obs` metrics and merge
            them (in expansion order, so the merge is byte-stable
            regardless of worker count) into the manifest.
        trace: Additionally record spans — per-cell timelines from
            inside the workers plus runner-level cell/shard spans —
            exported as Chrome trace-event JSON.  Implies ``metrics``.
        profile: Additionally attribute per-event wall time to DES
            handler qualnames inside the workers; the per-cell
            profiles merge (expansion order) into the manifest's
            ``profile`` section for ``repro obs top`` / ``obs diff``
            and the lint worklist.  Implies ``metrics``.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        shuffle_seed: Optional[int] = None,
        metrics: bool = False,
        trace: bool = False,
        profile: bool = False,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.campaign = campaign
        self.cache = cache
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.shuffle_seed = shuffle_seed
        self.trace = bool(trace)
        self.profile = bool(profile)
        self.metrics = bool(metrics) or self.trace or self.profile
        # Runner-level trace events (pid 0) and per-shard activity
        # windows, rebuilt on every run() when tracing.
        self._runner_events: List[Dict] = []
        self._shard_windows: Dict[int, List[int]] = {}

    # -- internals -------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_s * (2 ** attempt), self.max_backoff_s)

    def _note_cell_span(
        self, item: _Pending, start_ns: int, end_ns: int, name: str = "campaign.cell"
    ) -> None:
        """Record a runner-side (pid 0) span for one cell execution."""
        self._runner_events.append(
            complete_event(
                name,
                start_ns,
                end_ns,
                {
                    "experiment": item.spec.experiment,
                    "digest": item.digest[:12],
                    "shard": item.shard,
                },
            )
        )
        window = self._shard_windows.setdefault(item.shard, [start_ns, end_ns])
        window[0] = min(window[0], start_ns)
        window[1] = max(window[1], end_ns)

    def _record_success(
        self,
        telemetry: RunTelemetry,
        outcome: ScenarioOutcome,
        payload: Dict,
        attempts: int,
    ) -> None:
        outcome.status = "completed"
        outcome.result = payload["result"]
        outcome.elapsed_s = payload["elapsed_s"]
        outcome.attempts = attempts
        outcome.metrics = payload.get("metrics")
        outcome.spans = payload.get("spans")
        outcome.profile = payload.get("profile")
        telemetry.record_completed(payload["elapsed_s"], payload["events"])
        if self.cache is not None:
            self.cache.put(outcome.spec, payload["result"])

    def _record_failure(
        self,
        telemetry: RunTelemetry,
        outcome: ScenarioOutcome,
        error: BaseException,
        attempts: int,
    ) -> None:
        timed_out = isinstance(error, ScenarioTimeout)
        outcome.status = "failed"
        outcome.error = f"{type(error).__name__}: {error}"
        outcome.attempts = attempts
        telemetry.record_failure(
            outcome.digest,
            outcome.spec.experiment,
            outcome.error,
            attempts,
            timed_out=timed_out,
        )

    def _run_serial(
        self,
        pending: List[_Pending],
        outcomes: List[ScenarioOutcome],
        telemetry: RunTelemetry,
    ) -> None:
        for item in pending:
            cell_start_ns = clock.perf_counter_ns() if self.trace else 0
            attempts = 0
            while True:
                attempts += 1
                try:
                    payload = execute_cell(
                        item.spec.experiment,
                        item.spec.param_dict(),
                        item.spec.seed,
                        item.spec.repetition,
                        self.timeout_s,
                    )
                except ScenarioTimeout as exc:
                    self._record_failure(telemetry, outcomes[item.index], exc, attempts)
                    break
                except Exception as exc:
                    if attempts <= self.retries:
                        telemetry.record_retry()
                        time.sleep(self._backoff(attempts - 1))
                        continue
                    self._record_failure(telemetry, outcomes[item.index], exc, attempts)
                    break
                else:
                    self._record_success(
                        telemetry, outcomes[item.index], payload, attempts
                    )
                    break
            if self.trace:
                self._note_cell_span(item, cell_start_ns, clock.perf_counter_ns())

    def _submit(self, pool: ProcessPoolExecutor, item: _Pending) -> Future:
        if self.trace:
            item.submitted_ns = clock.perf_counter_ns()
        return pool.submit(
            execute_cell,
            item.spec.experiment,
            item.spec.param_dict(),
            item.spec.seed,
            item.spec.repetition,
            self.timeout_s,
        )

    def _run_parallel(
        self,
        pending: List[_Pending],
        outcomes: List[ScenarioOutcome],
        telemetry: RunTelemetry,
    ) -> None:
        """Fan scenarios out over a process pool.

        Shard assignment orders submission (shard 0's cells first) so
        the work distribution is deterministic even though completion
        order is not.  If the pool itself dies (a worker segfaults or
        the OS kills it), the remaining cells fall back to the serial
        path instead of failing the campaign.
        """
        queue = sorted(pending, key=lambda p: (p.shard, p.index))
        if self.shuffle_seed is not None:
            rng = np.random.default_rng(self.shuffle_seed)
            queue = [queue[i] for i in rng.permutation(len(queue))]
        in_flight: Dict[Future, _Pending] = {}
        retry_queue: List[_Pending] = []
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                while queue or in_flight or retry_queue:
                    now = clock.monotonic()
                    # Promote retry items whose backoff has elapsed.
                    ready = [p for p in retry_queue if p.next_eligible <= now]
                    for item in ready:
                        retry_queue.remove(item)
                        queue.append(item)
                    while queue and len(in_flight) < self.workers * 2:
                        item = queue.pop(0)
                        in_flight[self._submit(pool, item)] = item
                    if not in_flight:
                        # Only backoff timers are pending.
                        sleep_for = min(p.next_eligible for p in retry_queue) - now
                        time.sleep(max(sleep_for, 0.0))
                        continue
                    done, _ = wait(
                        set(in_flight), timeout=0.25, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        item = in_flight.pop(future)
                        item.attempts += 1
                        if self.trace:
                            self._note_cell_span(
                                item,
                                item.submitted_ns,
                                clock.perf_counter_ns(),
                                name="campaign.cell.await",
                            )
                        try:
                            payload = future.result()
                        except ScenarioTimeout as exc:
                            self._record_failure(
                                telemetry, outcomes[item.index], exc, item.attempts
                            )
                        except BrokenProcessPool:
                            # Put the item back so the serial fallback
                            # picks it up, then escalate.
                            queue.append(item)
                            raise
                        except Exception as exc:
                            if item.attempts <= self.retries:
                                telemetry.record_retry()
                                item.next_eligible = (
                                    clock.monotonic()
                                    + self._backoff(item.attempts - 1)
                                )
                                retry_queue.append(item)
                            else:
                                self._record_failure(
                                    telemetry, outcomes[item.index], exc, item.attempts
                                )
                        else:
                            self._record_success(
                                telemetry, outcomes[item.index], payload, item.attempts
                            )
        except BrokenProcessPool:
            # Degrade gracefully: finish what's left in-process.
            leftovers = [
                p
                for p in [*in_flight.values(), *retry_queue, *queue]
                if outcomes[p.index].status == "pending"
            ]
            self._run_serial(leftovers, outcomes, telemetry)

    # -- observability ---------------------------------------------------------

    def _enable_obs(self) -> tuple:
        """Turn observability on process-wide; returns restore state.

        The ``REPRO_OBS`` environment variable carries the mode into
        pool workers (spawned workers re-read it at import; forked
        workers also inherit the in-memory STATE directly).
        """
        previous = (
            obs.STATE.metrics,
            obs.STATE.tracing,
            obs.STATE.profiling,
            os.environ.get(obs.OBS_ENV),
        )
        tokens = ["metrics"]
        if self.trace:
            tokens.append("trace")
        if self.profile:
            tokens.append("profile")
        os.environ[obs.OBS_ENV] = ",".join(tokens)
        obs.enable(metrics=True, trace=self.trace, profile=self.profile)
        return previous

    def _restore_obs(self, previous: tuple) -> None:
        metrics, tracing, profiling, env = previous
        obs.STATE.metrics = metrics
        obs.STATE.tracing = tracing
        obs.STATE.profiling = profiling
        if env is None:
            os.environ.pop(obs.OBS_ENV, None)
        else:
            os.environ[obs.OBS_ENV] = env
        obs.reset()

    def _merged_metrics(
        self, outcomes: List[ScenarioOutcome], telemetry: RunTelemetry
    ) -> Optional[Dict]:
        """Merge per-cell snapshots (expansion order) + runner counters.

        Expansion order makes even the float histogram sums bit-stable
        across worker counts; the runner-level counters are derived
        from telemetry, which is itself worker-count-invariant for
        deterministic campaigns.
        """
        registry = MetricsRegistry()
        for outcome in outcomes:
            registry.merge_snapshot(outcome.metrics)
        registry.add("campaign.cells.total", telemetry.scenarios_total)
        registry.add("campaign.cells.completed", telemetry.completed)
        registry.add("campaign.cells.cached", telemetry.cached)
        registry.add("campaign.cells.failed", telemetry.failed)
        registry.add("campaign.retries", telemetry.retries)
        registry.add("campaign.cache.hits", telemetry.cached)
        registry.add(
            "campaign.cache.misses", telemetry.scenarios_total - telemetry.cached
        )
        return registry.snapshot()

    def _merged_profile(self, outcomes: List[ScenarioOutcome]) -> Optional[Dict]:
        """Merge per-cell handler profiles and span aggregates.

        Merging happens in expansion order, mirroring the metrics
        merge, so even the float time sums are bit-stable across
        worker counts; the count fields (handler calls, span counts)
        are additionally run-invariant and are what ``campaign
        verify`` digests.
        """
        merged: Dict = {}
        for outcome in outcomes:
            merge_profile(merged, outcome.profile)
            if outcome.spans:
                merge_profile(merged, {"spans": span_aggregate(outcome.spans)})
        return merged or None

    def _assemble_trace(
        self, outcomes: List[ScenarioOutcome], run_span: Dict
    ) -> List[Dict]:
        """Cell spans (pid = shard+1) then runner spans (pid 0)."""
        events: List[Dict] = []
        for outcome in outcomes:
            if not outcome.spans:
                continue
            for event in outcome.spans:
                event = dict(event)
                event["pid"] = outcome.shard + 1
                events.append(event)
        for shard in sorted(self._shard_windows):
            start_ns, end_ns = self._shard_windows[shard]
            self._runner_events.append(
                complete_event("campaign.shard", start_ns, end_ns, {"shard": shard})
            )
        self._runner_events.append(run_span)
        for event in self._runner_events:
            event["pid"] = 0
            events.append(event)
        return events

    # -- public API ------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute the campaign; never raises for per-cell failures."""
        previous_obs = self._enable_obs() if self.metrics else None
        self._runner_events = []
        self._shard_windows = {}
        run_start_ns = clock.perf_counter_ns() if self.trace else 0
        try:
            scenarios = self.campaign.expand()
            telemetry = RunTelemetry(
                campaign=self.campaign.name,
                campaign_digest=self.campaign.digest(),
                workers=self.workers,
                scenarios_total=len(scenarios),
            )
            telemetry.start()
            shards = [s.shard(self.workers) for s in scenarios]
            telemetry.shard_sizes = [shards.count(i) for i in range(self.workers)]

            outcomes: List[ScenarioOutcome] = []
            pending: List[_Pending] = []
            for index, (spec, shard) in enumerate(zip(scenarios, shards)):
                # Outcome identity is the unsalted content digest so runs
                # compare bit-for-bit regardless of cache configuration;
                # the cache salts its own keys internally.
                digest = spec.digest()
                cached = self.cache.get(spec) if self.cache is not None else None
                if cached is not None:
                    outcomes.append(
                        ScenarioOutcome(
                            spec=spec,
                            digest=digest,
                            shard=shard,
                            status="cached",
                            result=cached,
                        )
                    )
                    telemetry.record_cached()
                else:
                    outcomes.append(
                        ScenarioOutcome(
                            spec=spec, digest=digest, shard=shard, status="pending"
                        )
                    )
                    pending.append(
                        _Pending(index=index, spec=spec, digest=digest, shard=shard)
                    )

            if pending:
                if self.workers <= 1:
                    self._run_serial(pending, outcomes, telemetry)
                else:
                    self._run_parallel(pending, outcomes, telemetry)

            telemetry.finish()
            result = CampaignResult(
                campaign=self.campaign, outcomes=outcomes, telemetry=telemetry
            )
            if self.metrics:
                telemetry.metrics = self._merged_metrics(outcomes, telemetry)
                telemetry.profile = self._merged_profile(outcomes)
            if self.trace:
                run_span = complete_event(
                    "campaign.run",
                    run_start_ns,
                    clock.perf_counter_ns(),
                    {"campaign": self.campaign.name, "workers": self.workers},
                )
                result.trace_events = self._assemble_trace(outcomes, run_span)
                telemetry.spans_file = TRACE_FILENAME
            return result
        finally:
            if previous_obs is not None:
                self._restore_obs(previous_obs)


def run_campaign(
    campaign: CampaignSpec,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 2,
    backoff_s: float = 0.05,
    metrics: bool = False,
    trace: bool = False,
    profile: bool = False,
) -> CampaignResult:
    """Convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(
        campaign,
        cache=cache,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        metrics=metrics,
        trace=trace,
        profile=profile,
    ).run()
