"""802.11ad / WiGig single-carrier modulation and coding schemes.

The Dell D5000's reported link rates match the single-carrier MCS table
of the standard (Section 4.1, Figure 12): the paper annotates measured
rates with BPSK 3/4, QPSK 1/2, QPSK 5/8, QPSK 3/4, and 16-QAM 5/8, and
notes that the highest MCS (16-QAM 3/4, 4620 mbps) was never observed.

This module carries the full SC MCS table (MCS 1-12) with PHY rates and
approximate SNR thresholds, plus the control-PHY MCS 0.  Thresholds
follow the usual link-abstraction values for the required SNR at 1%
PER over a 1.76 GHz channel; the *spacing* between levels is what
matters for reproducing rate-vs-distance shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class MCS:
    """One modulation-and-coding scheme.

    Attributes:
        index: MCS index per the 802.11ad SC table (0 = control PHY).
        modulation: Constellation name.
        code_rate: FEC code rate.
        phy_rate_bps: PHY data rate in bits/second.
        min_snr_db: Approximate SNR needed for reliable operation.
    """

    index: int
    modulation: str
    code_rate: str
    phy_rate_bps: float
    min_snr_db: float

    @property
    def phy_rate_gbps(self) -> float:
        return self.phy_rate_bps / 1e9

    def label(self) -> str:
        """Human-readable label as used in Figure 12 ("QPSK, 3/4")."""
        return f"{self.modulation}, {self.code_rate}"


#: Control PHY: MCS 0, DBPSK spread, 27.5 mbps.  Used for beacons and
#: discovery frames, transmitted "with higher power and wider antenna
#: patterns" per Section 3.2.
CONTROL_MCS = MCS(0, "DBPSK", "1/2", 27.5e6, -8.0)

#: The single-carrier MCS table (802.11ad Table 21-14, rates in bps).
MCS_TABLE: List[MCS] = [
    MCS(1, "BPSK", "1/2", 385.0e6, 1.0),
    MCS(2, "BPSK", "1/2", 770.0e6, 2.5),
    MCS(3, "BPSK", "5/8", 962.5e6, 3.5),
    MCS(4, "BPSK", "3/4", 1155.0e6, 4.5),
    MCS(5, "BPSK", "13/16", 1251.25e6, 5.0),
    MCS(6, "QPSK", "1/2", 1540.0e6, 6.0),
    MCS(7, "QPSK", "5/8", 1925.0e6, 7.5),
    MCS(8, "QPSK", "3/4", 2310.0e6, 9.0),
    MCS(9, "QPSK", "13/16", 2502.5e6, 10.0),
    MCS(10, "16-QAM", "1/2", 3080.0e6, 12.0),
    MCS(11, "16-QAM", "5/8", 3850.0e6, 14.0),
    MCS(12, "16-QAM", "3/4", 4620.0e6, 16.5),
]

#: The highest MCS the paper ever observed on the D5000 (16-QAM 5/8 at
#: 3850 mbps); the devices appear not to use MCS 12 at all.
MAX_OBSERVED_MCS_INDEX = 11

#: The 802.11ad OFDM PHY (MCS 13-24, Table 21-18).  The devices under
#: test are single-carrier only — the paper notes the reported rates
#: "match the MCS levels defined in the standard for single-carrier
#: mode" — but the OFDM table is carried for what-if analyses: it
#: trades ~1-2 dB of required SNR for up to 6.76 gbps peak rate, at
#: implementation cost consumer hardware avoided.
OFDM_MCS_TABLE: List[MCS] = [
    MCS(13, "SQPSK", "1/2", 693.00e6, 2.5),
    MCS(14, "SQPSK", "5/8", 866.25e6, 3.5),
    MCS(15, "QPSK", "1/2", 1386.00e6, 5.0),
    MCS(16, "QPSK", "5/8", 1732.50e6, 6.5),
    MCS(17, "QPSK", "3/4", 2079.00e6, 8.0),
    MCS(18, "16-QAM", "1/2", 2772.00e6, 10.5),
    MCS(19, "16-QAM", "5/8", 3465.00e6, 12.5),
    MCS(20, "16-QAM", "3/4", 4158.00e6, 15.0),
    MCS(21, "16-QAM", "13/16", 4504.50e6, 16.0),
    MCS(22, "64-QAM", "5/8", 5197.50e6, 18.5),
    MCS(23, "64-QAM", "3/4", 6237.00e6, 20.5),
    MCS(24, "64-QAM", "13/16", 6756.75e6, 22.0),
]


def mcs_by_index(index: int) -> MCS:
    """Look up an MCS by its standard index (SC, OFDM, or control)."""
    if index == 0:
        return CONTROL_MCS
    for mcs in MCS_TABLE:
        if mcs.index == index:
            return mcs
    for mcs in OFDM_MCS_TABLE:
        if mcs.index == index:
            return mcs
    raise KeyError(f"no MCS with index {index}")


def select_mcs(
    snr_db: float,
    backoff_db: float = 2.0,
    max_index: int = MAX_OBSERVED_MCS_INDEX,
    table: Optional[Sequence[MCS]] = None,
) -> Optional[MCS]:
    """Pick the fastest MCS whose threshold the SNR clears.

    Args:
        snr_db: Link SNR (or SINR under interference).
        backoff_db: Implementation margin the rate controller keeps
            above the theoretical threshold.  Real rate adaptation is
            conservative; 2 dB reproduces the paper's observation that
            the top MCS is never used even on short links.
        max_index: Cap on the usable MCS (device policy).
        table: Alternate MCS table (for ablations).

    Returns:
        The selected MCS, or None when even MCS 1 is not sustainable —
        the paper's "links often break before the transmitter switches
        to rates below 1 gbps" regime.
    """
    candidates = [m for m in (table if table is not None else MCS_TABLE) if m.index <= max_index]
    best: Optional[MCS] = None
    for mcs in candidates:
        if snr_db >= mcs.min_snr_db + backoff_db:
            if best is None or mcs.phy_rate_bps > best.phy_rate_bps:
                best = mcs
    return best


def frame_error_probability(snr_db: float, mcs: MCS, steepness_db: float = 1.0) -> float:
    """Smooth frame error rate model around the MCS threshold.

    A logistic ramp centered on ``min_snr_db``: well above threshold the
    FER is near zero, well below it frames are essentially always lost.
    Collisions in the MAC simulator drop the SINR, pushing the operating
    point down this curve and producing the retransmissions the paper
    observes (Figure 21a).
    """
    if steepness_db <= 0:
        raise ValueError("steepness must be positive")
    x = (snr_db - mcs.min_snr_db) / steepness_db
    # Clamp to avoid overflow in exp for extreme SNRs.
    if x > 30:
        return 0.0
    if x < -30:
        return 1.0
    return 1.0 / (1.0 + pow(2.718281828459045, x))
