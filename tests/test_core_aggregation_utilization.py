"""Unit tests for aggregation statistics and medium-usage estimation."""

import numpy as np
import pytest

from repro.core.aggregation import (
    AggregationReport,
    aggregation_gain,
    frame_length_cdf,
    long_frame_fraction,
)
from repro.core.frames import DetectedFrame
from repro.core.utilization import (
    idle_gaps_s,
    medium_usage_from_records,
    medium_usage_from_trace,
)
from repro.phy.signal import Emission, synthesize_trace


def frames_of(durations, spacing=50e-6):
    return [
        DetectedFrame(i * spacing, d, 0.5, 0.5) for i, d in enumerate(durations)
    ]


class TestAggregationStats:
    def test_cdf_median(self):
        cdf = frame_length_cdf(frames_of([5e-6, 5e-6, 20e-6]))
        assert cdf.median() == 5e-6

    def test_long_fraction(self):
        frames = frames_of([5e-6, 6e-6, 20e-6, 24e-6])
        assert long_frame_fraction(frames) == 0.5

    def test_long_fraction_custom_threshold(self):
        frames = frames_of([5e-6, 20e-6])
        assert long_frame_fraction(frames, threshold_s=4e-6) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            frame_length_cdf([])

    def test_gain_paper_headline(self):
        """171 -> 930 mbps is the paper's 5.4x aggregation gain."""
        assert aggregation_gain(171e6, 930e6) == pytest.approx(5.44, abs=0.01)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            aggregation_gain(0.0, 1.0)

    def test_report_build(self):
        frames = frames_of([5e-6] * 8 + [20e-6] * 2)
        report = AggregationReport.build("test", 100e6, frames, medium_usage=0.5)
        assert report.num_frames == 10
        assert report.long_fraction == pytest.approx(0.2)
        assert report.median_frame_s == 5e-6
        assert "tput" in report.row()


class TestUsageFromRecords:
    def test_simple_fraction(self):
        frames = [DetectedFrame(0.0, 25e-6, 0.5, 0.5)]
        assert medium_usage_from_records(frames, 0.0, 100e-6) == pytest.approx(0.25)

    def test_overlaps_not_double_counted(self):
        frames = [
            DetectedFrame(0.0, 50e-6, 0.5, 0.5),
            DetectedFrame(25e-6, 50e-6, 0.5, 0.5),
        ]
        assert medium_usage_from_records(frames, 0.0, 100e-6) == pytest.approx(0.75)

    def test_clipped_to_window(self):
        frames = [DetectedFrame(-50e-6, 100e-6, 0.5, 0.5)]
        assert medium_usage_from_records(frames, 0.0, 100e-6) == pytest.approx(0.5)

    def test_bridging_closes_sifs_gaps(self):
        # Two 10 us frames with a 3 us gap: bridged = 23/100.
        frames = [
            DetectedFrame(0.0, 10e-6, 0.5, 0.5),
            DetectedFrame(13e-6, 10e-6, 0.5, 0.5),
        ]
        plain = medium_usage_from_records(frames, 0.0, 100e-6)
        bridged = medium_usage_from_records(frames, 0.0, 100e-6, bridge_gap_s=4e-6)
        assert plain == pytest.approx(0.20)
        assert bridged == pytest.approx(0.23)

    def test_bridging_does_not_close_big_gaps(self):
        frames = [
            DetectedFrame(0.0, 10e-6, 0.5, 0.5),
            DetectedFrame(50e-6, 10e-6, 0.5, 0.5),
        ]
        assert medium_usage_from_records(
            frames, 0.0, 100e-6, bridge_gap_s=4e-6
        ) == pytest.approx(0.20)

    def test_empty_is_zero(self):
        assert medium_usage_from_records([], 0.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            medium_usage_from_records([], 1.0, 1.0)
        with pytest.raises(ValueError):
            medium_usage_from_records([], 0.0, 1.0, bridge_gap_s=-1.0)

    def test_capped_at_one(self):
        frames = [DetectedFrame(0.0, 1.0, 0.5, 0.5)]
        assert medium_usage_from_records(frames, 0.0, 0.5, bridge_gap_s=1.0) == 1.0


class TestUsageFromTrace:
    def test_matches_ground_truth(self):
        ems = [Emission(i * 100e-6, 40e-6, 0.5) for i in range(5)]
        trace = synthesize_trace(
            ems, duration_s=500e-6, noise_floor_v=0.01,
            rng=np.random.default_rng(0),
        )
        usage = medium_usage_from_trace(trace, threshold_v=0.1)
        assert usage == pytest.approx(0.4, abs=0.03)

    def test_silent_trace_near_zero(self):
        trace = synthesize_trace(
            [], duration_s=1e-3, noise_floor_v=0.01, rng=np.random.default_rng(1)
        )
        assert medium_usage_from_trace(trace, threshold_v=0.1) == 0.0

    def test_auto_threshold(self):
        ems = [Emission(100e-6, 200e-6, 0.5)]
        trace = synthesize_trace(
            ems, duration_s=1e-3, noise_floor_v=0.01, rng=np.random.default_rng(2)
        )
        assert medium_usage_from_trace(trace) == pytest.approx(0.2, abs=0.03)

    def test_invalid_threshold(self):
        trace = synthesize_trace([], duration_s=1e-4)
        with pytest.raises(ValueError):
            medium_usage_from_trace(trace, threshold_v=-1.0)


class TestIdleGaps:
    def test_gaps_found(self):
        frames = [
            DetectedFrame(10e-6, 10e-6, 0.5, 0.5),
            DetectedFrame(50e-6, 10e-6, 0.5, 0.5),
        ]
        gaps = idle_gaps_s(frames, 0.0, 100e-6)
        assert len(gaps) == 3
        assert gaps[0] == (0.0, 10e-6)
        assert gaps[-1][1] == 100e-6

    def test_no_frames_whole_window_idle(self):
        gaps = idle_gaps_s([], 0.0, 1.0)
        assert gaps == [(0.0, 1.0)]

    def test_fully_busy_no_gaps(self):
        frames = [DetectedFrame(0.0, 1.0, 0.5, 0.5)]
        assert idle_gaps_s(frames, 0.0, 1.0) == []
