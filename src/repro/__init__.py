"""repro — a reproduction of "Boon and Bane of 60 GHz Networks"
(Nitsche et al., CoNEXT 2015).

The package provides:

* a full 60 GHz simulation substrate — phased antenna arrays with
  consumer-grade imperfections (:mod:`repro.phy.antenna`), beam
  codebooks (:mod:`repro.phy.codebook`), a 60 GHz link budget
  (:mod:`repro.phy.channel`), an image-method indoor ray tracer
  (:mod:`repro.phy.raytracing`), the 802.11ad MCS table
  (:mod:`repro.phy.mcs`), and oscilloscope-style amplitude-trace
  synthesis (:mod:`repro.phy.signal`);
* discrete-event MAC models of the two systems the paper measures —
  WiGig/D5000 (:mod:`repro.mac.wigig`) and WiHD/Air-3c
  (:mod:`repro.mac.wihd`) — sharing one channel with SINR-based
  collisions (:mod:`repro.mac.simulator`), plus Iperf-style TCP
  (:mod:`repro.mac.tcp`);
* device models including the Vubiq measurement receiver
  (:mod:`repro.devices`);
* the paper's analysis pipeline (:mod:`repro.core`): frame extraction
  from traces, aggregation statistics, medium-usage estimation, beam
  pattern and angular-profile measurement, interference metrics;
* ready-made experiment harnesses for every figure and table
  (:mod:`repro.experiments`).

Quick start::

    from repro.devices import make_d5000_dock
    dock = make_d5000_dock()
    beam = dock.active_beam.pattern
    print(beam.half_power_beam_width_deg(), beam.side_lobe_level_db())
"""

import os as _os

from repro import analysis, core, devices, geometry, mac, phy

if _os.environ.get("REPRO_SANITIZE"):  # opt-in runtime sanitizer
    from repro import sanitize as _sanitize

    _sanitize.enable_from_env()

__version__ = "1.0.0"

__all__ = ["analysis", "core", "devices", "geometry", "mac", "phy", "__version__"]
