"""Vectorization-readiness pass (RL030-RL036) and the shape lattice."""

import json

import pytest

from repro.lint.config import LintConfig
from repro.lint.flow import VEC_RULES, PASS_NAMES, Reporter, analyze_files
from repro.lint.flow.callgraph import build_call_graph
from repro.lint.flow.shapes import (
    VecPass,
    WorklistEntry,
    array,
    broadcast,
    build_worklist,
    canon_dtype,
    join,
    join_dtype,
    load_profile,
    narrows,
    parse_shape_annotation,
    render_worklist,
    scalar,
)
from repro.lint.flow.symbols import build_symbol_table

VEC = ("vec",)


def codes(findings):
    return [f.code for f in findings]


def analyze(*files, config=None):
    findings, _ = analyze_files(list(files), config or LintConfig(), passes=VEC)
    return findings


def phy(src):
    """Wrap a snippet as an in-scope module (vec_packages covers repro.phy)."""
    return ("src/repro/phy/toy.py", src)


def return_shape(src, fn="f"):
    """Run the pass over one module and return ``f``'s inferred summary."""
    table = build_symbol_table([phy(src)])
    graph = build_call_graph(table)
    config = LintConfig()
    vec = VecPass(table, graph, config, Reporter(config))
    vec.run()
    return vec.summaries.returns.get(f"repro.phy.toy.{fn}")


class TestRuleCatalog:
    def test_catalog_covers_rl030_to_rl036(self):
        assert sorted(VEC_RULES) == [f"RL03{i}" for i in range(7)]

    def test_vec_is_a_registered_pass(self):
        assert "vec" in PASS_NAMES


class TestDtypeLattice:
    def test_canonicalization(self):
        assert canon_dtype("np.float32") == "float32"
        assert canon_dtype("numpy.complex128") == "complex128"
        assert canon_dtype("float") == "float64"
        assert canon_dtype("made_up") is None

    def test_join_promotes_upward(self):
        assert join_dtype("float32", "float64") == "float64"
        assert join_dtype("float64", "complex128") == "complex128"
        assert join_dtype("bool", "int") == "int"
        assert join_dtype("float64", None) is None

    def test_narrows_is_strictly_downward(self):
        assert narrows("float64", "float32")
        assert narrows("complex128", "float64")
        assert not narrows("float32", "float64")
        assert not narrows("float64", "float64")
        assert not narrows(None, "float32")


class TestShapeJoinAndBroadcast:
    def test_join_keeps_agreeing_dims_and_decays_conflicts(self):
        a = array((3, "n"), "float64")
        b = array((3, "n"), "float64")
        assert join(a, b) == a
        c = array((4, "n"), "float64")
        assert join(a, c) == array((None, "n"), "float64")

    def test_join_of_mixed_kinds_is_unknown(self):
        assert join(scalar("float64"), array((3,), "float64")) is None

    def test_broadcast_scalar_adopts_array_shape(self):
        result, problem = broadcast(scalar("float64"), array((5,), "float32"))
        assert problem is None
        assert result == array((5,), "float64")

    def test_broadcast_concrete_mismatch(self):
        _, problem = broadcast(array((3,)), array((4,)))
        assert problem == "mismatch"

    def test_broadcast_size_one_expands(self):
        result, problem = broadcast(array((3, 1)), array((3, 7)))
        assert problem is None
        assert result.dims == (3, 7)

    def test_broadcast_rank_promotion_flagged(self):
        result, problem = broadcast(array((3, 4)), array((4,)))
        assert problem == "promotion"
        assert result.dims == (3, 4)

    def test_symbolic_dims_survive_broadcast(self):
        result, problem = broadcast(array(("n",)), array(("n",)))
        assert problem is None
        assert result.dims == ("n",)

    def test_render(self):
        assert scalar("float64").render() == "scalar[float64]"
        assert array((3,), "float32").render() == "array[(3,)][float32]"
        assert array(None).render() == "array[(?)]"


class TestAnnotationGrammar:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("scalar", scalar()),
            ("any", array(None)),
            ("(points,)", array(("points",))),
            ("(n,2)", array(("n", 2))),
            ("(*,3)", array((None, 3))),
        ],
    )
    def test_recognized_spellings(self, text, expected):
        value, recognized = parse_shape_annotation(text)
        assert recognized
        assert value == expected

    def test_input_contract_is_presence_only(self):
        value, recognized = parse_shape_annotation("input")
        assert recognized and value is None

    def test_garbage_is_not_recognized(self):
        value, recognized = parse_shape_annotation("(3+4)")
        assert not recognized and value is None


class TestShapeFlow:
    def test_reshape_produces_concrete_dims(self):
        src = (
            "import numpy as np\n\n"
            "def f():  # replint: shape=any\n"
            "    a = np.zeros((3, 4))\n"
            "    return a.reshape(12)\n"
        )
        assert return_shape(src) == array((12,), "float64")

    def test_ravel_keeps_rank_one_but_forgets_size(self):
        src = (
            "import numpy as np\n\n"
            "def f():  # replint: shape=any\n"
            "    a = np.zeros((3, 4))\n"
            "    return a.ravel()\n"
        )
        assert return_shape(src) == array((None,), "float64")

    def test_newaxis_inserts_a_unit_dim(self):
        src = (
            "import numpy as np\n\n"
            "def f():  # replint: shape=any\n"
            "    a = np.zeros(3)\n"
            "    return a[:, np.newaxis]\n"
        )
        assert return_shape(src) == array((3, 1), "float64")

    def test_where_joins_branch_dtypes_upward(self):
        src = (
            "import numpy as np\n\n"
            "def f():  # replint: shape=any\n"
            "    a = np.zeros(5, dtype=np.float32)\n"
            "    b = np.ones(5)\n"
            "    return np.where(a > 0, a, b)\n"
        )
        assert return_shape(src) == array((5,), "float64")

    def test_concatenate_forgets_the_joined_axis(self):
        src = (
            "import numpy as np\n\n"
            "def f():  # replint: shape=any\n"
            "    a = np.zeros(3, dtype=np.float32)\n"
            "    b = np.zeros(4)\n"
            "    return np.concatenate((a, b))\n"
        )
        assert return_shape(src) == array((None,), "float64")

    def test_loop_carried_shape_reaches_fixpoint(self):
        src = (
            "import numpy as np\n\n"
            "def f():  # replint: shape=any\n"
            "    acc = np.zeros((3, 4))\n"
            "    for _ in range(3):\n"
            "        acc = acc + np.ones((3, 4))\n"
            "    return acc\n"
        )
        assert return_shape(src) == array((3, 4), "float64")


class TestRL030ScalarHotLoop:
    SRC = (
        "import numpy as np\n\n"
        "def _hot(xs):\n"
        "    out = 0.0\n"
        "    for x in np.arange(0.0, 1.0, 0.1):\n"
        "        out += x * x + 2.0 * x\n"
        "    return out\n"
    )

    def test_arange_loop_flagged(self):
        findings = analyze(phy(self.SRC))
        assert codes(findings) == ["RL030"]
        assert "vectoriz" in findings[0].message

    def test_inline_suppression(self):
        src = self.SRC.replace(
            "0.1):", "0.1):  # replint: disable=RL030"
        )
        assert analyze(phy(src)) == []

    def test_out_of_scope_package_is_quiet(self):
        assert analyze(("src/repro/mac/toy.py", self.SRC)) == []


class TestRL031Broadcast:
    def test_concrete_mismatch_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def _mix():  # replint: shape=any\n"
            "    a = np.zeros(3)\n"
            "    b = np.zeros(4)\n"
            "    return a + b\n"
        )
        assert codes(analyze(phy(src))) == ["RL031"]

    def test_rank_promotion_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def _mix():  # replint: shape=any\n"
            "    a = np.zeros((3, 4))\n"
            "    b = np.zeros(4)\n"
            "    return a * b\n"
        )
        assert codes(analyze(phy(src))) == ["RL031"]

    def test_newaxis_flows_into_mismatch(self):
        src = (
            "import numpy as np\n\n"
            "def _mix():  # replint: shape=any\n"
            "    a = np.zeros(3)\n"
            "    b = a[:, np.newaxis]\n"
            "    return b + np.zeros((4, 2))\n"
        )
        assert codes(analyze(phy(src))) == ["RL031"]

    def test_array_into_scalar_annotated_param(self):
        src = (
            "import numpy as np\n\n"
            "def _gain(az: float):  # replint: shape=scalar\n"
            "    return az * 2.0\n\n"
            "def _caller():\n"
            "    a = np.zeros(8)\n"
            "    return _gain(a)\n"
        )
        findings = analyze(phy(src))
        assert codes(findings) == ["RL031"]
        assert findings[0].line == 8


class TestRL032DtypeDrift:
    SRC = (
        "import numpy as np\n\n"
        "def _narrow(a):  # replint: shape=any\n"
        "    b = np.asarray(a, dtype=float)\n"
        "    return b.astype(np.float32)\n"
    )

    def test_unannotated_narrowing_flagged(self):
        assert codes(analyze(phy(self.SRC))) == ["RL032"]

    def test_dtype_annotation_blesses_the_cast(self):
        src = self.SRC.replace(
            "astype(np.float32)", "astype(np.float32)  # replint: dtype=float32"
        )
        assert analyze(phy(src)) == []


class TestRL033ArrayGrowth:
    def test_append_in_loop_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def _grow(xs):  # replint: shape=any\n"
            "    out = np.zeros(0)\n"
            "    for x in xs:\n"
            "        out = np.append(out, x)\n"
            "    return out\n"
        )
        assert codes(analyze(phy(src))) == ["RL033"]

    def test_precomputed_concatenate_is_clean(self):
        src = (
            "import numpy as np\n\n"
            "def _ext(a):  # replint: shape=any\n"
            "    return np.concatenate(([a[-1]], a, [a[0]]))\n"
        )
        assert analyze(phy(src)) == []


class TestRL034FloatRoundtrip:
    def test_float_of_element_in_loop_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def _roundtrip(xs):\n"
            "    a = np.asarray(xs, dtype=float)\n"
            "    out = []\n"
            "    for i in range(3):\n"
            "        out.append(float(a[i]) * 2.0)\n"
            "    return out\n"
        )
        assert "RL034" in codes(analyze(phy(src)))

    def test_boundary_conversion_outside_loop_is_clean(self):
        src = (
            "import numpy as np\n\n"
            "def _once(xs):\n"
            "    a = np.asarray(xs, dtype=float)\n"
            "    return float(a.sum())\n"
        )
        assert analyze(phy(src)) == []


class TestRL035FalseVectorization:
    def test_np_vectorize_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def _vec(a):  # replint: shape=any\n"
            "    g = np.vectorize(lambda x: x * 2.0)\n"
            "    return g(a)\n"
        )
        assert codes(analyze(phy(src))) == ["RL035"]


class TestRL036ShapeContract:
    def test_public_array_api_without_contract_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def grid(points: int) -> np.ndarray:\n"
            "    return np.zeros(points)\n"
        )
        assert codes(analyze(phy(src))) == ["RL036"]

    def test_shape_annotation_satisfies_the_contract(self):
        src = (
            "import numpy as np\n\n"
            "def grid(points: int) -> np.ndarray:"
            "  # replint: shape=(points,)\n"
            "    return np.zeros(points)\n"
        )
        assert analyze(phy(src)) == []

    def test_annotation_on_multiline_signature(self):
        src = (
            "import numpy as np\n\n"
            "def grid(\n"
            "    points: int,\n"
            ") -> np.ndarray:  # replint: shape=(points,)\n"
            "    return np.zeros(points)\n"
        )
        assert analyze(phy(src)) == []

    def test_tuple_returns_are_exempt(self):
        src = (
            "import numpy as np\n"
            "from typing import Tuple\n\n"
            "def pair(n: int) -> Tuple[np.ndarray, np.ndarray]:\n"
            "    return np.zeros(n), np.ones(n)\n"
        )
        assert analyze(phy(src)) == []

    def test_private_helpers_are_exempt(self):
        src = (
            "import numpy as np\n\n"
            "def _grid(points: int) -> np.ndarray:\n"
            "    return np.zeros(points)\n"
        )
        assert analyze(phy(src)) == []


class TestWorklist:
    SRC = (
        "import numpy as np\n\n"
        "def sweep(xs):\n"
        "    out = np.zeros(0)\n"
        "    a = np.asarray(xs, dtype=float)\n"
        "    for x in np.arange(0.0, 1.0, 0.1):\n"
        "        out = np.append(out, float(a[0]) + x * x + 2.0 * x)\n"
        "    return out  # replint: disable=RL036\n"
    )

    def _findings(self):
        return analyze(
            phy(self.SRC),
            ("src/repro/mac/quiet.py", "X = 1\n"),
        )

    def test_entries_group_per_function(self):
        entries = build_worklist(self._findings())
        assert len(entries) == 1
        entry = entries[0]
        assert entry.context == "repro.phy.toy.sweep"
        assert set(entry.codes) <= {"RL030", "RL033", "RL034", "RL035"}
        assert entry.line == 6

    def test_profile_hotness_and_share(self):
        profile = {"counters.phy.toy.calls": 80.0, "counters.mac.other": 20.0}
        entries = build_worklist(self._findings(), profile=profile)
        assert entries[0].hotness == 80.0
        assert entries[0].share == 1.0

    def test_ordering_is_deterministic(self):
        findings = self._findings()
        profile = {"counters.phy.toy.calls": 3.0}
        first = [e.to_dict() for e in build_worklist(findings, profile=profile)]
        second = [e.to_dict() for e in build_worklist(findings, profile=profile)]
        assert first == second

    def test_hotter_entries_sort_first(self):
        cold = WorklistEntry(path="a.py", line=1, context="a", hotness=1.0)
        hot = WorklistEntry(path="b.py", line=1, context="b", hotness=9.0)
        ordered = sorted(
            [cold, hot], key=lambda e: (-e.hotness, e.path, e.line, e.context)
        )
        assert ordered[0] is hot

    def test_render_mentions_profile_and_codes(self):
        entries = build_worklist(self._findings())
        text = render_worklist(entries, "BENCH_x.json")
        assert "profile: BENCH_x.json" in text
        assert "repro.phy.toy.sweep" in text


class TestLoadProfile:
    def test_flattens_numeric_leaves(self, tmp_path):
        path = tmp_path / "BENCH_toy.json"
        path.write_text(
            json.dumps(
                {
                    "metrics": {"counters": {"phy.toy.calls": 3, "ok": True}},
                    "samples": [{"t": 1.5}, {"t": 2.5}],
                }
            )
        )
        flat = load_profile(path)
        assert flat["metrics.counters.phy.toy.calls"] == 3.0
        assert flat["samples.t"] == 4.0  # list entries share the prefix
        assert "metrics.counters.ok" not in flat  # bools are skipped

    def test_unreadable_profile_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_profile(path)
