"""Beam-pattern measurement campaigns (Section 4.2, Figures 16/17).

The outdoor semicircle procedure is implemented by
:class:`repro.core.beams.BeamPatternCampaign`; this module wires it to
the paper's three measurements:

* the laptop's data-transmission pattern (Figure 17, left);
* the dock's data-transmission pattern, aligned (Figure 17, right);
* the dock's pattern with the notebook misaligned by 70 degrees
  (Figure 17, overlay), measured with +10 dB receiver gain;
* the 32 quasi-omni discovery patterns (Figure 16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.beams import BeamPatternCampaign, MeasuredPattern
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.experiments.common import derive_seed, misalignment_70deg
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind


@dataclass(frozen=True)
class PatternMetrics:
    """Summary statistics of one measured pattern."""

    label: str
    hpbw_deg: float
    side_lobe_db: float
    peak_power_dbm: float
    gap_depth_db: float

    @staticmethod
    def from_measurement(label: str, measured: MeasuredPattern) -> "PatternMetrics":
        pattern = measured.as_pattern()
        return PatternMetrics(
            label=label,
            hpbw_deg=pattern.half_power_beam_width_deg(),
            side_lobe_db=pattern.side_lobe_level_db(),
            peak_power_dbm=float(measured.power_dbm.max()),
            gap_depth_db=pattern.gap_depth_db(),
        )

    def row(self) -> str:
        return (
            f"{self.label:>16}: HPBW {self.hpbw_deg:5.1f} deg  "
            f"side lobes {self.side_lobe_db:6.1f} dB  "
            f"peak {self.peak_power_dbm:7.1f} dBm"
        )


def measure_laptop_pattern(positions: int = 100, seed: int = 0) -> MeasuredPattern:
    """Figure 17 (left): the E7440 notebook's trained data beam."""
    laptop = make_e7440_laptop(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    # Peer straight ahead at 2 m: the trained beam points broadside.
    laptop.train_toward(Vec2(2.0, 0.0))
    campaign = BeamPatternCampaign(
        laptop, positions=positions, position_jitter_m=0.03, seed=seed
    )
    return campaign.measure(kind=FrameKind.DATA)


def measure_dock_pattern(
    misalignment_rad: float = 0.0,
    positions: int = 100,
    seed: int = 1,
) -> MeasuredPattern:
    """Figure 17 (right): the dock's data beam, aligned or rotated.

    With ``misalignment_rad`` set (70 degrees in the paper), the dock
    must steer toward the boundary of its transmission area; the
    measurement needs extra receiver gain, as in the paper.
    """
    dock = make_d5000_dock(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    peer_bearing = misalignment_rad
    dock.train_toward(Vec2.from_polar(2.0, peer_bearing))
    extra_gain = 10.0 if abs(misalignment_rad) > math.radians(30) else 0.0
    campaign = BeamPatternCampaign(
        dock,
        positions=positions,
        position_jitter_m=0.03,
        seed=seed,
        extra_gain_db=extra_gain,
    )
    return campaign.measure(kind=FrameKind.DATA)


def measure_dock_rotated_pattern(positions: int = 100, seed: int = 2) -> MeasuredPattern:
    """The 70-degree misaligned dock measurement of Figure 17."""
    return measure_dock_pattern(
        misalignment_rad=misalignment_70deg(), positions=positions, seed=seed
    )


def measure_discovery_patterns(
    count: int = 4,
    positions: int = 60,
    seed: int = 3,
) -> List[MeasuredPattern]:
    """Figure 16: quasi-omni discovery patterns of the dock.

    ``count`` selects how many of the 32 sub-element patterns to
    measure (the paper plots four; the benchmark sweeps all).
    """
    dock = make_d5000_dock(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    campaign = BeamPatternCampaign(dock, positions=positions, seed=seed)
    total = len(dock.codebook.quasi_omni_entries)
    count = min(count, total)
    return [
        campaign.measure(kind=FrameKind.DISCOVERY, subelement=i, frames_per_position=10)
        for i in range(count)
    ]


def directional_pattern_report(positions: int = 100) -> List[PatternMetrics]:
    """The Figure 17 summary rows: laptop, dock, rotated dock."""
    rows = [
        PatternMetrics.from_measurement("laptop", measure_laptop_pattern(positions)),
        PatternMetrics.from_measurement("dock aligned", measure_dock_pattern(0.0, positions)),
        PatternMetrics.from_measurement(
            "dock rotated 70", measure_dock_rotated_pattern(positions)
        ),
    ]
    return rows


# -- campaign integration ------------------------------------------------------

#: The semicircle setups swept by the ``beam-patterns`` campaign.
PATTERN_SETUPS = ("laptop", "dock_aligned", "dock_rotated_70")

SETUP_LABELS = {
    "laptop": "laptop",
    "dock_aligned": "dock aligned",
    "dock_rotated_70": "dock rotated 70",
}


def pattern_cell(
    *,
    setup: str,
    positions: int = 100,
    seed: int = 0,
    repetition: int = 0,
) -> dict:
    """One cell of the semicircle campaign: measure one setup.

    This is the unit the campaign engine shards, caches, and retries;
    ``seed`` and ``repetition`` make repeated measurements distinct
    cache entries.  Returns the :class:`PatternMetrics` fields as
    JSON-style data.
    """
    cell_seed = seed if repetition == 0 else derive_seed(seed, "rep", repetition)
    if setup == "laptop":
        measured = measure_laptop_pattern(positions=positions, seed=cell_seed)
    elif setup == "dock_aligned":
        measured = measure_dock_pattern(0.0, positions=positions, seed=cell_seed)
    elif setup == "dock_rotated_70":
        measured = measure_dock_pattern(
            misalignment_70deg(), positions=positions, seed=cell_seed
        )
    else:
        raise ValueError(f"unknown pattern setup {setup!r} (want one of {PATTERN_SETUPS})")
    metrics = PatternMetrics.from_measurement(SETUP_LABELS[setup], measured)
    return {
        "setup": setup,
        "label": metrics.label,
        "positions": positions,
        "hpbw_deg": metrics.hpbw_deg,
        "side_lobe_db": metrics.side_lobe_db,
        "peak_power_dbm": metrics.peak_power_dbm,
        "gap_depth_db": metrics.gap_depth_db,
    }


def semicircle_campaign_spec(
    positions: int = 100, seeds: tuple = (0, 1, 2)
) -> "CampaignSpec":
    """The Figure 17 semicircle sweep as a campaign grid."""
    from repro.campaign.spec import CampaignSpec

    return CampaignSpec(
        name="beam-patterns",
        experiment="beam_pattern",
        base_params={"positions": positions},
        grid={"setup": PATTERN_SETUPS},
        seeds=tuple(seeds),
        description="Figure 17 semicircle beam-pattern sweep",
    )


def directional_pattern_report_campaign(
    positions: int = 100,
    workers: int = 1,
    cache=None,
) -> List[PatternMetrics]:
    """The Figure 17 report executed through the campaign engine.

    Same rows as :func:`directional_pattern_report` but computed
    through the engine: sharded across ``workers`` and served from
    ``cache`` when one is given.  All three setups use campaign seed 0
    (the legacy path seeds them 0/1/2), so the numbers differ from the
    legacy report by the placement jitter draw — deterministically.
    """
    from repro.campaign.runner import run_campaign

    rows: List[PatternMetrics] = []
    spec = semicircle_campaign_spec(positions=positions, seeds=(0,))
    result = run_campaign(spec, cache=cache, workers=workers)
    by_setup = {}
    for outcome in result.outcomes:
        if not outcome.ok:
            raise RuntimeError(f"pattern cell failed: {outcome.error}")
        by_setup[outcome.result["setup"]] = outcome.result
    for setup in PATTERN_SETUPS:
        data = by_setup[setup]
        rows.append(
            PatternMetrics(
                label=data["label"],
                hpbw_deg=data["hpbw_deg"],
                side_lobe_db=data["side_lobe_db"],
                peak_power_dbm=data["peak_power_dbm"],
                gap_depth_db=data["gap_depth_db"],
            )
        )
    return rows
