"""Interprocedural physical-dimension & unit-scale inference (RL050-RL056).

The dB/linear pass (:mod:`repro.lint.flow.units`) covers the power
axis; every *other* physical quantity in the toolkit — azimuths in
radians vs the paper's degrees, 60 GHz carriers vs Hz, sweep airtimes
in µs vs seconds of sim time, vehicle speeds in km/h vs m/s — lives on
a (dimension × scale) lattice this pass infers over the same symbol
table and call graph:

* **angle** {rad, deg} — trig demands radians;
* **length** {m, mm, cm, km};
* **time** {s, ms, us, ns} — the DES clock runs in seconds;
* **frequency** {hz, khz, mhz, ghz};
* **speed** {mps, kmh};
* **power** — reuses the dB/linear facts from :mod:`units` so a dB
  quantity added to a duration is still a cross-dimension bug here.

Quantities seed from name suffixes (``bearing_rad``, ``delay_s``,
``speed_kmh``), the conversion-helper signature table
(``math.radians``, ``np.deg2rad``, ``repro.geometry.kmh_to_ms``...),
and ``# replint: unit=...`` annotations — on the ``def`` line for the
return (as in :mod:`units`), or on a parameter's own line in a
multi-line signature for that parameter.  Propagation follows
assignments, returns (fixpoint summaries), and arithmetic: length/time
is a speed, a dimensionless numerator over a time is a frequency,
speed·time is a length, c/f is a wavelength.

Checks:

* **RL050** — trig on a degree-scaled angle, or arithmetic/comparison
  mixing degree and radian scales;
* **RL051** — cross-dimension arithmetic or comparison (adding m to s,
  comparing Hz to GHz);
* **RL052** — scale mismatch at a call or return boundary (km/h into
  an m/s parameter, ms into a seconds ``schedule`` delay);
* **RL053** — unit-ambiguous public API parameter in the configured
  ``dim-packages`` with neither a unit suffix nor an annotation; also
  reports unknown ``unit=`` spellings so annotation typos fail loudly;
* **RL054** — wavelength/frequency confusion (``c*f`` where
  wavelength is ``c/f``, or a frequency assigned to a wavelength);
* **RL055** — angle-wraparound comparison on a raw angle difference
  without ``normalize_angle``/``angle_between``/``deg_wrap_180``;
* **RL056** — redundant or double conversion (``deg2rad(radians(x))``,
  a round trip that cancels, or an inline ``/3.6`` magic constant
  where :func:`repro.geometry.kmh_to_ms` exists).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.config import module_in
from repro.lint.flow.callgraph import CallGraph, CallSite, bind_arguments
from repro.lint.flow.destime import SCHEDULE_METHODS, SIM_RECEIVER_NAMES
from repro.lint.flow.symbols import FunctionInfo, ModuleInfo, SymbolTable
from repro.lint.flow.units import (
    NEUTRAL as POWER_NEUTRAL,
    unit_from_name as power_unit_from_name,
)

# ---------------------------------------------------------------------------
# the (dimension × scale) lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Qty:
    """One lattice element: a physical dimension at an optional scale."""

    dim: str  #: ``angle`` | ``length`` | ``time`` | ``frequency`` | ``speed`` | ``power`` | ``none``
    scale: Optional[str] = None  #: e.g. ``rad``, ``ms``, ``ghz``; None = unknown

    def render(self) -> str:
        return f"{self.dim}:{self.scale}" if self.scale else self.dim


#: Declared "carries no physical dimension" — counts, ratios, indices.
DIMENSIONLESS = Qty("none")

ANGLE = "angle"
LENGTH = "length"
TIME = "time"
FREQUENCY = "frequency"
SPEED = "speed"
POWER = "power"

#: Scale spellings per dimension (also the annotation vocabulary).
SCALES: Dict[str, Tuple[str, ...]] = {
    ANGLE: ("rad", "deg"),
    LENGTH: ("m", "mm", "cm", "km"),
    TIME: ("s", "ms", "us", "ns"),
    FREQUENCY: ("hz", "khz", "mhz", "ghz"),
    SPEED: ("mps", "kmh"),
}

#: scale spelling -> Qty, for suffix and annotation seeding.
_SCALE_QTY: Dict[str, Qty] = {
    scale: Qty(dim, scale) for dim, scales in SCALES.items() for scale in scales
}

#: Extra identifier-suffix spellings beyond the canonical scales.
_SUFFIX_QTY: Dict[str, Qty] = {
    **_SCALE_QTY,
    "radians": Qty(ANGLE, "rad"),
    "degrees": Qty(ANGLE, "deg"),
    "meters": Qty(LENGTH, "m"),
    "seconds": Qty(TIME, "s"),
}

#: Bare last-token words that imply a dimension but no scale.
_WORD_QTY: Dict[str, Qty] = {
    "angle": Qty(ANGLE),
    "azimuth": Qty(ANGLE),
    "elevation": Qty(ANGLE),
    "bearing": Qty(ANGLE),
    "heading": Qty(ANGLE),
    "wavelength": Qty(LENGTH),
    "distance": Qty(LENGTH),
    "frequency": Qty(FREQUENCY),
    "freq": Qty(FREQUENCY),
    "speed": Qty(SPEED),
    "duration": Qty(TIME),
    "delay": Qty(TIME),
}

#: Annotation spellings accepted by ``# replint: unit=...`` in this
#: pass, beyond the scales: dimension-only and dimensionless forms.
_ANNOTATION_EXTRA: Dict[str, Qty] = {
    ANGLE: Qty(ANGLE),
    LENGTH: Qty(LENGTH),
    TIME: Qty(TIME),
    FREQUENCY: Qty(FREQUENCY),
    SPEED: Qty(SPEED),
    "none": DIMENSIONLESS,
    "dimensionless": DIMENSIONLESS,
    "neutral": DIMENSIONLESS,
    "ratio": DIMENSIONLESS,
}


def parse_unit_annotation(text: str) -> Optional[Qty]:
    """Map a ``unit=`` annotation value to a lattice element.

    Returns None for spellings this pass does not know.  dB/linear
    spellings (``dB``, ``dBm``, ``linear``...) map to the ``power``
    dimension so both passes agree on one annotation vocabulary.
    """
    key = text.strip().lower()
    qty = _SUFFIX_QTY.get(key) or _ANNOTATION_EXTRA.get(key)
    if qty is not None:
        return qty
    power = power_unit_from_name(f"x_{key}") if key.isalnum() else None
    if power == POWER_NEUTRAL:
        return DIMENSIONLESS
    if power is not None:
        return Qty(POWER, power)
    # Defer to the units-pass annotation table for spellings like
    # "linear-power" that are not valid identifier suffixes.
    from repro.lint.flow.units import parse_annotation as parse_power_annotation

    power = parse_power_annotation(text)
    if power == POWER_NEUTRAL:
        return DIMENSIONLESS
    if power is not None:
        return Qty(POWER, power)
    return None


#: Full-word single-token spellings that still seed a scale: a local
#: named ``radians`` means radians, but a loop counter named ``s`` or
#: ``m`` is just a short name, not a unit claim.
_SINGLE_TOKEN_SCALES = frozenset(
    {"radians", "degrees", "meters", "seconds", "kmh", "mps"}
)


def qty_from_name(name: Optional[str]) -> Optional[Qty]:
    """Quantity implied by an identifier's naming convention."""
    if not name:
        return None
    tokens = name.lower().split("_")
    last = tokens[-1] if tokens[-1] else (tokens[-2] if len(tokens) > 1 else "")
    if len(tokens) > 1 or last in _SINGLE_TOKEN_SCALES:
        qty = _SUFFIX_QTY.get(last)
        if qty is not None:
            return qty
    elif last in _SCALE_QTY:
        return None  # a bare short name, deliberately not a unit claim
    qty = _WORD_QTY.get(last)
    if qty is not None:
        return qty
    power = power_unit_from_name(name)
    if power == POWER_NEUTRAL:
        return DIMENSIONLESS
    if power is not None:
        return Qty(POWER, power)
    return None


def conflicting_dim(a: Optional[Qty], b: Optional[Qty]) -> bool:
    """True when two quantities live in different dimensions."""
    if a is None or b is None or DIMENSIONLESS in (a, b):
        return False
    return a.dim != b.dim


def scale_mismatch(a: Optional[Qty], b: Optional[Qty]) -> bool:
    """True for same-dimension quantities at different known scales.

    The power dimension is exempt: dB-axis scale rules (dBm + dB is a
    *legal* dBm, say) belong to :mod:`repro.lint.flow.units`
    (RL010-RL012), and re-litigating them here would double-report.
    """
    if a is None or b is None or DIMENSIONLESS in (a, b):
        return False
    return (
        a.dim == b.dim
        and a.dim != POWER
        and a.scale is not None
        and b.scale is not None
        and a.scale != b.scale
    )


def join_qty(a: Optional[Qty], b: Optional[Qty]) -> Optional[Qty]:
    """Least upper bound for propagation (conflicts decay to unknown)."""
    if a is None or a == DIMENSIONLESS:
        return b
    if b is None or b == DIMENSIONLESS or a == b:
        return a
    if a.dim == b.dim:
        return a if a.scale == b.scale else Qty(a.dim)
    return None


# ---------------------------------------------------------------------------
# conversion and math-function signature tables
# ---------------------------------------------------------------------------

#: Single-argument conversion helpers: bare callable name ->
#: (input qty, output qty).  Bare names match both ``math.radians``
#: and ``np.radians``; project helpers are also resolved through the
#: call graph, which defers to this table by name.
CONVERSIONS: Dict[str, Tuple[Qty, Qty]] = {
    "radians": (Qty(ANGLE, "deg"), Qty(ANGLE, "rad")),
    "deg2rad": (Qty(ANGLE, "deg"), Qty(ANGLE, "rad")),
    "deg_to_rad": (Qty(ANGLE, "deg"), Qty(ANGLE, "rad")),
    "degrees": (Qty(ANGLE, "rad"), Qty(ANGLE, "deg")),
    "rad2deg": (Qty(ANGLE, "rad"), Qty(ANGLE, "deg")),
    "rad_to_deg": (Qty(ANGLE, "rad"), Qty(ANGLE, "deg")),
    "deg_wrap_180": (Qty(ANGLE, "deg"), Qty(ANGLE, "deg")),
    "normalize_angle": (Qty(ANGLE, "rad"), Qty(ANGLE, "rad")),
    "kmh_to_ms": (Qty(SPEED, "kmh"), Qty(SPEED, "mps")),
    "kmh_to_mps": (Qty(SPEED, "kmh"), Qty(SPEED, "mps")),
    "mps_to_kmh": (Qty(SPEED, "mps"), Qty(SPEED, "kmh")),
}

#: Trig that demands radians (RL050) and returns a dimensionless value.
TRIG_DEMANDS_RAD = frozenset({"sin", "cos", "tan"})

#: Inverse trig: returns radians.
_RETURNS_RAD = frozenset(
    {"atan2", "atan", "asin", "acos", "arcsin", "arccos", "arctan", "arctan2",
     "angle_between"}
)

#: Calls that return their first argument's quantity unchanged.
_PASSTHROUGH = frozenset(
    {"float", "abs", "fabs", "sum", "mean", "median", "min", "max", "maximum",
     "minimum", "asarray", "array", "clip", "round", "nanmean", "nansum",
     "nanmax", "nanmin", "sort", "sorted", "copysign", "fmod", "mod"}
)

#: Names that denote the speed of light (RL054) — an m/s speed.
LIGHTSPEED_NAMES = frozenset(
    {"c", "SPEED_OF_LIGHT", "LIGHT_SPEED", "C_MPS", "SPEED_OF_LIGHT_M_S",
     "LIGHT_SPEED_MPS", "speed_of_light"}
)

_LIGHTSPEED_UPPER = frozenset(name.upper() for name in LIGHTSPEED_NAMES)

#: The km/h <-> m/s magic constant detected by RL056's inline sweep.
_KMH_FACTOR = 3.6

#: 1/time scale -> frequency scale, for ``1 / period_s`` inference.
_INVERSE_TIME = {"s": "hz", "ms": "khz", "us": "mhz", "ns": "ghz"}

#: Unit-ambiguous last-token words RL053 asks public APIs to pin down.
AMBIGUOUS_PARAM_WORDS = frozenset(
    {"angle", "azimuth", "elevation", "bearing", "heading", "orientation",
     "rotation", "tilt", "speed", "velocity", "distance", "radius",
     "wavelength", "frequency", "freq", "delay", "interval", "duration",
     "period", "timeout", "dwell", "separation", "spacing"}
)

#: Rule codes that name work for ``--dim --worklist``.
DIM_WORKLIST_CODES = frozenset(
    {"RL050", "RL051", "RL052", "RL053", "RL054", "RL055", "RL056"}
)


def _callable_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_lightspeed(node: ast.AST) -> bool:
    # Case-folded: SPEED_OF_LIGHT the module constant and c_mps the
    # local spelling are the same quantity.
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and name.upper() in _LIGHTSPEED_UPPER:
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return 2.9e8 <= float(node.value) <= 3.1e8
    return False


def _is_const(node: ast.AST, value: float) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and float(node.value) == value
    )


# ---------------------------------------------------------------------------
# interprocedural summaries
# ---------------------------------------------------------------------------


class _Summaries:
    """Interprocedural state: declared/inferred quantities per function."""

    def __init__(self, table: SymbolTable):
        self.table = table
        self.returns: Dict[str, Optional[Qty]] = {}

    def declared_return(self, fn: FunctionInfo) -> Optional[Qty]:
        sig = CONVERSIONS.get(fn.name)
        if sig is not None:
            return sig[1]
        if fn.name in _RETURNS_RAD:
            return Qty(ANGLE, "rad")
        if fn.unit_annotation:
            return parse_unit_annotation(fn.unit_annotation)
        return qty_from_name(fn.name)

    def return_qty(self, fn: FunctionInfo) -> Optional[Qty]:
        declared = self.declared_return(fn)
        inferred = self.returns.get(fn.qualname)
        if declared is None:
            return inferred
        if (
            inferred is not None
            and declared.scale is None
            and inferred.dim == declared.dim
            and inferred.scale is not None
        ):
            # A scale-free declaration ("angle") refined by the body's
            # inferred scale ("angle:deg") keeps the best of both.
            return inferred
        return declared

    def param_qty(
        self, fn: FunctionInfo, param_name: str, module: Optional[ModuleInfo]
    ) -> Optional[Qty]:
        sig = CONVERSIONS.get(fn.name)
        if sig is not None and fn.call_params and fn.call_params[0].name == param_name:
            return sig[0]
        annotated = self._param_annotation(fn, param_name, module)
        if annotated is not None:
            return annotated
        return qty_from_name(param_name)

    def _param_annotation(
        self, fn: FunctionInfo, param_name: str, module: Optional[ModuleInfo]
    ) -> Optional[Qty]:
        """Unit from a ``# replint: unit=`` on the parameter's own line.

        Only multi-line signatures qualify: an annotation on the
        ``def`` line declares the *return* unit (the :mod:`units`
        grammar), so a parameter sharing that line never reads it.
        """
        if module is None:
            return None
        for arg in _ast_args(fn.node):
            if arg.arg != param_name or arg.lineno == fn.node.lineno:
                continue
            text = module.unit_annotations.get(arg.lineno)
            if text:
                return parse_unit_annotation(text)
        return None


def _ast_args(node: ast.AST) -> List[ast.arg]:
    args = node.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


# ---------------------------------------------------------------------------
# per-function inference
# ---------------------------------------------------------------------------


class _FunctionAnalysis:
    """Per-function environment builder and expression inferencer."""

    def __init__(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        summaries: _Summaries,
        sites: Dict[int, CallSite],
    ):
        self.fn = fn
        self.module = module
        self.summaries = summaries
        self.sites = sites
        self.env: Dict[str, Optional[Qty]] = {}
        for param in fn.params:
            qty = summaries.param_qty(fn, param.name, module)
            if qty is not None:
                self.env[param.name] = qty

    # -- expression inference ---------------------------------------

    def infer(self, node: ast.AST) -> Optional[Qty]:
        if isinstance(node, ast.Name):
            if node.id.upper() in _LIGHTSPEED_UPPER:
                return Qty(SPEED, "mps")
            return self.env.get(node.id) or qty_from_name(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr.upper() in _LIGHTSPEED_UPPER:
                return Qty(SPEED, "mps")
            return qty_from_name(node.attr)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return DIMENSIONLESS
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.IfExp):
            return join_qty(self.infer(node.body), self.infer(node.orelse))
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        return None

    def _infer_call(self, node: ast.Call) -> Optional[Qty]:
        name = _callable_name(node.func)
        if name in CONVERSIONS:
            return CONVERSIONS[name][1]
        if name in _RETURNS_RAD:
            return Qty(ANGLE, "rad")
        if name in TRIG_DEMANDS_RAD:
            return DIMENSIONLESS
        site = self.sites.get(id(node))
        if site is not None:
            qty = self.summaries.return_qty(site.callee)
            if qty is not None:
                return qty
        if name in _PASSTHROUGH and node.args:
            return self.infer(node.args[0])
        return qty_from_name(name)

    def _infer_binop(self, node: ast.BinOp) -> Optional[Qty]:
        left, right = self.infer(node.left), self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if conflicting_dim(left, right):
                return None
            return join_qty(left, right)
        if isinstance(node.op, ast.Mult):
            return self._infer_mult(left, right)
        if isinstance(node.op, ast.Div):
            return self._infer_div(node, left, right)
        return None

    def _infer_mult(self, left: Optional[Qty], right: Optional[Qty]) -> Optional[Qty]:
        for a, b in ((left, right), (right, left)):
            if a is None or b is None:
                continue
            if a.dim == SPEED and b.dim == TIME:
                if a.scale == "mps" and b.scale == "s":
                    return Qty(LENGTH, "m")
                return Qty(LENGTH)
            if a.dim == FREQUENCY and b.dim == TIME:
                return DIMENSIONLESS  # cycles: a phase count
        if left == DIMENSIONLESS:
            return right
        if right == DIMENSIONLESS:
            return left
        return None

    def _infer_div(
        self, node: ast.BinOp, left: Optional[Qty], right: Optional[Qty]
    ) -> Optional[Qty]:
        # Inline `x_kmh / 3.6` converts correctly even though RL056
        # asks for the named helper; infer the converted scale so
        # downstream checks see the truth.
        if _is_const(node.right, _KMH_FACTOR) and left is not None and left.dim == SPEED:
            return Qty(SPEED, "mps") if left.scale == "kmh" else Qty(SPEED)
        if left is None or right is None:
            return None
        if left.dim == LENGTH and right.dim == TIME:
            if left.scale == "m" and right.scale == "s":
                return Qty(SPEED, "mps")
            return Qty(SPEED)
        if left.dim == LENGTH and right.dim == SPEED:
            if left.scale == "m" and right.scale == "mps":
                return Qty(TIME, "s")
            return Qty(TIME)
        if left.dim == SPEED and right.dim == FREQUENCY:
            # c / f: the wavelength idiom.
            if left.scale == "mps" and right.scale == "hz":
                return Qty(LENGTH, "m")
            return Qty(LENGTH)
        if left == DIMENSIONLESS and right.dim == TIME:
            scale = _INVERSE_TIME.get(right.scale or "")
            return Qty(FREQUENCY, scale)
        if left.dim == right.dim and left != DIMENSIONLESS:
            if left.scale == right.scale and left.scale is not None:
                return DIMENSIONLESS
            return None
        if right == DIMENSIONLESS:
            return left
        return None

    # -- environment construction -----------------------------------

    def build_env(self, iterations: int = 3) -> None:
        assigns: List[Tuple[str, ast.AST, int]] = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assigns.append((target.id, node.value, node.lineno))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns.append((node.target.id, node.value, node.lineno))
            elif isinstance(node, (ast.For, ast.comprehension)):
                # Loop targets take the element quantity of a
                # homogeneous iterable: `for s in speeds_kmh` binds a
                # km/h speed, not a bare "s".
                if isinstance(node.target, ast.Name):
                    assigns.append(
                        (node.target.id, node.iter, getattr(node, "lineno", 0))
                    )
        for _ in range(iterations):
            changed = False
            for name, value, lineno in assigns:
                annotated = self.module.unit_annotations.get(lineno)
                if annotated:
                    qty: Optional[Qty] = parse_unit_annotation(annotated)
                else:
                    qty = join_qty(qty_from_name(name), self.infer(value))
                if qty is not None:
                    merged = join_qty(self.env.get(name), qty)
                    if merged != self.env.get(name):
                        self.env[name] = merged
                        changed = True
            if not changed:
                break

    # -- summary ----------------------------------------------------

    def returned_qtys(self) -> List[Tuple[ast.Return, Optional[Qty]]]:
        out: List[Tuple[ast.Return, Optional[Qty]]] = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                    out.append((node, None))
                else:
                    out.append((node, self.infer(node.value)))
        return out


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------


class DimPass:
    """Drives inference to a fixpoint, then emits RL050-RL056."""

    def __init__(self, table: SymbolTable, graph: CallGraph, config, reporter):
        self.table = table
        self.graph = graph
        self.config = config
        self.reporter = reporter
        self.summaries = _Summaries(table)
        self._sites_by_fn: Dict[str, Dict[int, CallSite]] = {}
        for site in graph.sites:
            if site.caller is not None:
                self._sites_by_fn.setdefault(site.caller.qualname, {})[
                    id(site.node)
                ] = site

    def _analysis(self, fn: FunctionInfo) -> Optional[_FunctionAnalysis]:
        module = self.table.modules.get(fn.module)
        if module is None:
            return None
        analysis = _FunctionAnalysis(
            fn, module, self.summaries, self._sites_by_fn.get(fn.qualname, {})
        )
        analysis.build_env()
        return analysis

    def run(self) -> None:
        functions = sorted(self.table.functions.values(), key=lambda f: f.qualname)
        # Fixpoint on return summaries (bounded; the lattice is tiny).
        for _ in range(4):
            changed = False
            for fn in functions:
                analysis = self._analysis(fn)
                if analysis is None:
                    continue
                qtys = [
                    q for _, q in analysis.returned_qtys()
                    if q not in (None, DIMENSIONLESS)
                ]
                inferred: Optional[Qty] = None
                for qty in qtys:
                    inferred = join_qty(inferred, qty) if inferred is not None else qty
                if self.summaries.returns.get(fn.qualname) != inferred:
                    self.summaries.returns[fn.qualname] = inferred
                    changed = True
            if not changed:
                break
        self._check_annotations()
        for fn in functions:
            if fn.name in CONVERSIONS:
                # Conversion helpers legitimately cross scales inside
                # their bodies — they ARE the boundary.
                continue
            analysis = self._analysis(fn)
            if analysis is None:
                continue
            self._check_body(fn, analysis)
            self._check_returns(fn, analysis)
            self._check_public_api(fn)
        self._check_call_arguments()

    # -- annotation hygiene (reported under RL053) ------------------

    def _check_annotations(self) -> None:
        for module in sorted(self.table.modules.values(), key=lambda m: m.name):
            for lineno, text in sorted(module.unit_annotations.items()):
                if parse_unit_annotation(text) is None:
                    marker = ast.Pass()
                    marker.lineno = lineno
                    marker.col_offset = 0
                    self.reporter.report(
                        module,
                        marker,
                        "RL053",
                        f"unknown unit {text!r} in '# replint: unit=' "
                        "annotation — known spellings are the scales "
                        "(rad, deg, m, s, ms, us, hz, ghz, mps, kmh, ...), "
                        "dimensions (angle, length, time, frequency, speed), "
                        "dB/linear power units, and 'dimensionless'",
                        context=module.name,
                    )

    # -- RL050/RL051/RL054/RL055/RL056 body walk --------------------

    def _check_body(self, fn: FunctionInfo, analysis: _FunctionAnalysis) -> None:
        module = self.table.modules[fn.module]
        flagged: set = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_additive(fn, analysis, module, node, flagged)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                self._check_mult(fn, analysis, module, node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                self._check_div(fn, analysis, module, node)
            elif isinstance(node, ast.Compare):
                self._check_compare(fn, analysis, module, node, flagged)
            elif isinstance(node, ast.Call):
                self._check_call_expr(fn, analysis, module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_wavelength_assign(fn, analysis, module, node)

    def _pair_conflict(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        node: ast.AST,
        a: Optional[Qty],
        b: Optional[Qty],
        what: str,
        flagged: set,
    ) -> None:
        if id(node) in flagged:
            return
        if conflicting_dim(a, b) and POWER not in (a.dim, b.dim):
            flagged.add(id(node))
            self.reporter.report(
                module,
                node,
                "RL051",
                f"{what} mixes dimensions: {a.render()} vs {b.render()} — "
                "these quantities cannot be combined without a conversion",
                context=fn.qualname,
            )
        elif scale_mismatch(a, b):
            flagged.add(id(node))
            if a.dim == ANGLE:
                self.reporter.report(
                    module,
                    node,
                    "RL050",
                    f"{what} mixes degree and radian scales "
                    f"({a.render()} vs {b.render()}) — convert with "
                    "math.radians/math.degrees first",
                    context=fn.qualname,
                )
            else:
                self.reporter.report(
                    module,
                    node,
                    "RL051",
                    f"{what} mixes {a.dim} scales ({a.render()} vs "
                    f"{b.render()}) — rescale one side first",
                    context=fn.qualname,
                )

    def _check_additive(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.BinOp,
        flagged: set,
    ) -> None:
        left, right = analysis.infer(node.left), analysis.infer(node.right)
        self._pair_conflict(fn, module, node, left, right, "arithmetic", flagged)

    def _check_compare(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.Compare,
        flagged: set,
    ) -> None:
        operands = [node.left, *node.comparators]
        for op, a_node, b_node in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                continue
            a, b = analysis.infer(a_node), analysis.infer(b_node)
            self._pair_conflict(fn, module, node, a, b, "comparison", flagged)
        if not module_in(fn.module, self.config.dim_packages):
            return
        for op, a_node in zip(node.ops, operands):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                continue
            for side in (a_node,):
                sub = _raw_angle_difference(side)
                if sub is None:
                    continue
                a, b = analysis.infer(sub.left), analysis.infer(sub.right)
                if (
                    a is not None
                    and b is not None
                    and a.dim == ANGLE
                    and b.dim == ANGLE
                    and not scale_mismatch(a, b)
                    and id(node) not in flagged
                ):
                    flagged.add(id(node))
                    self.reporter.report(
                        module,
                        node,
                        "RL055",
                        "comparison on a raw angle difference — wrap "
                        "through normalize_angle/angle_between (radians) "
                        "or deg_wrap_180 (degrees) or the ±180°/±π seam "
                        "misreads nearly-aligned headings as opposite",
                        context=fn.qualname,
                    )

    def _check_mult(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.BinOp,
    ) -> None:
        for a, b in ((node.left, node.right), (node.right, node.left)):
            if _is_lightspeed(a):
                other = analysis.infer(b)
                if other is not None and other.dim == FREQUENCY:
                    self.reporter.report(
                        module,
                        node,
                        "RL054",
                        "c multiplied by a frequency has dimension "
                        "m/s·Hz — the wavelength is c/f, not c*f",
                        context=fn.qualname,
                    )
                    return
        # `x_mps * 3.6` / `(x*3.6)/3.6` handled in the Div check.

    def _check_div(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.BinOp,
    ) -> None:
        if _is_const(node.right, _KMH_FACTOR):
            left = analysis.infer(node.left)
            if (
                isinstance(node.left, ast.BinOp)
                and isinstance(node.left.op, ast.Mult)
                and (
                    _is_const(node.left.right, _KMH_FACTOR)
                    or _is_const(node.left.left, _KMH_FACTOR)
                )
            ):
                self.reporter.report(
                    module,
                    node,
                    "RL056",
                    "multiplying by 3.6 then dividing by 3.6 cancels — "
                    "a redundant km/h round trip",
                    context=fn.qualname,
                )
                return
            if left is not None and left.dim == SPEED:
                self.reporter.report(
                    module,
                    node,
                    "RL056",
                    "inline speed conversion via the 3.6 magic constant — "
                    "use repro.geometry.kmh_to_ms / mps_to_kmh so the "
                    "scale change is visible to the analyzer",
                    context=fn.qualname,
                )

    def _check_call_expr(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.Call,
    ) -> None:
        name = _callable_name(node.func)
        if name in TRIG_DEMANDS_RAD and len(node.args) == 1:
            qty = analysis.infer(node.args[0])
            if qty is not None and qty.dim == ANGLE and qty.scale == "deg":
                self.reporter.report(
                    module,
                    node,
                    "RL050",
                    f"{name}() expects radians but its argument is inferred "
                    "as degrees — convert with math.radians first",
                    context=fn.qualname,
                )
            return
        if name in CONVERSIONS and len(node.args) >= 1:
            self._check_conversion_call(fn, analysis, module, node, name)
            return
        self._check_schedule_delay(fn, analysis, module, node)

    def _check_conversion_call(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.Call,
        name: str,
    ) -> None:
        expected_in, out = CONVERSIONS[name]
        arg = node.args[0]
        inner_name = _callable_name(arg.func) if isinstance(arg, ast.Call) else None
        if inner_name in CONVERSIONS:
            inner_in, inner_out = CONVERSIONS[inner_name]
            if inner_in == out and inner_out == expected_in:
                self.reporter.report(
                    module,
                    node,
                    "RL056",
                    f"{name}({inner_name}(x)) is a round trip — the two "
                    "conversions cancel",
                    context=fn.qualname,
                )
                return
            if inner_out != expected_in:
                self.reporter.report(
                    module,
                    node,
                    "RL056",
                    f"{name}() expects {expected_in.render()} but "
                    f"{inner_name}() already produced {inner_out.render()} "
                    "— a double conversion",
                    context=fn.qualname,
                )
                return
        qty = analysis.infer(arg)
        if qty is None or qty == DIMENSIONLESS:
            return
        if qty == out and expected_in != out:
            self.reporter.report(
                module,
                node,
                "RL056",
                f"{name}() expects {expected_in.render()} but its argument "
                f"is already {out.render()} — a double conversion",
                context=fn.qualname,
            )
        elif conflicting_dim(qty, expected_in):
            self.reporter.report(
                module,
                node,
                "RL051",
                f"{name}() expects {expected_in.render()} but receives "
                f"{qty.render()} — a cross-dimension conversion",
                context=fn.qualname,
            )

    def _check_schedule_delay(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.Call,
    ) -> None:
        """``sim.schedule(delay, ...)`` runs on a seconds clock (RL052)."""
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in SCHEDULE_METHODS:
            return
        receiver = _receiver_name(func.value)
        if receiver is None or receiver.rsplit(".", 1)[-1] not in SIM_RECEIVER_NAMES:
            return
        if not node.args:
            return
        qty = analysis.infer(node.args[0])
        if qty is not None and qty.dim == TIME and qty.scale not in (None, "s"):
            self.reporter.report(
                module,
                node.args[0],
                "RL052",
                f"{func.attr}() takes seconds of sim time but the delay is "
                f"inferred as {qty.render()} — rescale to seconds",
                context=fn.qualname,
            )

    def _check_wavelength_assign(
        self,
        fn: FunctionInfo,
        analysis: _FunctionAnalysis,
        module: ModuleInfo,
        node: ast.AST,
    ) -> None:
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1 or node.value is None:
                return
            target, value = node.targets[0], node.value
        else:
            if node.value is None:
                return
            target, value = node.target, node.value
        if not isinstance(target, ast.Name):
            return
        name = target.id.lower()
        if "wavelength" not in name and name.split("_")[0] not in ("lam", "lambda"):
            return
        qty = analysis.infer(value)
        if qty is not None and qty.dim == FREQUENCY:
            self.reporter.report(
                module,
                node,
                "RL054",
                f"'{target.id}' is assigned a {qty.render()} value — a "
                "wavelength is a length (c/f), not a frequency",
                context=fn.qualname,
            )

    # -- RL052 at resolved call boundaries --------------------------

    def _check_call_arguments(self) -> None:
        for site in self.graph.sites:
            if site.kind != "call":
                continue
            caller = site.caller
            if caller is None or caller.name in CONVERSIONS:
                continue
            if site.callee.name in CONVERSIONS:
                continue  # handled syntactically in _check_conversion_call
            analysis = self._analysis(caller)
            if analysis is None:
                continue
            bound, _exhaustive = bind_arguments(site)
            module = self.table.modules[caller.module]
            callee_module = self.table.modules.get(site.callee.module)
            for param_name, arg in bound.items():
                expected = self.summaries.param_qty(
                    site.callee, param_name, callee_module
                )
                actual = analysis.infer(arg)
                if scale_mismatch(expected, actual):
                    self.reporter.report(
                        module,
                        arg,
                        "RL052",
                        f"argument '{param_name}' of {site.callee.qualname} "
                        f"expects {expected.render()} but receives "
                        f"{actual.render()} — convert at the boundary",
                        context=caller.qualname,
                    )
                elif conflicting_dim(expected, actual) and POWER not in (
                    expected.dim,
                    actual.dim,
                ):
                    self.reporter.report(
                        module,
                        arg,
                        "RL051",
                        f"argument '{param_name}' of {site.callee.qualname} "
                        f"expects {expected.render()} but receives "
                        f"{actual.render()} — a cross-dimension argument",
                        context=caller.qualname,
                    )

    # -- RL052 at return boundaries ---------------------------------

    def _check_returns(self, fn: FunctionInfo, analysis: _FunctionAnalysis) -> None:
        declared = self.summaries.declared_return(fn)
        if declared in (None, DIMENSIONLESS):
            return
        module = self.table.modules[fn.module]
        for node, qty in analysis.returned_qtys():
            if qty in (None, DIMENSIONLESS):
                continue
            if scale_mismatch(declared, qty):
                self.reporter.report(
                    module,
                    node,
                    "RL052",
                    f"{fn.qualname} declares a {declared.render()} return "
                    f"but this return is inferred as {qty.render()}",
                    context=fn.qualname,
                )
            elif conflicting_dim(declared, qty) and POWER not in (
                declared.dim,
                qty.dim,
            ):
                self.reporter.report(
                    module,
                    node,
                    "RL051",
                    f"{fn.qualname} declares a {declared.render()} return "
                    f"but this return is inferred as {qty.render()} — a "
                    "cross-dimension return",
                    context=fn.qualname,
                )

    # -- RL053 ------------------------------------------------------

    def _check_public_api(self, fn: FunctionInfo) -> None:
        if not module_in(fn.module, self.config.dim_packages):
            return
        if not fn.is_public or fn.name.startswith("__"):
            return
        module = self.table.modules.get(fn.module)
        for param in fn.call_params:
            tokens = param.name.lower().split("_")
            if tokens[-1] not in AMBIGUOUS_PARAM_WORDS:
                continue
            if param.annotation and not any(
                token in param.annotation for token in ("float", "int", "ndarray")
            ):
                continue  # non-numeric parameters carry no scalar unit
            if self.summaries._param_annotation(fn, param.name, module) is not None:
                continue
            self.reporter.report(
                module,
                fn.node,
                "RL053",
                f"public {fn.module} API parameter '{param.name}' is "
                "unit-ambiguous — add a scale suffix (_rad/_deg, _m, _s, "
                "_hz, _mps/_kmh) or a '# replint: unit=...' annotation on "
                "the parameter's line",
                context=fn.qualname,
            )


def _receiver_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _receiver_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return None


def _raw_angle_difference(node: ast.AST) -> Optional[ast.BinOp]:
    """The ``a - b`` inside ``abs(a - b)`` or a bare difference, if any."""
    if (
        isinstance(node, ast.Call)
        and _callable_name(node.func) in ("abs", "fabs")
        and len(node.args) == 1
    ):
        node = node.args[0]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
        return node
    return None


__all__ = [
    "AMBIGUOUS_PARAM_WORDS",
    "CONVERSIONS",
    "DIM_WORKLIST_CODES",
    "DIMENSIONLESS",
    "DimPass",
    "LIGHTSPEED_NAMES",
    "Qty",
    "SCALES",
    "TRIG_DEMANDS_RAD",
    "conflicting_dim",
    "join_qty",
    "parse_unit_annotation",
    "qty_from_name",
    "scale_mismatch",
]
