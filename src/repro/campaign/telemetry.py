"""Per-run counters, timers, and the JSON run manifest.

Every campaign run emits a manifest next to its results: how many
scenarios ran, how many were served from cache, how many failed (and
why), wall-clock versus summed worker time, and the discrete-event
simulator's throughput (events simulated per second) aggregated over
all cells that report it.  The manifest is the run's flight recorder —
the thing you read six months later to judge whether a result set is
trustworthy and how expensive a re-run would be.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_FILENAME = "manifest.json"


@dataclass
class RunTelemetry:
    """Counters and timers for one campaign run."""

    campaign: str = ""
    campaign_digest: str = ""
    workers: int = 1
    scenarios_total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    timeouts: int = 0
    retries: int = 0
    wall_clock_s: float = 0.0
    worker_time_s: float = 0.0
    events_simulated: int = 0
    shard_sizes: List[int] = field(default_factory=list)
    failures: List[Dict] = field(default_factory=list)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    _t0: Optional[float] = field(default=None, repr=False)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self.started_unix = time.time()
        self._t0 = time.perf_counter()

    def finish(self) -> None:
        self.finished_unix = time.time()
        if self._t0 is not None:
            self.wall_clock_s = time.perf_counter() - self._t0

    # -- recording -------------------------------------------------------------

    def record_cached(self) -> None:
        self.cached += 1

    def record_completed(self, elapsed_s: float, events: int = 0) -> None:
        self.completed += 1
        self.worker_time_s += elapsed_s
        self.events_simulated += events

    def record_failure(
        self,
        digest: str,
        experiment: str,
        error: str,
        attempts: int,
        timed_out: bool = False,
    ) -> None:
        self.failed += 1
        if timed_out:
            self.timeouts += 1
        self.failures.append(
            {
                "digest": digest,
                "experiment": experiment,
                "error": error,
                "attempts": attempts,
                "timed_out": timed_out,
            }
        )

    def record_retry(self) -> None:
        self.retries += 1

    # -- derived ---------------------------------------------------------------

    def events_per_second(self) -> float:
        """DES events per summed worker-second (0 when nothing ran)."""
        if self.worker_time_s <= 0:
            return 0.0
        return self.events_simulated / self.worker_time_s

    def cache_hit_ratio(self) -> float:
        if self.scenarios_total <= 0:
            return 0.0
        return self.cached / self.scenarios_total

    def speedup_vs_serial(self) -> float:
        """Summed worker time over wall clock (parallel efficiency)."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.worker_time_s / self.wall_clock_s

    # -- manifest --------------------------------------------------------------

    def as_manifest(self) -> Dict:
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "campaign": self.campaign,
            "campaign_digest": self.campaign_digest,
            "workers": self.workers,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "scenarios": {
                "total": self.scenarios_total,
                "completed": self.completed,
                "cached": self.cached,
                "failed": self.failed,
                "timeouts": self.timeouts,
                "retries": self.retries,
            },
            "timing": {
                "wall_clock_s": self.wall_clock_s,
                "worker_time_s": self.worker_time_s,
                "speedup_vs_serial": self.speedup_vs_serial(),
            },
            "des": {
                "events_simulated": self.events_simulated,
                "events_per_second": self.events_per_second(),
            },
            "cache_hit_ratio": self.cache_hit_ratio(),
            "shard_sizes": list(self.shard_sizes),
            "failures": list(self.failures),
        }

    def write_manifest(self, path: PathLike) -> pathlib.Path:
        """Write the JSON manifest; returns the path written."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_manifest(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        parts = [
            f"{self.scenarios_total} scenarios",
            f"{self.completed} computed",
            f"{self.cached} cached",
            f"{self.failed} failed",
            f"wall {self.wall_clock_s:.2f} s",
        ]
        if self.events_simulated:
            parts.append(f"{self.events_per_second():,.0f} DES events/s")
        return ", ".join(parts)


def read_manifest(path: PathLike) -> Dict:
    """Load a manifest written by :meth:`RunTelemetry.write_manifest`."""
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    version = manifest.get("schema_version")
    if version != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported manifest schema version {version} "
            f"(expected {MANIFEST_SCHEMA_VERSION})"
        )
    return manifest
