"""Ablation: ray-tracing reflection order in the conference room.

The paper's design principle: geometric MAC designs "should extend
this geometric approach to include up to two signal reflections off
walls".  This ablation measures how much angular-profile energy and
how many lobes first- and second-order reflections each contribute.
"""

import numpy as np

from repro.experiments.reflections import measure_room_profiles


def run_orders():
    return {
        order: measure_room_profiles("d5000", steps=60, max_order=order)
        for order in (0, 1, 2)
    }


def test_reflection_order_contribution(benchmark, report):
    results = benchmark.pedantic(run_orders, rounds=1, iterations=1)
    report.add("Ablation: reflection order in the Figure 4 room (D5000 link)")
    report.add(f"{'max order':>10} {'total lobes':>12} {'reflection lobes':>17}")
    totals = {}
    for order, res in results.items():
        total = sum(len(v) for v in res.lobes.values())
        refl = res.total_reflection_lobes()
        totals[order] = (total, refl)
        report.add(f"{order:>10} {total:>12} {refl:>17}")

    # LOS-only: no reflection lobes at all.
    assert totals[0][1] == 0
    # First order adds reflections; second order adds more (the
    # paper's second-order finding at location B).
    assert totals[1][1] > 0
    assert totals[2][1] >= totals[1][1]
    # Mean received power never decreases with added orders.
    mean_power = {
        order: np.mean([p.power_dbm.max() for p in res.profiles.values()])
        for order, res in results.items()
    }
    assert mean_power[1] >= mean_power[0] - 0.1
    assert mean_power[2] >= mean_power[1] - 0.1
