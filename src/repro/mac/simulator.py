"""Discrete-event simulation core: event loop, stations, and medium.

The simulator is deliberately small: a heap-based event loop, a
:class:`Station` abstraction that knows where a device is and how much
antenna gain it has toward any direction, a :class:`CouplingModel` that
turns a (transmitter, receiver) pair into a path gain, and a
:class:`Medium` that tracks concurrent transmissions, computes SINR,
and decides frame delivery.

Interference physics: powers of concurrent transmitters add linearly at
a receiver, and a frame's delivery is judged against the *worst* SINR
it experienced while on the air (a collision anywhere in the frame can
corrupt it).  Carrier sensing is energy detection at the sensing
station through its own receive pattern — which is precisely why side
lobes matter: a D5000 hears (and is heard by) an interferer through
whatever its pattern leaks in that direction.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro import obs
from repro.analysis.dbmath import db_to_linear_scalar, linear_to_db_scalar
from repro.obs import clock
from repro.obs.prof import handler_qualname
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind, FrameRecord
from repro.phy.antenna import AntennaPattern
from repro.phy.channel import LinkBudget, friis_path_loss_db, oxygen_absorption_db
from repro.phy.mcs import frame_error_probability, mcs_by_index

#: Received power needed to decode a control frame's duration field and
#: honor its NAV (control-PHY sensitivity: MCS-0 threshold over the
#: noise floor of the default budget, ~-83 dBm).
NAV_DECODE_THRESHOLD_DBM = -82.0

#: Optional runtime sim-time auditor (a ``repro.sanitize.SimTimeAudit``)
#: installed by :func:`repro.sanitize.enable` and removed by
#: :func:`repro.sanitize.disable`.  ``None`` when the sanitizer is off,
#: so the hot path pays a single global read per event and nothing else.
_AUDIT = None


class Station:
    """A radio endpoint: position, orientation, patterns, power.

    Args:
        name: Unique identifier within a simulation.
        position: Location on the floor plan, meters.
        orientation_rad: Direction the device's broadside faces
            (global frame, CCW from +x).
        data_pattern: Pattern used for data transmission/reception
            (the trained directional beam).
        control_pattern: Pattern used for control frames (beacons,
            discovery) — wider and transmitted at higher power.
        tx_power_dbm: Conducted power for data frames.
        control_power_boost_db: Extra power for control frames; the
            paper notes control frames arrive "with higher power and
            wider antenna patterns".
        cca_threshold_dbm: Energy-detection threshold for carrier
            sensing (WiGig only; WiHD ignores it).
        channel: 60 GHz channel index the station operates on.  The
            devices under test support channels centered at 60.48 and
            62.64 GHz (Section 3.1); stations on different channels
            neither interfere nor hear each other — moving an
            interferer to the other channel is the obvious mitigation
            for everything Section 4.4 measures.
    """

    def __init__(
        self,
        name: str,
        position: Vec2,
        orientation_rad: float = 0.0,
        data_pattern: Optional[AntennaPattern] = None,
        control_pattern: Optional[AntennaPattern] = None,
        tx_power_dbm: float = 10.0,
        control_power_boost_db: float = 5.0,
        cca_threshold_dbm: float = -60.0,
        channel: int = 2,
    ):
        if not name:
            raise ValueError("station needs a non-empty name")
        self.name = name
        self.channel = channel
        self.position = position
        self.orientation_rad = orientation_rad
        self.data_pattern = data_pattern if data_pattern is not None else AntennaPattern.isotropic()
        self.control_pattern = (
            control_pattern if control_pattern is not None else AntennaPattern.isotropic()
        )
        self.tx_power_dbm = tx_power_dbm
        self.control_power_boost_db = control_power_boost_db
        self.cca_threshold_dbm = cca_threshold_dbm

    def gain_toward_dbi(self, target: Vec2, control: bool = False) -> float:
        """Antenna gain toward a point, in the device's local frame."""
        bearing = (target - self.position).angle() - self.orientation_rad
        pattern = self.control_pattern if control else self.data_pattern
        return pattern.gain_dbi(bearing)

    def tx_power_for(self, kind: FrameKind) -> float:  # replint: unit=dBm
        """Conducted power used for a frame of the given kind."""
        if kind.uses_wide_pattern():
            return self.tx_power_dbm + self.control_power_boost_db
        return self.tx_power_dbm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Station({self.name!r} @ ({self.position.x:.2f}, {self.position.y:.2f}))"


class CouplingModel(Protocol):
    """Maps a transmitter/receiver station pair to a path gain in dB.

    The returned value is *gain* (typically a large negative number):
    ``rx_power_dbm = tx_power_dbm + coupling_db``.  ``control`` selects
    the wide control patterns at both ends.
    """

    def coupling_db(self, tx: Station, rx: Station, control: bool = False) -> float:
        ...  # pragma: no cover


class FreeSpaceCoupling:
    """Friis path loss plus both stations' antenna patterns."""

    def __init__(self, frequency_hz: float, extra_loss_db: float = 0.0):
        self._freq = frequency_hz
        self._extra = extra_loss_db

    def coupling_db(self, tx: Station, rx: Station, control: bool = False) -> float:
        distance = tx.position.distance_to(rx.position)
        if distance <= 0:
            raise ValueError("stations are co-located")
        loss = friis_path_loss_db(distance, self._freq) + oxygen_absorption_db(
            distance, self._freq
        )
        return (
            tx.gain_toward_dbi(rx.position, control)
            + rx.gain_toward_dbi(tx.position, control)
            - loss
            - self._extra
        )


class StaticCoupling:
    """Explicit coupling table, for tests and handcrafted scenarios.

    Keys are ``(tx_name, rx_name)``; missing pairs fall back to a
    default isolation value.
    """

    def __init__(self, table: Dict[Tuple[str, str], float], default_db: float = -200.0):
        self._table = dict(table)
        self._default = default_db

    def coupling_db(self, tx: Station, rx: Station, control: bool = False) -> float:
        return self._table.get((tx.name, rx.name), self._default)

    def set(self, tx_name: str, rx_name: str, value_db: float) -> None:
        self._table[(tx_name, rx_name)] = value_db


class Simulator:
    """A minimal deterministic discrete-event loop."""

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.rng = np.random.default_rng(seed)
        #: Events processed so far — the campaign telemetry reads this
        #: to report DES events simulated per worker-second.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay_s: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay_s`` seconds of simulated time.

        Rejects NaN/inf delays outright: ``delay_s < 0`` is False for
        NaN, so a NaN timestamp would otherwise enter the heap and
        poison the ordering of every later event.
        """
        if _AUDIT is not None:
            _AUDIT.on_schedule(self, delay_s)
        if not math.isfinite(delay_s):
            raise ValueError(
                f"cannot schedule with a non-finite delay ({delay_s!r})"
            )
        if delay_s < 0:
            raise ValueError(f"cannot schedule into the past (delay {delay_s:g} s)")
        heapq.heappush(self._queue, (self._now + delay_s, next(self._counter), callback))

    def schedule_at(self, time_s: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at an absolute simulation time."""
        if not math.isfinite(time_s):
            raise ValueError(
                f"cannot schedule at a non-finite time ({time_s!r})"
            )
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule into the past: requested t={time_s:g} s "
                f"but simulation time is already t={self._now:g} s"
            )
        self.schedule(time_s - self._now, callback)

    def run_until(self, end_s: float) -> None:
        """Process events until simulated time reaches ``end_s``.

        When profiling is enabled each event's wall time is attributed
        to its callback qualname (``obs.record_handler``); the flag is
        read once before the loop so the disabled hot path stays a
        single truthiness check per ``run_until`` call, not per event.
        """
        start_events = self.events_processed
        profiling = obs.STATE.profiling
        with obs.span("mac.simulator.run", end_s=end_s):
            while self._queue and self._queue[0][0] <= end_s:
                time, _, callback = heapq.heappop(self._queue)
                if _AUDIT is not None:
                    _AUDIT.on_event(self, time)
                self._now = time
                self.events_processed += 1
                if profiling:
                    t0 = clock.perf_counter_ns()
                    callback()
                    obs.record_handler(
                        handler_qualname(callback), clock.perf_counter_ns() - t0
                    )
                else:
                    callback()
            self._now = max(self._now, end_s)
        if obs.STATE.metrics:
            obs.add("mac.simulator.events", self.events_processed - start_events)


@dataclass
class _ActiveTransmission:
    """Bookkeeping for a frame currently on the air."""

    record: FrameRecord
    tx: Station
    rx: Optional[Station]
    signal_dbm: Optional[float]  # at the intended receiver
    max_interference_mw: float = 0.0


class Medium:
    """The shared 60 GHz channel.

    Tracks active transmissions, accumulates interference seen by each
    in-flight frame, decides delivery at frame end, and offers carrier
    sensing plus become-idle callbacks to CSMA stations.

    All frames ever transmitted are appended to :attr:`history`, which
    the measurement models and analyses consume.
    """

    def __init__(
        self,
        sim: Simulator,
        coupling: CouplingModel,
        budget: LinkBudget = LinkBudget(),
        capture_history: bool = True,
    ):
        self._sim = sim
        self._coupling = coupling
        self._budget = budget
        self._active: List[_ActiveTransmission] = []
        self._stations: Dict[str, Station] = {}
        self._idle_waiters: List[Tuple[Station, Callable[[], None]]] = []
        # Virtual carrier sensing: per-station NAV expiry times set by
        # decoded RTS/CTS duration fields.
        self._nav_expiry: Dict[str, float] = {}
        self.history: List[FrameRecord] = []
        self._capture_history = capture_history

    @property
    def budget(self) -> LinkBudget:
        return self._budget

    @property
    def coupling(self) -> CouplingModel:
        """The coupling model resolving station path gains."""
        return self._coupling

    def register(self, station: Station) -> None:
        """Add a station to the simulation."""
        if station.name in self._stations:
            raise ValueError(f"duplicate station name {station.name!r}")
        self._stations[station.name] = station

    def station(self, name: str) -> Station:
        return self._stations[name]

    # -- power bookkeeping ---------------------------------------------

    def _rx_power_dbm(self, tx: Station, rx: Station, kind: FrameKind) -> float:
        control = kind.uses_wide_pattern()
        return tx.tx_power_for(kind) + self._coupling.coupling_db(tx, rx, control)

    def sensed_power_dbm(self, station: Station) -> float:
        """Total in-band power the station currently detects (dBm)."""
        total_mw = 0.0
        for act in self._active:
            if act.tx is station or act.tx.channel != station.channel:
                continue
            p = self._rx_power_dbm(act.tx, station, act.record.kind)
            total_mw += db_to_linear_scalar(p)
        return linear_to_db_scalar(total_mw)

    def channel_busy_for(self, station: Station) -> bool:
        """CCA verdict: energy detection OR an unexpired NAV."""
        if self._nav_expiry.get(station.name, 0.0) > self._sim.now:
            return True
        return self.sensed_power_dbm(station) >= station.cca_threshold_dbm

    def nav_remaining_s(self, station: Station) -> float:
        """Seconds of virtual-carrier reservation left for a station."""
        return max(0.0, self._nav_expiry.get(station.name, 0.0) - self._sim.now)

    def wait_for_idle(self, station: Station, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once CCA reports idle for the station.

        Fires immediately (via a zero-delay event) if already idle.
        """
        if not self.channel_busy_for(station):
            self._sim.schedule(0.0, callback)
            return
        self._idle_waiters.append((station, callback))
        # Frame-end events re-check waiters; a NAV can outlive every
        # frame, so also schedule a wake-up at its expiry.
        nav_left = self.nav_remaining_s(station)
        if nav_left > 0:
            self._sim.schedule(nav_left + 1e-9, self._notify_idle_waiters)

    def _notify_idle_waiters(self) -> None:
        still_waiting: List[Tuple[Station, Callable[[], None]]] = []
        for station, callback in self._idle_waiters:
            if self.channel_busy_for(station):
                still_waiting.append((station, callback))
            else:
                self._sim.schedule(0.0, callback)
        self._idle_waiters = still_waiting

    # -- transmission lifecycle -----------------------------------------

    def transmit(
        self,
        record: FrameRecord,
        on_complete: Optional[Callable[[FrameRecord, bool], None]] = None,
    ) -> None:
        """Put a frame on the air.

        ``on_complete(record, delivered)`` fires when the frame ends.
        Delivery of unicast frames is evaluated from the worst SINR the
        frame saw; broadcast frames always "complete" with True.
        """
        tx = self._stations[record.source]
        rx = self._stations.get(record.destination) if record.destination else None
        signal = self._rx_power_dbm(tx, rx, record.kind) if rx is not None else None
        act = _ActiveTransmission(record=record, tx=tx, rx=rx, signal_dbm=signal)
        if obs.STATE.metrics:
            obs.add("mac.medium.frames")

        # This new transmission interferes with every in-flight frame
        # whose receiver can hear it — and vice versa.  A station never
        # interferes with its own frames (it is half-duplex and its
        # self-coupling is not a propagation path).
        for other in self._active:
            if (
                other.rx is not None
                and other.tx is not tx
                and other.rx is not tx
                and other.rx.channel == tx.channel
            ):
                p = self._rx_power_dbm(tx, other.rx, record.kind)
                other.max_interference_mw = max(
                    other.max_interference_mw, db_to_linear_scalar(p)
                )
            if (
                rx is not None
                and other.tx is not tx
                and other.tx is not rx
                and other.tx.channel == rx.channel
            ):
                p = self._rx_power_dbm(other.tx, rx, other.record.kind)
                act.max_interference_mw = max(
                    act.max_interference_mw, db_to_linear_scalar(p)
                )

        self._active.append(act)
        if self._capture_history:
            self.history.append(record)
        if record.nav_duration_s > 0:
            self._apply_nav(record, tx, rx)

        def finish() -> None:
            self._active.remove(act)
            delivered = self._evaluate_delivery(act)
            record.delivered = delivered
            self._notify_idle_waiters()
            if on_complete is not None:
                on_complete(record, bool(delivered))

        self._sim.schedule(record.duration_s, finish)

    def _apply_nav(self, record: FrameRecord, tx: Station, rx: Optional[Station]) -> None:
        """Third parties that decode a reserving frame set their NAV.

        Decoding is approximated by an instantaneous power check
        against the control-PHY sensitivity — stations the frame
        reaches only through deep side lobes stay hidden, which is how
        hidden-terminal residue survives even with RTS/CTS (and why
        the blind WiHD interferer is unaffected: it never listens).
        """
        expiry = record.end_s + record.nav_duration_s
        for station in self._stations.values():
            if station is tx or station is rx:
                continue
            if station.channel != tx.channel:
                continue
            power = self._rx_power_dbm(tx, station, record.kind)
            if power >= NAV_DECODE_THRESHOLD_DBM:
                self._nav_expiry[station.name] = max(
                    self._nav_expiry.get(station.name, 0.0), expiry
                )

    def _evaluate_delivery(self, act: _ActiveTransmission) -> Optional[bool]:
        if act.rx is None or act.signal_dbm is None:
            return None
        noise_mw = db_to_linear_scalar(self._budget.noise_floor_dbm())
        sinr_db = act.signal_dbm - linear_to_db_scalar(
            noise_mw + act.max_interference_mw
        )
        mcs = mcs_by_index(act.record.mcs_index)
        fer = frame_error_probability(sinr_db, mcs)
        return bool(self._sim.rng.random() >= fer)

    def active_count(self) -> int:
        """Number of frames currently on the air."""
        return len(self._active)
