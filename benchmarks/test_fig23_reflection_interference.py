"""Figure 23: TCP throughput under reflected WiHD interference.

Paper: with direct paths shielded, a metal reflector couples the WiHD
transmitter into the WiGig receive beam.  The saturated TCP flow loses
about 200 mbps on average (~20%, up to 33% / ~300 mbps) and fluctuates
strongly; when the WiHD system powers off (at ~90 s of 120 s), the
throughput recovers.
"""

import numpy as np

from repro.experiments.reflection_interference import (
    interference_path_report,
    run_reflection_interference,
)


def run_experiment():
    paths = interference_path_report()
    result = run_reflection_interference(duration_s=2.4, wihd_off_at_s=1.8)
    return paths, result


def test_fig23_reflection_interference(benchmark, report):
    paths, result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report.add("Figure 23 - reflected-interference TCP time series")
    report.add(
        f"geometry check: WiGig signal {paths['wigig_signal_db']:.1f} dB, "
        f"WiHD direct {paths['wihd_direct_db']:.1f} dB (shielded), "
        f"WiHD reflected {paths['wihd_reflected_db']:.1f} dB (open)"
    )
    report.add(
        f"mean with WiHD on:  {result.mean_with_interference_bps / 1e6:.0f} mbps"
    )
    report.add(
        f"mean with WiHD off: {result.mean_without_interference_bps / 1e6:.0f} mbps"
    )
    report.add(
        f"throughput drop: {result.throughput_drop * 100:.1f}% "
        f"(paper: ~20% average, up to 33%)"
    )
    report.add(
        f"worst instantaneous deficit: {result.worst_drop_bps / 1e6:.0f} mbps "
        f"(paper: almost 300 mbps)"
    )
    # Per-100ms series for the figure shape.
    step = max(1, result.times_s.size // 24)
    series = ", ".join(
        f"{t:.2f}s:{v / 1e6:.0f}"
        for t, v in zip(result.times_s[::step], result.throughput_bps[::step])
    )
    report.add(f"series (t:mbps): {series}")

    # Geometry does what Figure 7 claims.
    assert paths["wihd_direct_db"] <= -150.0
    assert paths["wihd_reflected_db"] > -100.0
    # A paper-magnitude average drop with recovery after power-off.
    assert 0.08 < result.throughput_drop < 0.5
    assert result.mean_without_interference_bps > 850e6
    assert result.worst_drop_bps > 200e6
    # Stronger fluctuation under interference.
    on = (result.times_s < result.wihd_off_time_s) & (result.times_s > 0.3)
    off = result.times_s > result.wihd_off_time_s + 0.15
    assert np.std(result.throughput_bps[on]) > np.std(result.throughput_bps[off])
