"""Unit tests for beam-pattern measurement and discovery splitting."""

import math

import numpy as np
import pytest

from repro.core.beams import BeamPatternCampaign, MeasuredPattern
from repro.core.discovery import (
    is_discovery_frame,
    split_discovery_subelements,
    subelement_amplitudes,
    subelement_variation_db,
)
from repro.core.frames import DetectedFrame, FrameDetector
from repro.devices.d5000 import make_d5000_dock
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind
from repro.phy.signal import Emission, synthesize_trace


@pytest.fixture(scope="module")
def campaign_device():
    dock = make_d5000_dock(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    dock.train_toward(Vec2(2.0, 0.0))
    return dock


class TestMeasuredPattern:
    def test_relative_peaks_at_zero(self):
        m = MeasuredPattern(
            bearings_rad=np.linspace(-1, 1, 50),
            power_dbm=np.random.default_rng(0).normal(-50, 3, 50),
        )
        assert m.relative_db.max() == pytest.approx(0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeasuredPattern(np.zeros(10), np.zeros(11))


class TestCampaign:
    def test_measured_peak_points_at_trained_direction(self, campaign_device):
        campaign = BeamPatternCampaign(campaign_device, positions=60)
        measured = campaign.measure(kind=FrameKind.DATA)
        # The device is trained toward bearing 0.
        assert abs(math.degrees(measured.peak_bearing_rad())) < 10.0

    def test_measured_hpbw_matches_true_pattern(self, campaign_device):
        campaign = BeamPatternCampaign(campaign_device, positions=100)
        measured = campaign.measure(kind=FrameKind.DATA)
        true_hpbw = campaign_device.active_beam.pattern.half_power_beam_width_deg()
        assert measured.as_pattern().half_power_beam_width_deg() == pytest.approx(
            true_hpbw, abs=6.0
        )

    def test_side_lobes_visible_in_measurement(self, campaign_device):
        campaign = BeamPatternCampaign(campaign_device, positions=100)
        measured = campaign.measure(kind=FrameKind.DATA)
        sll = measured.as_pattern().side_lobe_level_db()
        assert -10.0 < sll < -1.0  # paper: -4..-6 dB

    def test_jitter_perturbs_but_preserves_shape(self, campaign_device):
        clean = BeamPatternCampaign(campaign_device, positions=60).measure()
        noisy = BeamPatternCampaign(
            campaign_device, positions=60, position_jitter_m=0.05, seed=3
        ).measure()
        assert not np.allclose(clean.power_dbm, noisy.power_dbm)
        # Peaks still agree.
        assert abs(clean.peak_bearing_rad() - noisy.peak_bearing_rad()) < math.radians(8)

    def test_extra_gain_lifts_measurement(self, campaign_device):
        base = BeamPatternCampaign(campaign_device, positions=30).measure()
        boosted = BeamPatternCampaign(
            campaign_device, positions=30, extra_gain_db=10.0
        ).measure()
        assert np.mean(boosted.power_dbm - base.power_dbm) == pytest.approx(10.0, abs=0.5)

    def test_discovery_subelement_measurable(self, campaign_device):
        campaign = BeamPatternCampaign(campaign_device, positions=40)
        m0 = campaign.measure(kind=FrameKind.DISCOVERY, subelement=0)
        m1 = campaign.measure(kind=FrameKind.DISCOVERY, subelement=1)
        assert not np.allclose(m0.power_dbm, m1.power_dbm)

    def test_too_few_positions_rejected(self, campaign_device):
        with pytest.raises(ValueError):
            BeamPatternCampaign(campaign_device, positions=4)


class TestDiscoverySplitting:
    def _discovery_trace(self, amplitudes, start=100e-6):
        n = len(amplitudes)
        sub = 1e-3 / n
        ems = [
            Emission(start + i * sub, sub, a) for i, a in enumerate(amplitudes)
        ]
        return synthesize_trace(
            ems, duration_s=start + 1.2e-3, noise_floor_v=0.005,
            rng=np.random.default_rng(0),
        )

    def test_split_counts(self):
        trace = self._discovery_trace([0.5] * 32)
        frame = DetectedFrame(100e-6, 1e-3, 0.5, 0.5)
        subs = split_discovery_subelements(trace, frame)
        assert len(subs) == 32
        assert subs[0].duration_s == pytest.approx(1e-3 / 32, rel=0.05)

    def test_amplitude_staircase_recovered(self):
        amplitudes = list(np.linspace(0.2, 0.8, 32))
        trace = self._discovery_trace(amplitudes)
        frame = DetectedFrame(100e-6, 1e-3, 0.5, 0.8)
        measured = subelement_amplitudes(trace, frame)
        assert measured.shape == (32,)
        # Monotone staircase survives the split.
        assert np.all(np.diff(measured) > -0.02)
        assert measured[0] == pytest.approx(0.2, abs=0.05)
        assert measured[-1] == pytest.approx(0.8, abs=0.05)

    def test_detection_plus_split_round_trip(self):
        amplitudes = [0.3 + 0.2 * (i % 2) for i in range(32)]
        trace = self._discovery_trace(amplitudes)
        frames = FrameDetector(threshold_v=0.1, merge_gap_s=2e-6).detect(trace)
        assert len(frames) == 1
        assert is_discovery_frame(frames[0])
        measured = subelement_amplitudes(trace, frames[0])
        # Alternating amplitudes alternate in the measurement too.
        evens, odds = measured[::2].mean(), measured[1::2].mean()
        assert odds > evens

    def test_is_discovery_frame_duration_gate(self):
        assert is_discovery_frame(DetectedFrame(0, 1.0e-3, 0.5, 0.5))
        assert not is_discovery_frame(DetectedFrame(0, 25e-6, 0.5, 0.5))

    def test_variation_metric(self):
        assert subelement_variation_db([0.1, 1.0]) == pytest.approx(20.0)
        assert subelement_variation_db([0.5, 0.5]) == pytest.approx(0.0)

    def test_variation_empty_raises(self):
        with pytest.raises(ValueError):
            subelement_variation_db([])

    def test_invalid_trim(self):
        trace = self._discovery_trace([0.5] * 4)
        frame = DetectedFrame(100e-6, 1e-3, 0.5, 0.5)
        with pytest.raises(ValueError):
            subelement_amplitudes(trace, frame, num_subelements=4, trim_fraction=0.6)
