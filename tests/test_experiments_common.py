"""Tests for the shared scenario builders and misc experiment utils."""

import math

import pytest

from repro.experiments.common import (
    build_wigig_link_setup,
    build_wihd_link_setup,
    misalignment_70deg,
    train_pair,
)
from repro.experiments.interference import (
    build_interference_scenario,
    channel_utilization,
    mean_link_rate_bps,
)
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind
from repro.phy.mcs import mcs_by_index


class TestWiGigBuilder:
    def test_default_geometry(self):
        setup = build_wigig_link_setup(distance_m=3.0)
        assert setup.dock.position.distance_to(setup.laptop.position) == pytest.approx(3.0)

    def test_devices_trained_at_each_other(self):
        setup = build_wigig_link_setup(distance_m=2.0)
        assert setup.dock.tx_gain_dbi(setup.laptop.position) > 10.0
        assert setup.laptop.tx_gain_dbi(setup.dock.position) > 10.0

    def test_no_flow_when_window_none(self):
        setup = build_wigig_link_setup(window_bytes=None)
        assert setup.flow is None
        setup.run(0.01)
        assert not any(
            r.kind == FrameKind.DATA for r in setup.medium.history
        )

    def test_rotated_dock_orientation_offset(self):
        aligned = build_wigig_link_setup(window_bytes=None)
        rotated = build_wigig_link_setup(
            window_bytes=None, dock_orientation_offset_rad=misalignment_70deg()
        )
        diff = rotated.dock.orientation_rad - aligned.dock.orientation_rad
        assert math.degrees(diff) == pytest.approx(70.0)

    def test_rotated_link_has_less_snr(self):
        aligned = build_wigig_link_setup(window_bytes=None)
        rotated = build_wigig_link_setup(
            window_bytes=None, dock_orientation_offset_rad=misalignment_70deg()
        )
        snr_a = aligned.coupling.snr_db("laptop", "dock")
        snr_r = rotated.coupling.snr_db("laptop", "dock")
        assert snr_r < snr_a - 2.0

    def test_explicit_positions(self):
        setup = build_wigig_link_setup(
            window_bytes=None,
            dock_position=Vec2(1.0, 1.0),
            laptop_position=Vec2(1.0, 4.0),
        )
        assert setup.dock.position == Vec2(1.0, 1.0)
        assert setup.laptop.position == Vec2(1.0, 4.0)
        # The laptop faces back toward the dock.
        assert setup.laptop.tx_gain_dbi(setup.dock.position) > 10.0


class TestWiHDBuilder:
    def test_distance(self):
        setup = build_wihd_link_setup(distance_m=8.0)
        assert setup.tx.position.distance_to(setup.rx.position) == pytest.approx(8.0)

    def test_stream_moves_bits(self):
        setup = build_wihd_link_setup(video_rate_bps=1.5e9)
        setup.run(0.01)
        assert setup.link.stats.bits_sent > 0

    def test_facing_each_other(self):
        setup = build_wihd_link_setup()
        assert setup.tx.tx_gain_dbi(setup.rx.position) > 5.0


class TestTrainPair:
    def test_free_space_training(self):
        from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop

        a = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
        b = make_e7440_laptop(position=Vec2(3, 1), orientation_rad=math.pi)
        train_pair(a, b)
        assert a.tx_gain_dbi(b.position) > 8.0

    def test_traced_training_follows_reflection(self):
        from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
        from repro.experiments.reflection_range import build_reflection_room
        from repro.phy.raytracing import RayTracer

        tracer = RayTracer(build_reflection_room(blocked=True), max_order=2)
        a = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
        b = make_e7440_laptop(position=Vec2(2.5, 0), orientation_rad=math.pi)
        train_pair(a, b, tracer)
        # Beams point into the wall's half plane, not at the obstacle.
        peak = a.active_beam.steering_azimuth_rad + a.orientation_rad
        assert math.sin(peak) < 0


class TestInterferenceUtilities:
    def test_mean_link_rate_reflects_mcs_steps(self):
        scen = build_interference_scenario(with_wihd=False, seed=77)
        scen.run(0.05)
        link = scen.link_a
        # Force an artificial step and verify the time weighting.
        start = scen.sim.now
        link.set_mcs(6)
        scen.run(0.05)
        end = scen.sim.now
        rate = mean_link_rate_bps(link, start, end)
        assert rate == pytest.approx(mcs_by_index(6).phy_rate_bps, rel=0.05)

    def test_mean_link_rate_weights_halves(self):
        scen = build_interference_scenario(with_wihd=False, seed=78)
        scen.run(0.02)
        link = scen.link_a
        link.mcs_history.clear()
        start = scen.sim.now
        link.set_mcs(11)
        scen.run(0.05)
        link.set_mcs(1)
        scen.run(0.05)
        end = scen.sim.now
        rate = mean_link_rate_bps(link, start, end)
        expected = 0.5 * (
            mcs_by_index(11).phy_rate_bps + mcs_by_index(1).phy_rate_bps
        )
        assert rate == pytest.approx(expected, rel=0.1)

    def test_channel_utilization_threshold_filters(self):
        scen = build_interference_scenario(wihd_offset_m=0.0, seed=79)
        scen.run(0.15)
        permissive = channel_utilization(scen, 0.05, scen.sim.now, threshold_dbm=-90.0)
        strict = channel_utilization(scen, 0.05, scen.sim.now, threshold_dbm=-55.0)
        assert permissive >= strict

    def test_utilization_in_unit_interval(self):
        scen = build_interference_scenario(wihd_offset_m=1.0, seed=80)
        scen.run(0.12)
        u = channel_utilization(scen, 0.05, scen.sim.now)
        assert 0.0 <= u <= 1.0
