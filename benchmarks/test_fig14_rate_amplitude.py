"""Figure 14: link rate and frame amplitudes over ~80 minutes.

Paper: the rate of a static short link is mostly constant but steps
occasionally — precisely when the observed frame amplitude changes,
i.e. at beam pattern realignments; rate adaptation and beam selection
are a joint process.
"""


from repro.experiments.long_run import (
    amplitude_change_times,
    rate_change_times,
    realignment_times,
    run_long_term,
)


def run_fig14():
    return run_long_term(duration_s=80 * 60, sample_period_s=30.0, seed=4)


def test_fig14_rate_and_amplitude(benchmark, report):
    samples = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    realigns = realignment_times(samples)
    amp_changes = amplitude_change_times(samples, threshold_db=0.5)
    rate_steps = rate_change_times(samples)
    report.add("Figure 14 - 80-minute static link observation")
    report.add(f"samples: {len(samples)} (every 30 s)")
    report.add(f"beam realignments at (min): {[round(t / 60, 1) for t in realigns]}")
    report.add(f"amplitude changes at (min): {[round(t / 60, 1) for t in amp_changes]}")
    report.add(f"rate steps at (min):       {[round(t / 60, 1) for t in rate_steps]}")
    rates = sorted({s.link_rate_bps / 1e9 for s in samples})
    report.add(f"rates observed (Gbps): {rates}")

    # At least one realignment event in 80 minutes, and every
    # realignment coincides with an amplitude change (Figure 14's
    # central observation).
    assert len(realigns) >= 1
    for t in realigns:
        assert any(abs(t - a) <= 31.0 for a in amp_changes)
    # The rate is mostly constant (a static link).
    rate_values = [s.link_rate_bps for s in samples]
    dominant = max(set(rate_values), key=rate_values.count)
    assert rate_values.count(dominant) / len(rate_values) > 0.5
