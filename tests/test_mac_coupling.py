"""Unit tests for the device-backed coupling model."""

import math

import pytest

from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.geometry.materials import get_material
from repro.geometry.room import Room
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2
from repro.mac.coupling import DeviceCoupling
from repro.phy.channel import LinkBudget
from repro.phy.raytracing import RayTracer


@pytest.fixture()
def pair():
    dock = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
    laptop = make_e7440_laptop(position=Vec2(3, 0), orientation_rad=math.pi)
    dock.train_toward(laptop.position)
    laptop.train_toward(dock.position)
    return dock, laptop


def stations_of(*devices):
    return {d.name: d.make_station() for d in devices}


class TestFreeSpaceMode:
    def test_trained_link_has_high_coupling(self, pair):
        dock, laptop = pair
        coupling = DeviceCoupling({d.name: d for d in pair})
        st = stations_of(*pair)
        value = coupling.coupling_db(st["laptop"], st["dock"])
        budget = LinkBudget()
        # Expect roughly tx+rx main-lobe gains minus the path loss.
        expected = 34.0 - budget.propagation_loss_db(3.0) - budget.implementation_loss_db
        assert value == pytest.approx(expected, abs=4.0)

    def test_control_frames_use_wide_patterns(self, pair):
        coupling = DeviceCoupling({d.name: d for d in pair})
        st = stations_of(*pair)
        data = coupling.coupling_db(st["laptop"], st["dock"], control=False)
        ctrl = coupling.coupling_db(st["laptop"], st["dock"], control=True)
        # Quasi-omni patterns have far less gain on the link axis.
        assert ctrl < data - 10.0

    def test_cache_consistency(self, pair):
        coupling = DeviceCoupling({d.name: d for d in pair})
        st = stations_of(*pair)
        a = coupling.coupling_db(st["laptop"], st["dock"])
        b = coupling.coupling_db(st["laptop"], st["dock"])
        assert a == b

    def test_invalidate_after_retrain(self, pair):
        dock, laptop = pair
        coupling = DeviceCoupling({d.name: d for d in pair})
        st = stations_of(*pair)
        before = coupling.coupling_db(st["laptop"], st["dock"])
        # Point the laptop's beam away and invalidate.
        laptop.train_toward(laptop.position + Vec2(0, -5))
        coupling.invalidate()
        after = coupling.coupling_db(st["laptop"], st["dock"])
        assert after < before
        # Restore for other tests using the fixture instance.
        laptop.train_toward(dock.position)

    def test_unknown_station_raises(self, pair):
        coupling = DeviceCoupling({d.name: d for d in pair})
        from repro.mac.simulator import Station

        ghost = Station("ghost", Vec2(1, 1))
        with pytest.raises(KeyError):
            coupling.coupling_db(ghost, stations_of(*pair)["dock"])

    def test_snr_helper_matches_budget(self, pair):
        budget = LinkBudget()
        coupling = DeviceCoupling({d.name: d for d in pair}, budget=budget)
        st = stations_of(*pair)
        snr = coupling.snr_db("laptop", "dock")
        manual = (
            10.0
            + coupling.coupling_db(st["laptop"], st["dock"])
            - budget.noise_floor_dbm()
        )
        assert snr == pytest.approx(manual)


class TestPerDeviceInvalidation:
    """Retraining one pair must not evict unrelated pairs' couplings."""

    @pytest.fixture()
    def two_pairs(self):
        devices = {}
        for i in (0, 1):
            dock = make_d5000_dock(
                name=f"dock-{i}", position=Vec2(0, 5.0 * i), unit_seed=i + 1
            )
            laptop = make_e7440_laptop(
                name=f"laptop-{i}",
                position=Vec2(3, 5.0 * i),
                orientation_rad=math.pi,
                unit_seed=i + 70,
            )
            dock.train_toward(laptop.position)
            laptop.train_toward(dock.position)
            devices[dock.name] = dock
            devices[laptop.name] = laptop
        return devices

    def test_unrelated_pair_keeps_cached_coupling(self, two_pairs):
        coupling = DeviceCoupling(two_pairs)
        st = stations_of(*two_pairs.values())
        coupling.coupling_db(st["laptop-0"], st["dock-0"])
        pair1_before = coupling.coupling_db(st["laptop-1"], st["dock-1"])
        assert coupling.cached_pair_count == 2

        # Retrain BOTH pairs' laptops away, but only invalidate pair 0:
        # pair 1 must keep serving its cached (now stale) coupling —
        # proof the entry survived the invalidation.
        two_pairs["laptop-0"].train_toward(Vec2(3, -50))
        two_pairs["laptop-1"].train_toward(Vec2(3, -50))
        coupling.invalidate("laptop-0", "dock-0")
        assert coupling.cached_pair_count == 1
        pair0_after = coupling.coupling_db(st["laptop-0"], st["dock-0"])
        assert pair0_after < coupling.coupling_db(st["laptop-1"], st["dock-1"]) - 10.0
        assert coupling.coupling_db(st["laptop-1"], st["dock-1"]) == pair1_before

        # A full invalidation finally recomputes pair 1 too.
        coupling.invalidate()
        assert coupling.cached_pair_count == 0
        assert coupling.coupling_db(st["laptop-1"], st["dock-1"]) < pair1_before

    def test_invalidate_drops_entries_in_both_directions(self, two_pairs):
        coupling = DeviceCoupling(two_pairs)
        st = stations_of(*two_pairs.values())
        coupling.coupling_db(st["laptop-0"], st["dock-0"])
        coupling.coupling_db(st["dock-0"], st["laptop-0"])
        coupling.coupling_db(st["laptop-0"], st["dock-0"], control=True)
        coupling.coupling_db(st["laptop-1"], st["dock-1"])
        assert coupling.cached_pair_count == 4
        coupling.invalidate("dock-0")
        assert coupling.cached_pair_count == 1


class TestRayTracedMode:
    def test_blocked_path_uses_isolation(self, pair):
        dock, laptop = pair
        wall = Segment(Vec2(1.5, -5), Vec2(1.5, 5), get_material("metal"))
        room = Room([wall])
        tracer = RayTracer(room, max_order=0)
        coupling = DeviceCoupling({d.name: d for d in pair}, tracer=tracer)
        st = stations_of(*pair)
        assert coupling.coupling_db(st["laptop"], st["dock"]) == -200.0

    def test_reflection_adds_to_los(self, pair):
        # A metal wall parallel to the link: LOS + one bounce.
        wall = Segment(Vec2(-5, -1.0), Vec2(8, -1.0), get_material("metal"))
        room = Room([wall])
        with_wall = DeviceCoupling(
            {d.name: d for d in pair}, tracer=RayTracer(room, max_order=1)
        )
        los_only = DeviceCoupling(
            {d.name: d for d in pair}, tracer=RayTracer(room, max_order=0)
        )
        st = stations_of(*pair)
        assert with_wall.coupling_db(st["laptop"], st["dock"]) >= los_only.coupling_db(
            st["laptop"], st["dock"]
        )

    def test_matches_free_space_when_no_walls_matter(self, pair):
        # A tiny, far-away wall: ray-traced result equals free space.
        wall = Segment(Vec2(100, 100), Vec2(101, 100), get_material("metal"))
        room = Room([wall])
        traced = DeviceCoupling({d.name: d for d in pair}, tracer=RayTracer(room, max_order=2))
        free = DeviceCoupling({d.name: d for d in pair})
        st = stations_of(*pair)
        assert traced.coupling_db(st["laptop"], st["dock"]) == pytest.approx(
            free.coupling_db(st["laptop"], st["dock"]), abs=0.1
        )
