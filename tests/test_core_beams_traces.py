"""Validation: the trace-based beam measurement agrees with the
analytic campaign.

This is the paper's actual pipeline — capture per position, frame
detection, control-frame filtering, amplitude clustering, linear-domain
averaging — closed against the fast analytic version used elsewhere.
"""

import math

import numpy as np
import pytest

from repro.core.beams import BeamPatternCampaign
from repro.experiments.frame_level import run_wigig_tcp
from repro.mac.frames import FrameKind


@pytest.fixture(scope="module")
def running_link():
    # A loaded link provides plenty of data frames per 2 ms capture.
    return run_wigig_tcp(window_bytes=128 * 1024, duration_s=0.06)


class TestTraceBasedMeasurement:
    @pytest.fixture(scope="class")
    def patterns(self, running_link):
        setup = running_link
        campaign = BeamPatternCampaign(setup.laptop, positions=100)
        analytic = campaign.measure(kind=FrameKind.DATA)
        traced = campaign.measure_from_traces(
            setup.medium.history,
            setup.devices,
            positions=20,
            capture_s=1.5e-3,
            capture_start_s=0.07,
        )
        return analytic, traced

    def test_peak_directions_agree(self, patterns):
        analytic, traced = patterns
        diff = abs(analytic.peak_bearing_rad() - traced.peak_bearing_rad())
        assert math.degrees(diff) < 15.0

    def test_relative_shapes_agree(self, patterns):
        analytic, traced = patterns
        # Evaluate the analytic pattern at the traced bearings (via
        # the periodic interpolation of AntennaPattern - the raw
        # bearing arrays wrap at +-pi) and compare the relative
        # profiles.
        analytic_pattern = analytic.as_pattern()
        analytic_at = np.array([
            analytic_pattern.gain_dbi(float(b)) for b in traced.bearings_rad
        ])
        analytic_rel = analytic_at - analytic_at.max()
        traced_rel = traced.power_dbm - traced.power_dbm.max()
        finite = traced_rel > -35.0
        # Median absolute disagreement within a few dB.
        err = np.median(np.abs(analytic_rel[finite] - traced_rel[finite]))
        assert err < 4.0

    def test_main_lobe_width_agrees(self, patterns):
        analytic, traced = patterns
        a_hpbw = analytic.as_pattern().half_power_beam_width_deg()
        t_hpbw = traced.as_pattern().half_power_beam_width_deg()
        assert t_hpbw == pytest.approx(a_hpbw, abs=12.0)

    def test_control_frames_filtered(self, running_link):
        """Beacons ride wide high-power patterns; keeping them would
        flatten the measured pattern.  Verify the filtered measurement
        is more directional than an unfiltered amplitude average."""
        setup = running_link

        campaign = BeamPatternCampaign(setup.laptop, positions=100)
        traced = campaign.measure_from_traces(
            setup.medium.history, setup.devices,
            positions=16, capture_s=1.5e-3, capture_start_s=0.07,
        )
        rel = traced.power_dbm - traced.power_dbm.max()
        # Strong directionality survives the pipeline: the weakest
        # measured direction is far below the peak.
        assert rel.min() < -10.0
