"""Campaign-level observability: deterministic metrics, trace export.

The acceptance-critical property mirrors the result-row one: a
campaign's merged ``metrics`` manifest section must be byte-identical
between ``workers=1`` and a shuffled parallel run.
"""

import os

import pytest

from repro import obs
from repro.campaign.runner import CampaignRunner, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import load_manifest, write_run
from repro.campaign.verify import canonical_metrics, verify_campaign
from repro.obs.export import read_trace, validate_trace

DES = "tests.campaign_cells:des_cell"
DOUBLE = "tests.campaign_cells:double_cell"


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    os.environ.pop(obs.OBS_ENV, None)
    yield
    obs.disable()
    obs.reset()
    os.environ.pop(obs.OBS_ENV, None)


def des_campaign(ticks=(30, 60), seeds=(0, 1)):
    return CampaignSpec(
        name="des-obs",
        experiment=DES,
        grid={"ticks": tuple(ticks)},
        seeds=seeds,
    )


class TestMetricsCollection:
    def test_off_by_default(self):
        result = run_campaign(des_campaign())
        assert result.telemetry.metrics is None
        assert result.telemetry.spans_file is None
        assert result.trace_events == []

    def test_metrics_run_merges_cell_counters(self):
        result = run_campaign(des_campaign(), metrics=True)
        counters = result.telemetry.metrics["counters"]
        # DES cells feed the simulator counter; the runner adds its own.
        assert counters["mac.simulator.events"] > 0
        assert counters["campaign.cells.total"] == 4
        assert counters["campaign.cells.completed"] == 4
        assert counters["campaign.cells.failed"] == 0
        assert counters["campaign.cache.misses"] == 4

    def test_state_restored_after_run(self):
        run_campaign(des_campaign(), metrics=True)
        assert not obs.STATE.enabled
        assert obs.OBS_ENV not in os.environ
        assert obs.metrics_snapshot() is None

    def test_state_restored_after_failure(self):
        spec = CampaignSpec(
            name="broken",
            experiment="tests.campaign_cells:always_fails",
            grid={},
            seeds=(0,),
        )
        result = run_campaign(spec, metrics=True, retries=0)
        assert result.telemetry.failed == 1
        assert result.telemetry.metrics["counters"]["campaign.cells.failed"] == 1
        assert not obs.STATE.enabled

    def test_serial_and_parallel_metrics_byte_identical(self):
        spec = des_campaign(ticks=(20, 40, 60), seeds=(0, 1))
        serial = CampaignRunner(spec, workers=1, metrics=True).run()
        parallel = CampaignRunner(
            spec, workers=3, shuffle_seed=7, metrics=True
        ).run()
        assert canonical_metrics(serial) == canonical_metrics(parallel)
        assert canonical_metrics(serial)  # non-empty: metrics were recorded

    def test_metrics_excluded_from_result_rows(self):
        result = run_campaign(des_campaign(), metrics=True)
        for row in result.result_rows():
            assert "metrics" not in row
            assert "spans" not in row


class TestTraceCollection:
    def test_serial_trace_emits_cell_spans(self):
        result = run_campaign(des_campaign(), trace=True)
        names = {e["name"] for e in result.trace_events}
        assert "campaign.run" in names
        assert "campaign.cell" in names
        assert "mac.simulator.run" in names  # in-cell span survived the merge

    def test_parallel_trace_emits_events(self):
        result = run_campaign(des_campaign(), workers=2, trace=True)
        assert result.telemetry.spans_file == "trace.json"
        names = {e["name"] for e in result.trace_events}
        assert "campaign.run" in names
        assert "campaign.shard" in names
        assert "campaign.cell.await" in names
        # In-cell spans ride the shard timeline (pid = shard + 1);
        # runner-side events stay on the campaign parent (pid 0).
        cell_pids = {
            e["pid"] for e in result.trace_events if e["name"] == "mac.simulator.run"
        }
        assert cell_pids and all(pid >= 1 for pid in cell_pids)
        run_pids = {
            e["pid"] for e in result.trace_events if e["name"] == "campaign.run"
        }
        assert run_pids == {0}

    def test_write_run_persists_valid_trace(self, tmp_path):
        result = run_campaign(des_campaign(), workers=2, trace=True)
        out = write_run(result, tmp_path / "run")
        assert (out / "trace.json").is_file()
        doc = read_trace(out / "trace.json")
        assert validate_trace(doc) == []
        manifest = load_manifest(out)
        assert manifest["schema_version"] == 3
        assert manifest["spans_file"] == "trace.json"
        assert manifest["metrics"]["counters"]["campaign.cells.total"] == 4


class TestVerifyMetricsLeg:
    def test_verify_reports_metrics_match(self):
        report = verify_campaign(
            des_campaign(ticks=(25, 50), seeds=(0,)),
            workers=2,
            audit=False,
            cache_check=False,
        )
        assert report.determinism_ok
        assert report.metrics_ok
        assert report.metrics_serial_digest == report.metrics_parallel_digest
        assert report.ok
        d = report.to_dict()
        assert d["metrics_ok"] is True
        assert d["metrics_serial_digest"] == report.metrics_serial_digest
