"""Committed baseline of grandfathered lint findings.

The baseline is a JSON document listing fingerprints of findings that
predate the linter (or are accepted for cause).  ``repro lint
--baseline`` subtracts them; anything not in the file fails the run,
so new code can never add to the debt.  Matching is by multiset: two
identical findings need two baseline entries.

Regenerate with ``python -m repro lint --write-baseline`` after
deliberately accepting findings; the file is sorted so diffs review
cleanly.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from typing import Iterable, List, Tuple

from repro.lint.engine import Finding

#: Version 2 fingerprints mix in the enclosing scope and column, so
#: identical findings on different lines of one file no longer share a
#: fingerprint (the multiset match used to treat them as
#: interchangeable).  Line-move tolerance is unchanged: the line
#: number itself is still not part of the fingerprint.  Loading is
#: version-agnostic — stale version-1 entries simply stop matching and
#: show up as new findings, which is the safe failure mode.
BASELINE_VERSION = 2


def load_baseline(path: pathlib.Path) -> Counter:
    """Fingerprint multiset from a baseline file (empty if missing)."""
    if not path.is_file():
        return Counter()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        entries = data["entries"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from None
    counts: Counter = Counter()
    for entry in entries:
        counts[str(entry["fingerprint"])] += 1
    return counts


def write_baseline(path: pathlib.Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "code": f.code,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "context": f.context,
            "message": f.message,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    # ``by_code`` is a review aid only (loaders never read it): a diff
    # of the baseline shows at a glance which rule's debt moved.
    by_code = Counter(entry["code"] for entry in entries)
    payload = {
        "version": BASELINE_VERSION,
        "by_code": dict(sorted(by_code.items())),
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def load_entries(path: pathlib.Path) -> List[dict]:
    """Raw baseline entries for display (empty if the file is missing)."""
    if not path.is_file():
        return []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        entries = data["entries"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from None
    return [dict(entry) for entry in entries]


def stale_entries(findings: Iterable[Finding], baseline: Counter) -> Counter:
    """Baseline fingerprints no current finding matches.

    A stale entry means the underlying violation was fixed (or the
    line changed, re-fingerprinting it) but the baseline still carries
    the debt allowance — dead weight that could mask a future
    regression at the same site.  CI fails on these via
    ``--check-baseline``.
    """
    current = Counter(f.fingerprint for f in findings)
    stale: Counter = Counter()
    for fingerprint, count in baseline.items():
        extra = count - current.get(fingerprint, 0)
        if extra > 0:
            stale[fingerprint] = extra
    return stale


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], int]:
    """Split findings into (new, baselined-count) against the multiset."""
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        fp = finding.fingerprint
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
