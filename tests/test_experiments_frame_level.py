"""Integration tests for the frame-level protocol analysis harness.

These exercise the full loop the paper relied on: MAC simulation ->
Vubiq capture -> trace analysis, and check the trace-derived numbers
against simulator ground truth.
"""

import numpy as np
import pytest

from repro.core.frames import FrameDetector, estimate_periodicity_s, group_bursts
from repro.core.utilization import medium_usage_from_records, medium_usage_from_trace
from repro.experiments.frame_level import (
    CAPTURE_DETECTION_THRESHOLD_V,
    TCP_OPERATING_POINTS,
    aggregation_sweep,
    capture_with_vubiq,
    capture_wihd_with_vubiq,
    run_idle_wigig,
    run_unassociated_dock,
    run_wigig_tcp,
    run_wihd_stream,
)
from repro.mac.frames import DISCOVERY_SUBELEMENTS, FrameKind, WIGIG_TIMING, WIHD_TIMING


class TestTable1Periodicities:
    def test_wigig_beacon_period_from_trace(self):
        setup = run_idle_wigig(duration_s=0.03)
        trace = capture_with_vubiq(setup, 0.0, 0.03)
        frames = FrameDetector(threshold_v=CAPTURE_DETECTION_THRESHOLD_V,
                               merge_gap_s=5e-6).detect(trace)
        # Beacon exchange (dock + laptop reply, SIFS apart, merged into
        # one detection) every 1.1 ms.
        period = estimate_periodicity_s(frames)
        assert period == pytest.approx(WIGIG_TIMING.beacon_interval_s, rel=0.05)

    def test_wigig_discovery_period_ground_truth(self):
        setup = run_unassociated_dock(duration_s=0.45)
        disc = sorted(
            r.start_s for r in setup.medium.history if r.kind == FrameKind.DISCOVERY
        )
        gaps = np.diff(disc)
        assert np.median(gaps) == pytest.approx(WIGIG_TIMING.discovery_interval_s)

    def test_wihd_beacon_period(self):
        setup = run_wihd_stream(duration_s=0.02, video_rate_bps=0.0)
        beacons = sorted(
            r.start_s for r in setup.medium.history if r.kind == FrameKind.BEACON
        )
        gaps = np.diff(beacons)
        assert np.median(gaps) == pytest.approx(WIHD_TIMING.beacon_interval_s, rel=0.02)


class TestFigure3Discovery:
    def test_discovery_frame_has_32_subelements_in_trace(self):
        setup = run_unassociated_dock(duration_s=0.25)
        disc = [r for r in setup.medium.history if r.kind == FrameKind.DISCOVERY][0]
        trace = capture_with_vubiq(
            setup, disc.start_s - 50e-6, disc.duration_s + 100e-6, behind_dock=False
        )
        from repro.core.discovery import subelement_amplitudes
        from repro.core.frames import DetectedFrame

        frame = DetectedFrame(disc.start_s, disc.duration_s, 0.0, 0.0)
        amps = subelement_amplitudes(trace, frame, DISCOVERY_SUBELEMENTS)
        assert amps.shape == (32,)
        # The staircase: sub-elements differ by several dB.
        visible = amps[amps > 0.02]
        assert visible.size > 8
        assert visible.max() / max(visible.min(), 1e-6) > 1.5


class TestFigure8FrameFlow:
    def test_burst_structure_in_capture(self):
        setup = run_wigig_tcp(window_bytes=64 * 1024, duration_s=0.05)
        trace = capture_with_vubiq(setup, 0.08, 0.6e-3)
        frames = FrameDetector(threshold_v=CAPTURE_DETECTION_THRESHOLD_V).detect(trace)
        assert len(frames) > 10  # a busy data/ACK flow
        bursts = group_bursts(frames, gap_threshold_s=60e-6)
        assert bursts  # structured into bursts

    def test_amplitude_separation_of_endpoints(self):
        setup = run_wigig_tcp(window_bytes=64 * 1024, duration_s=0.05)
        trace = capture_with_vubiq(setup, 0.08, 1e-3)
        frames = FrameDetector(threshold_v=CAPTURE_DETECTION_THRESHOLD_V).detect(trace)
        from repro.core.frames import split_sources_by_amplitude

        strong, weak = split_sources_by_amplitude(frames)
        assert strong and weak
        assert np.mean([f.mean_amplitude_v for f in strong]) > 1.5 * np.mean(
            [f.mean_amplitude_v for f in weak]
        )


class TestFigure15WihdFlow:
    def test_active_then_idle(self):
        # Keep the stream below channel capacity so no residual queue
        # lingers after the video stops.
        setup = run_wihd_stream(duration_s=0.02, stop_after_s=0.01,
                                video_rate_bps=1.5e9)
        history = setup.medium.history
        active_data = [
            r for r in history if r.kind == FrameKind.DATA and r.start_s < 0.01
        ]
        idle_data = [
            r for r in history if r.kind == FrameKind.DATA and r.start_s > 0.0115
        ]
        idle_beacons = [
            r for r in history if r.kind == FrameKind.BEACON and r.start_s > 0.0115
        ]
        assert active_data
        assert not idle_data  # only beacons after the stream stops
        assert idle_beacons

    def test_wihd_capture_detects_flow(self):
        setup = run_wihd_stream(duration_s=0.02)
        trace = capture_wihd_with_vubiq(setup, 0.01, 2e-3)
        frames = FrameDetector(threshold_v=CAPTURE_DETECTION_THRESHOLD_V).detect(trace)
        assert len(frames) >= 5


class TestAggregationSweep:
    @pytest.fixture(scope="class")
    def reports(self):
        return aggregation_sweep(duration_s=0.1, warmup_s=0.04)

    def test_every_operating_point_reported(self, reports):
        assert len(reports) == len(TCP_OPERATING_POINTS)

    def test_throughput_ordering(self, reports):
        mbps = [r.throughput_bps for r in reports]
        # kbps points tiny, then monotone within tolerance.
        assert mbps[0] < 1e6 and mbps[1] < 1e6
        assert mbps[2] > 100e6
        assert mbps[-1] > 850e6

    def test_long_fraction_grows_with_throughput(self, reports):
        fractions = [r.long_fraction for r in reports[2:]]
        assert fractions[-1] > 0.9
        assert fractions[0] < 0.2
        # Broadly increasing.
        assert all(
            b >= a - 0.15 for a, b in zip(fractions, fractions[1:])
        )

    def test_medium_usage_saturates_early(self, reports):
        """Figure 11: beyond ~171 mbps the channel is always busy."""
        assert reports[0].medium_usage < 0.1
        for r in reports[2:]:
            assert r.medium_usage > 0.80

    def test_aggregation_gain_similar_to_paper(self, reports):
        from repro.core.aggregation import aggregation_gain

        gain = aggregation_gain(reports[2].throughput_bps, reports[-1].throughput_bps)
        assert 4.0 < gain < 6.5  # paper: 5.4x

    def test_max_frame_25us(self, reports):
        assert all(r.p95_frame_s <= 25.5e-6 for r in reports)


class TestTraceVsGroundTruthUsage:
    def test_usage_estimators_agree(self):
        setup = run_wigig_tcp(window_bytes=64 * 1024, duration_s=0.02)
        window = (0.06, 0.065)
        # Compare like for like: the sample-counting trace estimator
        # resolves SIFS gaps as idle, so the ground truth must not
        # bridge them either.
        truth = medium_usage_from_records(
            [r for r in setup.medium.history], window[0], window[1]
        )
        trace = capture_with_vubiq(setup, window[0], window[1] - window[0])
        estimated = medium_usage_from_trace(trace, threshold_v=CAPTURE_DETECTION_THRESHOLD_V)
        assert estimated == pytest.approx(truth, abs=0.10)
