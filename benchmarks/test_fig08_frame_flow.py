"""Figure 8: the Dell D5000 frame flow.

Paper: bursts (max 2 ms) open with two control frames (RTS/CTS) and
continue with data/acknowledgment pairs; beacons appear outside bursts.
The benchmark reproduces a 0.6 ms window of the flow and verifies its
structure both in the ground truth and in the captured trace.
"""


from repro.core.frames import FrameDetector, group_bursts, split_sources_by_amplitude
from repro.experiments.frame_level import (
    CAPTURE_DETECTION_THRESHOLD_V,
    capture_with_vubiq,
    run_wigig_tcp,
)


def run_flow():
    setup = run_wigig_tcp(window_bytes=64 * 1024, duration_s=0.05)
    window = (0.08, 0.6e-3)
    trace = capture_with_vubiq(setup, window[0], window[1])
    frames = FrameDetector(threshold_v=CAPTURE_DETECTION_THRESHOLD_V).detect(trace)
    records = [
        r
        for r in setup.medium.history
        if r.start_s >= window[0] and r.end_s <= window[0] + window[1]
    ]
    return frames, records


def test_fig08_d5000_frame_flow(benchmark, report):
    frames, records = benchmark.pedantic(run_flow, rounds=1, iterations=1)
    kinds = {}
    for r in records:
        kinds[r.kind.value] = kinds.get(r.kind.value, 0) + 1
    report.add("Figure 8 - D5000 frame flow (0.6 ms window)")
    report.add(f"ground-truth frames by kind: {kinds}")
    report.add(f"trace-detected frames: {len(frames)}")
    strong, weak = split_sources_by_amplitude(frames)
    report.add(f"amplitude clusters: strong={len(strong)} weak={len(weak)}")
    bursts = group_bursts(frames, gap_threshold_s=60e-6)
    report.add(f"bursts in window: {len(bursts)}")

    # Structure assertions: data + ACK pairs, RTS/CTS present in the
    # broader flow, every data frame acknowledged.
    assert kinds.get("data", 0) >= 5
    assert kinds.get("ack", 0) >= 5
    assert abs(kinds.get("data", 0) - kinds.get("ack", 0)) <= 2
    assert len(frames) >= 10
    assert strong and weak
