"""Interprocedural dB/linear unit inference (rules RL010-RL012).

Every physical quantity in the toolkit lives in one of three
arithmetic *families*:

* **log** — relative dB, absolute dBm, antenna dBi.  Gains and losses
  add; absolute powers difference into ratios.
* **linear** — linear power ratios, milliwatts, watts.  Powers add.
* **amplitude** — voltage/field ratios (volts, ``10^(x/20)`` scale).

Summing a log-domain value with a linear-domain one is always a bug —
and the worst instances cross module boundaries, where the per-file
suffix rule (RL004) cannot see the callee.  This pass assigns units
from three seed sources (the :mod:`repro.analysis.dbmath` signature
table, ``*_db``/``*_dbm``/``*_lin``-style name heuristics, and
explicit ``# replint: unit=...`` annotations) and propagates them
through assignments, returns, and resolved call sites to a fixpoint.

Checks:

* **RL010** — a call argument whose inferred unit family conflicts
  with the callee parameter's, or arithmetic that mixes a call's
  returned unit with an incompatible operand;
* **RL011** — a ``return`` whose inferred unit family conflicts with
  the unit the function declares via suffix or annotation;
* **RL012** — a public function in the configured phy/mac packages
  that computes with united values but neither carries a unit suffix
  nor a ``# replint: unit=...`` annotation on its ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.config import module_in
from repro.lint.flow.callgraph import CallGraph, CallSite, bind_arguments
from repro.lint.flow.symbols import FunctionInfo, ModuleInfo, SymbolTable

# ---------------------------------------------------------------------------
# the unit lattice
# ---------------------------------------------------------------------------

DB = "dB"
DBM = "dBm"
LINEAR = "linear"
AMPLITUDE = "amplitude"
#: Declared "carries no power unit" — a duration, distance, count, or
#: an explicitly annotated dimensionless ratio.  Never conflicts.
NEUTRAL = "neutral"

_FAMILY = {DB: "log", DBM: "log", LINEAR: "linear", AMPLITUDE: "amplitude"}


def family(unit: Optional[str]) -> Optional[str]:
    """Arithmetic family of a unit (None for unknown/neutral)."""
    return _FAMILY.get(unit) if unit else None


def conflicting(a: Optional[str], b: Optional[str]) -> bool:
    fa, fb = family(a), family(b)
    return fa is not None and fb is not None and fa != fb


def join(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Least upper bound for propagation (conflicts decay to unknown)."""
    if a is None or a == NEUTRAL:
        return b
    if b is None or b == NEUTRAL or a == b:
        return a
    if family(a) == family(b):
        return DB if family(a) == "log" else a
    return None


# ---------------------------------------------------------------------------
# seed sources
# ---------------------------------------------------------------------------

#: Signature table for the shared dB helpers: canonical dotted name ->
#: (parameter units by position, return unit).
DBMATH_SIGNATURES: Dict[str, Tuple[Tuple[Optional[str], ...], Optional[str]]] = {
    "repro.analysis.dbmath.db_to_linear": ((DB,), LINEAR),
    "repro.analysis.dbmath.db_to_power_ratio": ((DB,), LINEAR),
    "repro.analysis.dbmath.db_to_linear_scalar": ((DB,), LINEAR),
    "repro.analysis.dbmath.linear_to_db": ((LINEAR,), DB),
    "repro.analysis.dbmath.linear_to_db_scalar": ((LINEAR,), DB),
    "repro.analysis.dbmath.db_to_amplitude_scalar": ((DB,), AMPLITUDE),
    "repro.analysis.dbmath.amplitude_to_db": ((AMPLITUDE,), DB),
    "repro.analysis.dbmath.amplitude_to_db_scalar": ((AMPLITUDE,), DB),
    "repro.analysis.dbmath.log_distance_loss_db": ((NEUTRAL, NEUTRAL), DB),
    "repro.analysis.dbmath.watts_to_dbm": ((LINEAR,), DBM),
    "repro.analysis.dbmath.dbm_to_watts": ((DBM,), LINEAR),
    "repro.analysis.dbmath.power_sum_db": ((DB,), DB),
    "repro.analysis.dbmath.power_average_db": ((DB,), DB),
}

#: Name-suffix heuristics (last ``_``-separated token of an identifier).
_SUFFIX_UNITS = {
    "db": DB,
    "dbi": DB,  # antenna gains are relative-dB quantities
    "dbm": DBM,
    "lin": LINEAR,
    "linear": LINEAR,
    "mw": LINEAR,
    "watts": LINEAR,
    "amplitude": AMPLITUDE,
    "amp": AMPLITUDE,
    "v": AMPLITUDE,
    "volts": AMPLITUDE,
}

#: Bare names the paper's code uses for log-domain quantities.
_LOG_WORDS = {"gain", "loss", "snr", "sinr", "rssi", "attenuation"}

#: Suffixes that declare a *non-power* physical unit (seconds, metres,
#: rates, angles ...) — the name documents its unit, it is just not a
#: dB/linear one, so RL012 has nothing to ask for.
_NEUTRAL_SUFFIXES = {
    "s", "ms", "us", "ns", "m", "mm", "cm", "km", "deg", "rad",
    "hz", "khz", "mhz", "ghz", "bps", "kbps", "mbps", "gbps",
    "bytes", "bits", "count", "idx", "index", "pct", "ratio",
    "frac", "fraction", "prob", "probability", "k", "kelvin", "j",
}

#: Accepted ``# replint: unit=...`` annotation spellings.
_ANNOTATION_UNITS = {
    "db": DB,
    "dbi": DB,
    "dbm": DBM,
    "linear": LINEAR,
    "linear-power": LINEAR,
    "lin": LINEAR,
    "mw": LINEAR,
    "watts": LINEAR,
    "amplitude": AMPLITUDE,
    "none": NEUTRAL,
    "dimensionless": NEUTRAL,
    "neutral": NEUTRAL,
    # Non-power dimension/scale spellings owned by the --dim pass
    # (repro.lint.flow.dims): declared, just not on the dB/linear axis.
    **{
        scale: NEUTRAL
        for scale in (
            "rad", "deg", "radians", "degrees", "angle",
            "m", "mm", "cm", "km", "meters", "length",
            "s", "ms", "us", "ns", "seconds", "time",
            "hz", "khz", "mhz", "ghz", "frequency",
            "mps", "kmh", "speed", "ratio",
        )
    },
}


def parse_annotation(text: str) -> Optional[str]:
    """Map a ``unit=`` annotation value to a lattice element."""
    return _ANNOTATION_UNITS.get(text.strip().lower())


def unit_from_name(name: Optional[str]) -> Optional[str]:
    """Unit implied by an identifier's naming convention."""
    if not name:
        return None
    tokens = name.lower().split("_")
    last = tokens[-1] if tokens[-1] else (tokens[-2] if len(tokens) > 1 else "")
    if last in _SUFFIX_UNITS:
        return _SUFFIX_UNITS[last]
    if last in _LOG_WORDS:
        return DB
    if last in _NEUTRAL_SUFFIXES:
        return NEUTRAL
    return None


#: Calls that return their first argument's unit unchanged.
_PASSTHROUGH = {
    "float", "abs", "sum", "mean", "median", "min", "max", "maximum",
    "minimum", "asarray", "array", "clip", "round", "nanmean",
    "nansum", "nanmax", "nanmin", "full_like", "sort", "sorted",
}


def _callable_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _Summaries:
    """Interprocedural state: declared/inferred units per function."""

    def __init__(self, table: SymbolTable):
        self.table = table
        self.returns: Dict[str, Optional[str]] = {}

    def declared_return(self, fn: FunctionInfo) -> Optional[str]:
        sig = DBMATH_SIGNATURES.get(fn.qualname)
        if sig is not None:
            return sig[1]
        if fn.unit_annotation:
            return parse_annotation(fn.unit_annotation)
        return unit_from_name(fn.name)

    def return_unit(self, fn: FunctionInfo) -> Optional[str]:
        declared = self.declared_return(fn)
        if declared is not None:
            return declared
        return self.returns.get(fn.qualname)

    def param_unit(self, fn: FunctionInfo, index: int, param_name: str) -> Optional[str]:
        sig = DBMATH_SIGNATURES.get(fn.qualname)
        if sig is not None and index < len(sig[0]):
            return sig[0][index]
        return unit_from_name(param_name)


class _FunctionAnalysis:
    """Per-function environment builder and checker."""

    def __init__(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        summaries: _Summaries,
        sites: Dict[int, CallSite],
    ):
        self.fn = fn
        self.module = module
        self.summaries = summaries
        self.sites = sites
        self.env: Dict[str, Optional[str]] = {}
        for param in fn.params:
            unit = unit_from_name(param.name)
            if unit is not None:
                self.env[param.name] = unit
        sig = DBMATH_SIGNATURES.get(fn.qualname)
        if sig is not None:
            for param, unit in zip(fn.call_params, sig[0]):
                if unit is not None:
                    self.env[param.name] = unit

    # -- expression inference ---------------------------------------

    def infer(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id) or unit_from_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_from_name(node.attr)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.IfExp):
            return join(self.infer(node.body), self.infer(node.orelse))
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        return None

    def _infer_call(self, node: ast.Call) -> Optional[str]:
        site = self.sites.get(id(node))
        if site is not None:
            unit = self.summaries.return_unit(site.callee)
            if unit is not None:
                return unit
        name = _callable_name(node.func)
        if name in _PASSTHROUGH and node.args:
            return self.infer(node.args[0])
        return unit_from_name(name)

    def _infer_binop(self, node: ast.BinOp) -> Optional[str]:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return join(self.infer(node.left), self.infer(node.right))
        if isinstance(node.op, (ast.Mult, ast.Div)):
            left, right = self.infer(node.left), self.infer(node.right)
            known = [u for u in (left, right) if u not in (None, NEUTRAL)]
            if len(known) == 1:
                # Scaling by a unit-less factor preserves the unit.
                return known[0]
            return None
        return None

    # -- environment construction -----------------------------------

    def build_env(self, iterations: int = 3) -> None:
        assigns: List[Tuple[str, ast.AST, int]] = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assigns.append((target.id, node.value, node.lineno))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns.append((node.target.id, node.value, node.lineno))
        for _ in range(iterations):
            changed = False
            for name, value, lineno in assigns:
                annotated = self.module.unit_annotations.get(lineno)
                if annotated:
                    unit: Optional[str] = parse_annotation(annotated)
                else:
                    unit = self.infer(value)
                if unit is not None:
                    merged = join(self.env.get(name), unit)
                    if merged != self.env.get(name):
                        self.env[name] = merged
                        changed = True
            if not changed:
                break

    # -- summary ----------------------------------------------------

    def returned_units(self) -> List[Tuple[ast.Return, Optional[str]]]:
        out: List[Tuple[ast.Return, Optional[str]]] = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                    out.append((node, None))
                else:
                    out.append((node, self.infer(node.value)))
        return out

    def return_has_united_subexpr(self) -> bool:
        for node in ast.walk(self.fn.node):
            if not (isinstance(node, ast.Return) and node.value is not None):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                continue
            for sub in ast.walk(node.value):
                if isinstance(sub, (ast.Name, ast.Attribute, ast.Call)):
                    unit = self.infer(sub)
                    if unit not in (None, NEUTRAL):
                        return True
        return False


class UnitPass:
    """Drives inference to a fixpoint, then emits RL010-RL012."""

    def __init__(self, table: SymbolTable, graph: CallGraph, config, reporter):
        self.table = table
        self.graph = graph
        self.config = config
        self.reporter = reporter
        self.summaries = _Summaries(table)
        self._sites_by_fn: Dict[str, Dict[int, CallSite]] = {}
        for site in graph.sites:
            if site.caller is not None:
                self._sites_by_fn.setdefault(site.caller.qualname, {})[
                    id(site.node)
                ] = site

    def _analysis(self, fn: FunctionInfo) -> Optional[_FunctionAnalysis]:
        module = self.table.modules.get(fn.module)
        if module is None:
            return None
        analysis = _FunctionAnalysis(
            fn, module, self.summaries, self._sites_by_fn.get(fn.qualname, {})
        )
        analysis.build_env()
        return analysis

    def run(self) -> None:
        functions = sorted(self.table.functions.values(), key=lambda f: f.qualname)
        # Fixpoint on return summaries (bounded; the lattice is tiny).
        for _ in range(4):
            changed = False
            for fn in functions:
                analysis = self._analysis(fn)
                if analysis is None:
                    continue
                units = [u for _, u in analysis.returned_units() if u not in (None, NEUTRAL)]
                inferred: Optional[str] = None
                for unit in units:
                    inferred = join(inferred, unit) if inferred is not None else unit
                if self.summaries.returns.get(fn.qualname) != inferred:
                    self.summaries.returns[fn.qualname] = inferred
                    changed = True
            if not changed:
                break
        for fn in functions:
            if module_in(fn.module, self.config.dbmath_modules):
                # The conversion helpers legitimately cross domains
                # inside their bodies — they ARE the boundary.
                continue
            analysis = self._analysis(fn)
            if analysis is None:
                continue
            self._check_returns(fn, analysis)
            self._check_public_api(fn, analysis)
            self._check_mixing(fn, analysis)
        self._check_call_arguments()

    # -- RL010 ------------------------------------------------------

    def _check_call_arguments(self) -> None:
        for site in self.graph.sites:
            if site.kind != "call":
                continue
            caller = site.caller
            if caller is None or module_in(caller.module, self.config.dbmath_modules):
                continue
            analysis = self._analysis(caller)
            if analysis is None:
                continue
            bound, _exhaustive = bind_arguments(site)
            params = site.callee.call_params if site.bound else site.callee.params
            index_of = {p.name: i for i, p in enumerate(params)}
            module = self.table.modules[caller.module]
            for param_name, arg in bound.items():
                if param_name not in index_of:
                    continue
                expected = self.summaries.param_unit(
                    site.callee, index_of[param_name], param_name
                )
                actual = analysis.infer(arg)
                if conflicting(expected, actual):
                    self.reporter.report(
                        module,
                        arg,
                        "RL010",
                        f"argument '{param_name}' of {site.callee.qualname} "
                        f"expects a {family(expected)}-domain value "
                        f"({expected}) but receives a {family(actual)}-domain "
                        f"one ({actual}) — convert via repro.analysis.dbmath "
                        "at the boundary",
                        context=caller.qualname,
                    )

    def _check_mixing(self, fn: FunctionInfo, analysis: _FunctionAnalysis) -> None:
        """Cross-family +/- where at least one side's unit was *inferred*.

        Pairs where both operands carry explicit unit suffixes are
        RL004's per-file territory; the flow version fires when a
        call's return value or a propagated local is involved — the
        cross-module case RL004 cannot see.
        """
        module = self.table.modules[fn.module]
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub))):
                continue
            left, right = analysis.infer(node.left), analysis.infer(node.right)
            if not conflicting(left, right):
                continue
            suffix_only = all(
                isinstance(side, (ast.Name, ast.Attribute))
                and unit_from_name(
                    side.id if isinstance(side, ast.Name) else side.attr
                )
                is not None
                for side in (node.left, node.right)
            )
            if suffix_only:
                continue  # RL004 already covers it
            self.reporter.report(
                module,
                node,
                "RL010",
                f"arithmetic mixes a {family(left)}-domain value ({left}) "
                f"with a {family(right)}-domain one ({right}) across a call "
                "boundary — powers add in the linear domain, gains in dB",
                context=fn.qualname,
            )

    # -- RL011 ------------------------------------------------------

    def _check_returns(self, fn: FunctionInfo, analysis: _FunctionAnalysis) -> None:
        declared = self.summaries.declared_return(fn)
        module = self.table.modules[fn.module]
        seen: Optional[str] = None
        for node, unit in analysis.returned_units():
            if unit in (None, NEUTRAL):
                continue
            if declared not in (None, NEUTRAL) and conflicting(declared, unit):
                self.reporter.report(
                    module,
                    node,
                    "RL011",
                    f"{fn.qualname} declares a {family(declared)}-domain "
                    f"return ({declared}) but this return is inferred as "
                    f"{family(unit)}-domain ({unit})",
                    context=fn.qualname,
                )
            elif declared in (None, NEUTRAL) and conflicting(seen, unit):
                self.reporter.report(
                    module,
                    node,
                    "RL011",
                    f"{fn.qualname} mixes return units: this return is "
                    f"{family(unit)}-domain ({unit}) but an earlier one was "
                    f"{family(seen)}-domain ({seen})",
                    context=fn.qualname,
                )
            seen = join(seen, unit) if seen is not None else unit

    # -- RL012 ------------------------------------------------------

    def _check_public_api(self, fn: FunctionInfo, analysis: _FunctionAnalysis) -> None:
        if not module_in(fn.module, self.config.flow_unit_packages):
            return
        if not fn.is_public or fn.name.startswith("__"):
            return
        # Functions returning objects (patterns, paths, specs ...) carry
        # no scalar unit; only numeric returns are held to the contract.
        annotation = fn.return_annotation
        if annotation and not any(
            token in annotation for token in ("float", "int", "ndarray", "ArrayLike")
        ):
            return
        declared = self.summaries.declared_return(fn)
        if declared is not None:
            return
        inferred = self.summaries.returns.get(fn.qualname)
        if inferred is None and not analysis.return_has_united_subexpr():
            return
        module = self.table.modules[fn.module]
        hint = (
            f"inferred {family(inferred)}-domain ({inferred})"
            if inferred is not None
            else "computed from dB/linear quantities but not inferrable"
        )
        self.reporter.report(
            module,
            fn.node,
            "RL012",
            f"public {fn.module} API returns a physical quantity ({hint}) "
            "but neither its name nor a '# replint: unit=...' annotation "
            "declares the unit",
            context=fn.qualname,
        )
