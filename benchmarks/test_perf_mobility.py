"""Mobility subsystem performance: sampling rate and DES cost.

Two numbers CI tracks in ``benchmarks/results/BENCH_mobility.json``:

* **trajectory sampling** — positions per second from the vectorized
  ``LinearTrajectory.sample_positions`` and the bisect-based
  ``WaypointWalker.position`` paths.  Trajectories are sampled on the
  DES clock every ``update_interval_s``, so this is the hot loop of
  every mobile scenario.
* **re-training under motion** — wall-clock per simulated second of
  the full vehicular drive-by (DES MAC + iperf flow + sweeps), plus
  the scenario's events-per-second, so a regression in the mobility
  tick path shows up as sim-time slowdown rather than being hidden in
  a fixed-iteration micro-loop.

Soft floors are deliberately loose (10x below observed) — they catch
order-of-magnitude regressions, not container jitter.
"""

import json
import math
import pathlib
import time

import numpy as np

from repro.experiments.mobility import build_vehicular_scenario, run_vehicle_pass
from repro.geometry.vec import Vec2
from repro.mobility.trajectory import LinearTrajectory, WaypointWalker

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_mobility.json"

ROUNDS = 3
SAMPLE_BATCH = 100_000
WALKER_CALLS = 20_000

#: Order-of-magnitude floors: vectorized sampling should exceed 1M
#: positions/s, scalar walker lookups 50k/s, and the vehicular DES
#: should simulate a second of motion in under 60 s of wall clock.
VECTOR_SAMPLES_PER_S_FLOOR = 1.0e6
WALKER_CALLS_PER_S_FLOOR = 5.0e4
WALL_PER_SIM_SECOND_CEILING = 60.0


def best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_perf_mobility():
    # -- vectorized trajectory sampling ------------------------------------
    traj = LinearTrajectory(Vec2(-12.0, 4.0), Vec2(20.0, 0.0), duration_s=1.2)
    times = np.linspace(0.0, 1.2, SAMPLE_BATCH)
    vector_s = best_of(lambda: traj.sample_positions(times))
    vector_rate = SAMPLE_BATCH / vector_s

    # -- scalar walker lookups (bisect + lerp) -----------------------------
    walker = WaypointWalker.conference_room(
        8.0, 6.0, np.random.default_rng(5), num_waypoints=12, pause_s=0.5
    )
    instants = [
        (i * 0.001) % walker.duration_s for i in range(WALKER_CALLS)
    ]

    def walk():
        for t in instants:
            walker.position(t)

    walker_s = best_of(walk)
    walker_rate = WALKER_CALLS / walker_s

    # -- full vehicular DES: wall clock per simulated second ---------------
    def drive():
        scenario = build_vehicular_scenario(speed_kmh=110.0, approach_m=6.0)
        return run_vehicle_pass(scenario)

    result = drive()  # warm imports/allocator, keep the row for the doc
    sim_seconds = result["duration_s"]
    drive_s = best_of(drive)
    wall_per_sim_s = drive_s / sim_seconds
    events_per_s = result["events_simulated"] / drive_s

    doc = {
        "vector_samples_per_s": round(vector_rate),
        "walker_positions_per_s": round(walker_rate),
        "vehicular_sim_seconds": round(sim_seconds, 4),
        "vehicular_wall_s": round(drive_s, 4),
        "wall_per_sim_second": round(wall_per_sim_s, 4),
        "des_events_per_s": round(events_per_s),
        "retrains_per_sim_second": round(result["retrains"] / sim_seconds, 2),
        "retrain_overhead_fraction": round(result["overhead_fraction"], 5),
        "vector_floor": VECTOR_SAMPLES_PER_S_FLOOR,
        "walker_floor": WALKER_CALLS_PER_S_FLOOR,
        "wall_per_sim_second_ceiling": WALL_PER_SIM_SECOND_CEILING,
    }
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(
        f"\nmobility perf: vector sampling {vector_rate / 1e6:.1f}M/s, "
        f"walker {walker_rate / 1e3:.0f}k/s, vehicular pass "
        f"{drive_s * 1e3:.0f} ms wall for {sim_seconds * 1e3:.0f} ms sim "
        f"({events_per_s / 1e3:.0f}k events/s, "
        f"{result['retrains']} retrains)"
    )

    assert math.isfinite(wall_per_sim_s)
    assert vector_rate > VECTOR_SAMPLES_PER_S_FLOOR
    assert walker_rate > WALKER_CALLS_PER_S_FLOOR
    assert wall_per_sim_s < WALL_PER_SIM_SECOND_CEILING
