"""Campaign engine performance: parallel + cached vs the serial path.

Runs the (shrunk) beam-pattern semicircle campaign three ways —
serial/cold, parallel/cold, serial/warm-cache — and demonstrates:

* the cached path short-circuits essentially all compute (the >= 10x
  assertion is conservative; in practice it is orders of magnitude);
* the parallel path produces bit-for-bit the serial results, and on
  multi-core hosts beats the serial wall-clock;
* the run telemetry carries the numbers (worker time, wall-clock,
  cache hits) that back those claims.
"""

import os
import time

from repro.campaign.cache import ResultCache
from repro.campaign.runner import run_campaign
from repro.experiments.beam_patterns import semicircle_campaign_spec

POSITIONS = 48
SEEDS = (0, 1)


def _spec():
    return semicircle_campaign_spec(positions=POSITIONS, seeds=SEEDS)


def test_perf_campaign_parallel_and_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")

    t0 = time.perf_counter()
    serial = run_campaign(_spec(), workers=1)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_campaign(_spec(), workers=2, cache=cache)
    parallel_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    cached = run_campaign(_spec(), workers=1, cache=cache)
    cached_wall = time.perf_counter() - t0

    total = serial.telemetry.scenarios_total
    print(
        f"\ncampaign perf ({total} cells, {POSITIONS} positions): "
        f"serial {serial_wall:.2f} s, parallel(2) {parallel_wall:.2f} s, "
        f"cached {cached_wall:.3f} s"
    )

    # Parallel equals serial bit-for-bit; worker count is invisible.
    assert serial.results() == parallel.results()
    assert parallel.telemetry.completed == total

    # Warm cache: nothing recomputed, and dramatically faster.
    assert cached.telemetry.cached == total
    assert cached.telemetry.completed == 0
    assert cached_wall < serial_wall / 10.0
    assert cached.results() == serial.results()

    # Parallel speedup needs actual cores; on multi-core hosts the two
    # workers must overlap their compute.
    if (os.cpu_count() or 1) >= 2:
        assert parallel.telemetry.speedup_vs_serial() > 1.2


def test_perf_campaign_engine_overhead():
    """Engine bookkeeping stays negligible next to cell compute."""
    result = run_campaign(_spec(), workers=1)
    t = result.telemetry
    overhead = t.wall_clock_s - t.worker_time_s
    assert overhead < 0.25 + 0.1 * t.scenarios_total
