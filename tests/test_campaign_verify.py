"""``repro campaign verify``: shard determinism + cache-purity audit.

Cells live in :mod:`tests.campaign_cells` so worker processes resolve
them by dotted path exactly like production cells.
"""

import json

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.verify import (
    VOLATILE_ROW_KEYS,
    canonical_rows,
    rows_digest,
    verify_campaign,
)
from repro.cli import main
from repro.sanitize import PurityAudit

DOUBLE = "tests.campaign_cells:double_cell"
ENV = "tests.campaign_cells:env_reading_cell"
CLOCK = "tests.campaign_cells:clock_reading_cell"
FILEREAD = "tests.campaign_cells:file_reading_cell"
BROKEN = "tests.campaign_cells:always_fails"


def double_campaign(values=(1, 2, 3, 4), seeds=(0, 1)):
    return CampaignSpec(
        name="doubles",
        experiment=DOUBLE,
        base_params={"scale": 3},
        grid={"value": tuple(values)},
        seeds=seeds,
    )


class TestPurityAudit:
    def test_pure_cell_records_nothing(self):
        from tests.campaign_cells import double_cell

        with PurityAudit() as audit:
            double_cell(value=2, seed=1, repetition=0)
        assert audit.records == []

    def test_env_read_recorded(self, monkeypatch):
        from tests.campaign_cells import env_reading_cell

        monkeypatch.setenv("REPRO_TEST_SCALE", "7")
        with PurityAudit() as audit:
            env_reading_cell(seed=3)
        assert [(r.kind, r.detail) for r in audit.records] == [
            ("env", "REPRO_TEST_SCALE")
        ]

    def test_clock_read_recorded(self):
        from tests.campaign_cells import clock_reading_cell

        with PurityAudit() as audit:
            clock_reading_cell(seed=3)
        assert ("clock", "time.time") in [
            (r.kind, r.detail) for r in audit.records
        ]

    def test_file_read_recorded(self, tmp_path):
        from tests.campaign_cells import file_reading_cell

        calib = tmp_path / "calib.txt"
        calib.write_text("1.5\n")
        with PurityAudit() as audit:
            result = file_reading_cell(calib_path=str(calib), seed=2)
        assert result["value"] == 3.5
        assert ("file", str(calib)) in [(r.kind, r.detail) for r in audit.records]

    def test_allowed_env_not_recorded(self, monkeypatch):
        from tests.campaign_cells import env_reading_cell

        monkeypatch.setenv("REPRO_TEST_SCALE", "7")
        with PurityAudit(allowed_env=("REPRO_TEST_SCALE",)) as audit:
            env_reading_cell(seed=3)
        assert audit.records == []

    def test_patches_restored_on_exit(self):
        import builtins
        import os
        import time

        before = (builtins.open, os.environ, time.time)
        with PurityAudit():
            pass
        assert (builtins.open, os.environ, time.time) == before

    def test_patches_restored_on_exception(self):
        import builtins

        before = builtins.open
        with pytest.raises(RuntimeError):
            with PurityAudit():
                raise RuntimeError("boom")
        assert builtins.open is before

    def test_digest_is_order_independent(self):
        a = PurityAudit()
        a.note("env", "B")
        a.note("file", "A")
        b = PurityAudit()
        b.note("file", "A")
        b.note("env", "B")
        assert a.digest() == b.digest()


class TestCanonicalRows:
    def test_volatile_keys_dropped(self):
        report_spec = double_campaign(values=(1,), seeds=(0,))
        report = verify_campaign(
            report_spec, workers=2, audit=False, cache_check=False
        )
        assert report.determinism_ok
        serial_rows = canonical_rows  # sanity: importable + callable
        assert callable(serial_rows)
        assert set(VOLATILE_ROW_KEYS) == {"elapsed_s", "attempts", "status", "shard"}

    def test_rows_digest_stable(self):
        assert rows_digest("x") == rows_digest("x")
        assert rows_digest("x") != rows_digest("y")


class TestVerifyCampaign:
    def test_deterministic_campaign_passes(self):
        report = verify_campaign(double_campaign(), workers=4, shuffle_seed=3)
        assert report.determinism_ok
        assert report.purity_ok
        assert report.cache_ok
        assert report.ok
        assert report.serial_digest == report.parallel_digest == report.cache_digest
        assert report.cache_all_hits
        assert report.audited == min(16, report.scenarios)
        assert report.impure == 0

    def test_impure_cell_fails_purity(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SCALE", "2")
        spec = CampaignSpec(
            name="env-cells",
            experiment=ENV,
            base_params={},
            grid={},
            seeds=(0, 1),
        )
        report = verify_campaign(spec, workers=2, cache_check=False)
        assert not report.purity_ok
        assert report.impure == 2
        reads = report.audits[0].reads
        assert {"kind": "env", "detail": "REPRO_TEST_SCALE"} in reads
        assert not report.ok

    def test_clock_cell_fails_determinism_and_purity(self):
        spec = CampaignSpec(
            name="clock-cells",
            experiment=CLOCK,
            base_params={},
            grid={},
            seeds=(0,),
        )
        report = verify_campaign(spec, workers=2, cache_check=False)
        # The wall-clock stamp differs between the two runs *and* the
        # audit records the clock read.
        assert not report.determinism_ok
        assert report.first_divergence
        assert not report.purity_ok
        assert not report.ok

    def test_failing_cells_compare_deterministically(self):
        spec = CampaignSpec(
            name="broken",
            experiment=BROKEN,
            base_params={},
            grid={},
            seeds=(0, 1),
        )
        report = verify_campaign(
            spec, workers=2, audit=False, cache_check=False
        )
        # Failures are recorded, not fatal — and identically so.
        assert report.determinism_ok
        assert report.ok

    def test_audit_limit_respected(self):
        report = verify_campaign(
            double_campaign(), workers=2, audit_limit=3, cache_check=False
        )
        assert report.audited == 3

    def test_report_dict_shape(self):
        report = verify_campaign(
            double_campaign(values=(1,), seeds=(0,)), workers=2
        )
        doc = report.to_dict()
        for key in (
            "campaign",
            "scenarios",
            "workers",
            "shuffle_seed",
            "serial_digest",
            "parallel_digest",
            "determinism_ok",
            "audited",
            "impure",
            "purity_ok",
            "cache_checked",
            "cache_all_hits",
            "cache_digest",
            "cache_ok",
            "ok",
        ):
            assert key in doc
        assert doc["ok"] is True
        assert json.dumps(doc)  # JSON-serializable


class TestVerifyCli:
    def test_cli_pass_and_output(self, capsys):
        rc = main(
            [
                "campaign",
                "verify",
                "beam-patterns",
                "--set",
                "positions=8",
                "--workers",
                "2",
                "--audit-cells",
                "2",
                "--no-cache-check",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "[MATCH]" in out
        assert "verify: PASS" in out

    def test_cli_json_output(self, capsys):
        rc = main(
            [
                "campaign",
                "verify",
                "beam-patterns",
                "--set",
                "positions=8",
                "--workers",
                "2",
                "--no-audit",
                "--no-cache-check",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        doc = json.loads(out)
        assert doc["ok"] is True
        assert doc["determinism_ok"] is True
        assert doc["audited"] == 0
