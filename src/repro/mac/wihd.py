"""WiHD (DVDO Air-3c) MAC model.

The WiHD system behaves very differently from WiGig (Section 4.1,
Figure 15):

* the *receiver* emits short beacons every 0.224 ms;
* the transmitter emits data frames of variable length following those
  beacons whenever video data is queued — with no visible per-frame
  acknowledgment exchange;
* there is **no carrier sensing**: the system "blindly transmits data
  causing collisions and retransmissions at the D5000 systems"
  (Section 3.2), which is the root cause of all the inter-system
  interference results (Sections 4.3, 4.4);
* while unpaired, a device discovery frame goes out every 20 ms.

The video source is a constant-bitrate stream (HDMI transport); data
queued since the last beacon is sent right after the next beacon in a
single variable-length frame, clamped to the frame-duration bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.frames import FrameKind, FrameRecord, MacTiming, WIHD_TIMING
from repro.mac.simulator import Medium, Simulator, Station

#: PHY rate of the WiHD high-rate PHY used for video data.  WirelessHD
#: HRP operates around 3.8 Gbps; the exact value only scales frame
#: durations.
WIHD_PHY_RATE_BPS = 3.8e9

#: Fixed per-frame on-air overhead.
WIHD_FRAME_OVERHEAD_S = 5.0e-6


class WiHDStation(Station):
    """A WiHD endpoint.  Wider patterns, no carrier sensing."""

    def __init__(self, name: str, position, **kwargs):
        kwargs.setdefault("tx_power_dbm", 12.0)
        # CCA threshold is irrelevant (never consulted) but set to an
        # impossible level for clarity.
        kwargs.setdefault("cca_threshold_dbm", 1000.0)
        super().__init__(name, position, **kwargs)


@dataclass
class WiHDLinkStats:
    """Counters accumulated by a :class:`WiHDLink`."""

    beacons_sent: int = 0
    data_frames_sent: int = 0
    bits_sent: int = 0


class WiHDLink:
    """One WiHD transmitter/receiver pair streaming video.

    Args:
        sim: Shared event loop.
        medium: Shared channel.
        transmitter: The HDMI source module.
        receiver: The HDMI sink module (beacon origin).
        video_rate_bps: Constant bitrate of the (compressed) stream.
            Set to 0 for an idle link (beacons only).
        timing: MAC timing constants.
        paired: When False the transmitter sends discovery frames every
            20 ms instead of streaming.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        transmitter: Station,
        receiver: Station,
        video_rate_bps: float = 3.0e9,
        timing: MacTiming = WIHD_TIMING,
        paired: bool = True,
    ):
        if video_rate_bps < 0:
            raise ValueError("video rate must be non-negative")
        self.sim = sim
        self.medium = medium
        self.tx = transmitter
        self.rx = receiver
        self.timing = timing
        self.stats = WiHDLinkStats()
        self._video_rate = video_rate_bps
        self._queued_bits = 0.0
        self._last_fill = sim.now
        self._paired = paired
        self._powered = True
        self._schedule_beacon()
        if not paired:
            self._schedule_discovery()

    # -- power and stream control ----------------------------------------

    def power_off(self) -> None:
        """Stop all transmissions (the Figure 23 on/off experiment)."""
        self._powered = False

    def power_on(self) -> None:
        """Resume beaconing and streaming."""
        if not self._powered:
            self._powered = True
            self._last_fill = self.sim.now
            self._queued_bits = 0.0
            self._schedule_beacon()

    def set_video_rate(self, rate_bps: float) -> None:
        """Change the stream bitrate (0 stops data, keeps beacons)."""
        if rate_bps < 0:
            raise ValueError("video rate must be non-negative")
        self._fill_queue()
        self._video_rate = rate_bps

    @property
    def powered(self) -> bool:
        return self._powered

    # -- internals ---------------------------------------------------------

    def _fill_queue(self) -> None:
        now = self.sim.now
        self._queued_bits += self._video_rate * (now - self._last_fill)
        self._last_fill = now

    def _schedule_beacon(self) -> None:
        self.sim.schedule(self.timing.beacon_interval_s, self._beacon_tick)

    def _beacon_tick(self) -> None:
        if not self._powered:
            return
        beacon = FrameRecord(
            start_s=self.sim.now,
            duration_s=self.timing.beacon_frame_s,
            source=self.rx.name,
            destination="",
            kind=FrameKind.BEACON,
        )
        self.medium.transmit(beacon)
        self.stats.beacons_sent += 1
        if self._paired:
            self.sim.schedule(
                self.timing.beacon_frame_s + self.timing.sifs_s, self._send_data
            )
        self._schedule_beacon()

    def _send_data(self) -> None:
        if not self._powered:
            return
        self._fill_queue()
        if self._queued_bits <= 0:
            return
        max_payload_time = self.timing.max_data_frame_s - WIHD_FRAME_OVERHEAD_S
        payload_time = min(self._queued_bits / WIHD_PHY_RATE_BPS, max_payload_time)
        duration = WIHD_FRAME_OVERHEAD_S + payload_time
        if duration < self.timing.min_data_frame_s:
            duration = self.timing.min_data_frame_s
        bits = payload_time * WIHD_PHY_RATE_BPS
        self._queued_bits = max(0.0, self._queued_bits - bits)
        frame = FrameRecord(
            start_s=self.sim.now,
            duration_s=duration,
            source=self.tx.name,
            destination=self.rx.name,
            kind=FrameKind.DATA,
            mcs_index=9,  # nominal; WiHD rate is carried by the PHY model
            payload_bits=int(bits),
        )
        self.medium.transmit(frame)
        self.stats.data_frames_sent += 1
        self.stats.bits_sent += int(bits)

    def _schedule_discovery(self) -> None:
        self.sim.schedule(self.timing.discovery_interval_s, self._discovery_tick)

    def _discovery_tick(self) -> None:
        if self._paired or not self._powered:
            return
        frame = FrameRecord(
            start_s=self.sim.now,
            duration_s=self.timing.discovery_frame_s,
            source=self.tx.name,
            destination="",
            kind=FrameKind.DISCOVERY,
        )
        self.medium.transmit(frame)
        self._schedule_discovery()
