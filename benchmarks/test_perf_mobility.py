"""Mobility subsystem performance: sampling rate and DES cost.

Two numbers CI tracks in ``benchmarks/results/BENCH_mobility.json``
(unified :mod:`repro.obs.bench` schema):

* **trajectory sampling** — positions per second from the vectorized
  ``LinearTrajectory.sample_positions`` and the bisect-based
  ``WaypointWalker.position`` paths.  Trajectories are sampled on the
  DES clock every ``update_interval_s``, so this is the hot loop of
  every mobile scenario.
* **re-training under motion** — wall-clock per simulated second of
  the full vehicular drive-by (DES MAC + iperf flow + sweeps), plus
  the scenario's events-per-second, so a regression in the mobility
  tick path shows up as sim-time slowdown rather than being hidden in
  a fixed-iteration micro-loop.

Soft floors are deliberately loose (10x below observed) — they catch
order-of-magnitude regressions, not container jitter.
"""

import math
import pathlib
import time

import numpy as np

from repro.experiments.mobility import build_vehicular_scenario, run_vehicle_pass
from repro.geometry.vec import Vec2
from repro.mobility.trajectory import LinearTrajectory, WaypointWalker
from repro.obs.bench import bench_entry, write_bench

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_mobility.json"

ROUNDS = 3
SAMPLE_BATCH = 100_000
WALKER_CALLS = 20_000

#: Order-of-magnitude floors: vectorized sampling should exceed 1M
#: positions/s, scalar walker lookups 50k/s, and the vehicular DES
#: should simulate a second of motion in under 60 s of wall clock.
VECTOR_SAMPLES_PER_S_FLOOR = 1.0e6
WALKER_CALLS_PER_S_FLOOR = 5.0e4
WALL_PER_SIM_SECOND_CEILING = 60.0


def best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_perf_mobility():
    # -- vectorized trajectory sampling ------------------------------------
    traj = LinearTrajectory(Vec2(-12.0, 4.0), Vec2(20.0, 0.0), duration_s=1.2)
    times = np.linspace(0.0, 1.2, SAMPLE_BATCH)
    vector_s = best_of(lambda: traj.sample_positions(times))
    vector_rate = SAMPLE_BATCH / vector_s

    # -- scalar walker lookups (bisect + lerp) -----------------------------
    walker = WaypointWalker.conference_room(
        8.0, 6.0, np.random.default_rng(5), num_waypoints=12, pause_s=0.5
    )
    instants = [
        (i * 0.001) % walker.duration_s for i in range(WALKER_CALLS)
    ]

    def walk():
        for t in instants:
            walker.position(t)

    walker_s = best_of(walk)
    walker_rate = WALKER_CALLS / walker_s

    # -- full vehicular DES: wall clock per simulated second ---------------
    def drive():
        scenario = build_vehicular_scenario(speed_kmh=110.0, approach_m=6.0)
        return run_vehicle_pass(scenario)

    result = drive()  # warm imports/allocator, keep the row for the doc
    sim_seconds = result["duration_s"]
    drive_s = best_of(drive)
    wall_per_sim_s = drive_s / sim_seconds
    events_per_s = result["events_simulated"] / drive_s

    write_bench(RESULTS, "mobility", [
        # Throughput rates: higher is better.  Wide tolerance — the
        # hard floors/ceilings are asserted below; the regression gate
        # only flags order-of-magnitude drift across CI machines.
        bench_entry("vector_samples_per_s", round(vector_rate), "pos/s",
                    "higher", tolerance=5.0),
        bench_entry("walker_positions_per_s", round(walker_rate), "pos/s",
                    "higher", tolerance=5.0),
        bench_entry("des_events_per_s", round(events_per_s), "events/s",
                    "higher", tolerance=5.0),
        bench_entry("wall_per_sim_second", round(wall_per_sim_s, 4), "s/s",
                    "lower", tolerance=5.0),
        # Context: scenario shape (deterministic) and raw wall time.
        bench_entry("vehicular_sim_seconds", round(sim_seconds, 4), "s",
                    "info"),
        bench_entry("vehicular_wall_s", round(drive_s, 4), "s", "info"),
        bench_entry("retrains_per_sim_second",
                    round(result["retrains"] / sim_seconds, 2), "1/s", "info"),
        bench_entry("retrain_overhead_fraction",
                    round(result["overhead_fraction"], 5), "fraction",
                    "info"),
    ])

    print(
        f"\nmobility perf: vector sampling {vector_rate / 1e6:.1f}M/s, "
        f"walker {walker_rate / 1e3:.0f}k/s, vehicular pass "
        f"{drive_s * 1e3:.0f} ms wall for {sim_seconds * 1e3:.0f} ms sim "
        f"({events_per_s / 1e3:.0f}k events/s, "
        f"{result['retrains']} retrains)"
    )

    assert math.isfinite(wall_per_sim_s)
    assert vector_rate > VECTOR_SAMPLES_PER_S_FLOOR
    assert walker_rate > WALKER_CALLS_PER_S_FLOOR
    assert wall_per_sim_s < WALL_PER_SIM_SECOND_CEILING
