"""Wall and obstacle materials with 60 GHz reflection properties.

Section 3.2 of the paper measures reflections in a room with brick,
glass, and wood walls, and a dedicated metal reflector in the
reflection-interference setup (Figure 7).  At 60 GHz these materials
behave very differently: metal is an almost perfect reflector, glass
and brick reflect strongly, while wood and drywall absorb more.

The reflection losses below are representative values for near-specular
incidence taken from the 60 GHz indoor propagation literature the paper
builds on (Xu et al. [5]; Manabe et al. [8]).  Exact values vary with
incidence angle and material composition; what matters for reproducing
the paper's findings is the ordering metal < glass < brick < wood
(in loss) and the fact that even second-order reflections remain above
the noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Material:
    """Reflection/penetration behavior of a surface at 60 GHz.

    Attributes:
        name: Human-readable identifier.
        reflection_loss_db: Power lost on a (near-)specular bounce, dB.
        penetration_loss_db: Power lost when a ray passes through, dB.
            60 GHz signals barely penetrate most building materials;
            large values effectively model opaque walls.
        scattering_db: Extra loss spread applied to non-specular energy;
            kept for forward compatibility with diffuse models.
    """

    name: str
    reflection_loss_db: float
    penetration_loss_db: float
    scattering_db: float = 0.0

    def __post_init__(self) -> None:
        if self.reflection_loss_db < 0:
            raise ValueError("reflection loss must be non-negative dB")
        if self.penetration_loss_db < 0:
            raise ValueError("penetration loss must be non-negative dB")


#: Registry of the materials appearing in the paper's setups.
MATERIALS: Dict[str, Material] = {
    "metal": Material("metal", reflection_loss_db=0.8, penetration_loss_db=60.0),
    "glass": Material("glass", reflection_loss_db=3.0, penetration_loss_db=12.0),
    "brick": Material("brick", reflection_loss_db=5.0, penetration_loss_db=40.0),
    "concrete": Material("concrete", reflection_loss_db=6.0, penetration_loss_db=45.0),
    "wood": Material("wood", reflection_loss_db=8.0, penetration_loss_db=15.0),
    "drywall": Material("drywall", reflection_loss_db=10.0, penetration_loss_db=8.0),
    # A lossy absorber used to model the shielding elements in the
    # reflection-interference setup (Figure 7).
    "absorber": Material("absorber", reflection_loss_db=30.0, penetration_loss_db=50.0),
}


def get_material(name: str) -> Material:
    """Look up a material by name, with a helpful error message."""
    try:
        return MATERIALS[name]
    except KeyError:
        raise KeyError(
            f"unknown material {name!r}; known: {sorted(MATERIALS)}"
        ) from None
