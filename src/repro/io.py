"""Persistence for traces and frame records.

A measurement toolkit needs to store captures: the paper's workflow was
oscilloscope -> files -> offline Matlab.  This module provides the
equivalent round trips:

* :func:`save_trace` / :func:`load_trace` — amplitude traces as
  compressed ``.npz`` (samples + metadata);
* :func:`save_frame_records` / :func:`load_frame_records` — ground
  truth or detected frames as JSON lines, one frame per line, which
  diff cleanly and stream well;
* :func:`export_detected_frames_csv` — a flat CSV for spreadsheet
  analysis of detected frames.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.core.frames import DetectedFrame
from repro.mac.frames import FrameKind, FrameRecord
from repro.phy.signal import Trace

PathLike = Union[str, pathlib.Path]

#: Format tag written into every trace file; bump on layout changes.
TRACE_FORMAT_VERSION = 1


def save_jsonl(rows: Iterable[dict], path: PathLike) -> int:
    """Write dict rows as JSON lines; returns the count written.

    The repo's convention for record streams (frame records, campaign
    results): one compact JSON document per line — diffs cleanly,
    streams well, and greps with standard tools.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count


def load_jsonl(path: PathLike) -> List[dict]:
    """Read rows written by :func:`save_jsonl`; blank lines skipped."""
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: bad JSON line ({exc})") from exc
    return rows


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write a trace to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        samples=trace.samples,
        sample_rate_hz=np.array([trace.sample_rate_hz]),
        start_s=np.array([trace.start_s]),
        version=np.array([TRACE_FORMAT_VERSION]),
    )


def load_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        version = int(data["version"][0]) if "version" in data else 0
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        return Trace(
            samples=np.array(data["samples"]),
            sample_rate_hz=float(data["sample_rate_hz"][0]),
            start_s=float(data["start_s"][0]),
        )


def _record_to_dict(record: FrameRecord) -> dict:
    return {
        "start_s": record.start_s,
        "duration_s": record.duration_s,
        "source": record.source,
        "destination": record.destination,
        "kind": record.kind.value,
        "mcs_index": record.mcs_index,
        "payload_bits": record.payload_bits,
        "aggregated_mpdus": record.aggregated_mpdus,
        "delivered": record.delivered,
        "retransmission": record.retransmission,
    }


def _record_from_dict(data: dict) -> FrameRecord:
    return FrameRecord(
        start_s=data["start_s"],
        duration_s=data["duration_s"],
        source=data["source"],
        destination=data["destination"],
        kind=FrameKind(data["kind"]),
        mcs_index=data.get("mcs_index", 0),
        payload_bits=data.get("payload_bits", 0),
        aggregated_mpdus=data.get("aggregated_mpdus", 0),
        delivered=data.get("delivered"),
        retransmission=data.get("retransmission", False),
    )


def save_frame_records(records: Iterable[FrameRecord], path: PathLike) -> int:
    """Write frame records as JSON lines; returns the count written."""
    return save_jsonl((_record_to_dict(r) for r in records), path)


def load_frame_records(path: PathLike) -> List[FrameRecord]:
    """Read frame records written by :func:`save_frame_records`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(_record_from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: bad frame record ({exc})") from exc
    return records


def export_detected_frames_csv(
    frames: Sequence[DetectedFrame], path: PathLike
) -> None:
    """Write detected frames to CSV (start, duration, amplitudes)."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["start_s", "duration_s", "mean_amplitude_v", "peak_amplitude_v"])
        for frame in frames:
            writer.writerow(
                [frame.start_s, frame.duration_s, frame.mean_amplitude_v, frame.peak_amplitude_v]
            )


def import_detected_frames_csv(path: PathLike) -> List[DetectedFrame]:
    """Read detected frames from :func:`export_detected_frames_csv` CSV."""
    frames = []
    with open(path, "r", newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            frames.append(
                DetectedFrame(
                    start_s=float(row["start_s"]),
                    duration_s=float(row["duration_s"]),
                    mean_amplitude_v=float(row["mean_amplitude_v"]),
                    peak_amplitude_v=float(row["peak_amplitude_v"]),
                )
            )
    return frames
