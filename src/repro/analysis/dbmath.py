"""Decibel arithmetic helpers.

All antenna gains, path losses, and signal strengths in the toolkit are
carried in dB (or dBm for absolute power).  Mixing linear and log-domain
math by hand is a classic source of subtle bugs in link-budget code, so
every conversion goes through the functions in this module.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

import numpy as np

ArrayLike = Union[float, np.ndarray, Iterable[float]]

#: Floor used when converting zero linear power to dB, to avoid -inf
#: propagating through downstream averaging.  -300 dB is far below any
#: physically meaningful value in this toolkit.
DB_FLOOR = -300.0


def db_to_linear(value_db: ArrayLike) -> np.ndarray:
    """Convert a dB quantity to its linear power ratio (10^(x/10))."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0)


# Alias that reads better when the argument is explicitly a power ratio.
db_to_power_ratio = db_to_linear


def linear_to_db(value: ArrayLike) -> np.ndarray:
    """Convert a linear power ratio to dB, flooring non-positive input.

    Zero (or negative, from numerical noise) power maps to
    :data:`DB_FLOOR` rather than raising or producing ``-inf``.
    """
    arr = np.asarray(value, dtype=float)
    out = np.full_like(arr, DB_FLOOR, dtype=float)
    positive = arr > 0
    np.log10(arr, out=out, where=positive)
    out[positive] *= 10.0
    return out


def db_to_linear_scalar(value_db: float) -> float:
    """Scalar fast path of :func:`db_to_linear` for DES hot loops.

    Uses :mod:`math` rather than numpy: bit-identical to the inline
    ``10.0 ** (x / 10.0)`` it replaces, with no array round-trip.  (The
    numpy and libm ``log10``/``pow`` implementations differ by an ULP
    on a small fraction of inputs, so the scalar and array variants
    are each bit-stable but not interchangeable at the last bit.)
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db_scalar(value: float) -> float:
    """Scalar fast path of :func:`linear_to_db`.

    Applies the same :data:`DB_FLOOR` guard: non-positive linear power
    maps to the floor instead of raising or returning ``-inf``.
    """
    if value <= 0.0:
        return DB_FLOOR
    return 10.0 * math.log10(value)


def db_to_amplitude_scalar(value_db: float) -> float:
    """dB to amplitude (voltage) ratio: ``10^(x/20)``, scalar."""
    return 10.0 ** (value_db / 20.0)


def amplitude_to_db_scalar(ratio: float) -> float:
    """Amplitude (voltage) ratio to dB: ``20 log10(r)``, scalar.

    Non-positive ratios map to :data:`DB_FLOOR`, mirroring
    :func:`linear_to_db_scalar`.
    """
    if ratio <= 0.0:
        return DB_FLOOR
    return 20.0 * math.log10(ratio)


def amplitude_to_db(ratio: ArrayLike) -> np.ndarray:
    """Amplitude (voltage) ratio to dB: ``20 log10(r)``, array variant.

    Non-positive ratios map to :data:`DB_FLOOR`.  Uses numpy's
    ``log10`` (not :mod:`math`), so it is bit-identical to the inline
    ``20.0 * np.log10(r)`` it replaces — see the note on
    :func:`db_to_linear_scalar` about the two implementations not
    being interchangeable at the last bit.
    """
    arr = np.asarray(ratio, dtype=float)
    out = np.full_like(arr, DB_FLOOR, dtype=float)
    positive = arr > 0
    np.log10(arr, out=out, where=positive)
    out[positive] *= 20.0
    return out


def log_distance_loss_db(excess_exponent: float, distance: float) -> float:
    """Excess log-distance path-loss term ``10 * n * log10(d)`` in dB.

    Evaluated with the grouping ``(10 * n) * log10(d)``.  Float
    multiplication is non-associative and the campaign engine's
    content-addressed cache keys on bit-identical outputs, so the
    historical operand order is part of this function's contract — do
    not regroup it.  ``distance`` must be positive (it is a physical
    distance in metres); no :data:`DB_FLOOR` guard is applied.
    """
    return 10.0 * excess_exponent * math.log10(distance)


def watts_to_dbm(power_watts: ArrayLike) -> np.ndarray:
    """Convert absolute power in watts to dBm."""
    return linear_to_db(np.asarray(power_watts, dtype=float) * 1e3)


def dbm_to_watts(power_dbm: ArrayLike) -> np.ndarray:
    """Convert absolute power in dBm to watts."""
    return db_to_linear(power_dbm) * 1e-3


def power_sum_db(values_db: Iterable[float]) -> float:
    """Sum powers expressed in dB, returning the total in dB.

    Used to combine multipath components arriving from the same
    direction: powers add in the linear domain.
    """
    values = np.asarray(list(values_db), dtype=float)
    if values.size == 0:
        return DB_FLOOR
    return float(linear_to_db(np.sum(db_to_linear(values))))


def power_average_db(values_db: Iterable[float]) -> float:
    """Average powers expressed in dB (linear-domain mean, back to dB).

    This is how the paper averages the received signal strength of
    filtered data frames over the one-minute capture window at each
    measurement position (Section 3.2).
    """
    values = np.asarray(list(values_db), dtype=float)
    if values.size == 0:
        raise ValueError("cannot average an empty set of powers")
    return float(linear_to_db(np.mean(db_to_linear(values))))
