"""Shared fixtures for the test suite.

Device construction (array factor + codebook over 720-point grids) is
the slow part of many tests; the session-scoped fixtures below build
each device once.  Tests that mutate device state (training, beam
selection) must either restore it or build their own instance.
"""

from __future__ import annotations

import math

import pytest

from repro.devices.air3c import make_air3c_receiver, make_air3c_transmitter
from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.geometry.vec import Vec2


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run the whole suite under the repro.sanitize runtime sanitizer "
        "and fail the session if any unit/RNG violation is recorded",
    )


@pytest.fixture(scope="session", autouse=True)
def _session_sanitizer(request):
    """Opt-in runtime sanitizer across the whole test session."""
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro import sanitize

    sanitize.enable("warn")
    sanitize.clear_violations()
    yield
    found = sanitize.violations()
    sanitize.disable()
    if found:
        details = "\n\n".join(v.render() for v in found[:10])
        pytest.fail(
            f"sanitizer recorded {len(found)} violation(s) during the session:\n"
            f"{details}",
            pytrace=False,
        )


@pytest.fixture(scope="session")
def dock():
    """A D5000 dock at the origin facing +x (session-shared)."""
    return make_d5000_dock(position=Vec2(0.0, 0.0), orientation_rad=0.0)


@pytest.fixture(scope="session")
def laptop():
    """An E7440 notebook 2 m away facing the dock (session-shared)."""
    return make_e7440_laptop(position=Vec2(2.0, 0.0), orientation_rad=math.pi)


@pytest.fixture(scope="session")
def wihd_pair():
    """An Air-3c TX/RX pair 8 m apart (session-shared)."""
    tx = make_air3c_transmitter(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    rx = make_air3c_receiver(position=Vec2(8.0, 0.0), orientation_rad=math.pi)
    return tx, rx


@pytest.fixture(scope="session")
def trained_pair():
    """A dock/laptop pair trained toward each other (own instances)."""
    d = make_d5000_dock(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    lp = make_e7440_laptop(position=Vec2(2.0, 0.0), orientation_rad=math.pi)
    d.train_toward(lp.position)
    lp.train_toward(d.position)
    return d, lp
