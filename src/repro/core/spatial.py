"""Spatial-reuse planning tools: the paper's design principles, coded.

Section 5 derives two design principles this module operationalizes:

* *"MAC layer designs which exploit the sparsity of 60 GHz signals to
  increase spatial reuse may incur unexpected collisions ... such
  protocols should extend this geometric approach to include up to two
  signal reflections off walls"* — so the conflict test here evaluates
  the actual multipath coupling (LOS + first/second-order bounces +
  side lobes), not main-lobe geometry.
* *"60 GHz networks should implement multiple MAC behaviors and choose
  the one which is most suitable for the beam patterns of the
  individual devices"* — :func:`recommend_mac_behavior` maps a device's
  measured pattern quality to a protection level.

The tools operate on :class:`~repro.devices.base.RadioDevice` objects
plus a :class:`~repro.mac.coupling.DeviceCoupling`, so they account for
everything the library models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.devices.base import RadioDevice
from repro.geometry.vec import Vec2
from repro.mac.coupling import DeviceCoupling
from repro.phy.channel import LinkBudget

#: Default SINR headroom (dB) a victim needs over an aggressor for the
#: links to count as non-conflicting: top-MCS threshold (16) plus the
#: rate controller's backoff and a fade margin.
DEFAULT_PROTECTION_MARGIN_DB = 20.0


@dataclass(frozen=True)
class Link:
    """One directional link: a transmitter and its receiver device."""

    tx: RadioDevice
    rx: RadioDevice

    @property
    def name(self) -> str:
        return f"{self.tx.name}->{self.rx.name}"


@dataclass(frozen=True)
class Conflict:
    """An aggressor transmitter that breaks a victim link's margin."""

    victim: str
    aggressor: str
    signal_snr_db: float
    interference_snr_db: float

    @property
    def margin_db(self) -> float:
        return self.signal_snr_db - self.interference_snr_db


def link_margins(
    links: Sequence[Link],
    coupling: DeviceCoupling,
) -> List[Conflict]:
    """Signal-vs-interference margins for every (victim, aggressor) pair.

    For each victim link and each *other* link's transmitter, computes
    the victim's signal SNR and the aggressor's interference SNR at the
    victim receiver through the full coupling model (patterns, side
    lobes, reflections, blockage).
    """
    rows: List[Conflict] = []
    for victim in links:
        signal = coupling.snr_db(victim.tx.name, victim.rx.name)
        for other in links:
            if other is victim:
                continue
            interference = coupling.snr_db(other.tx.name, victim.rx.name)
            rows.append(
                Conflict(
                    victim=victim.name,
                    aggressor=other.tx.name,
                    signal_snr_db=signal,
                    interference_snr_db=interference,
                )
            )
    return rows


def conflict_graph(
    links: Sequence[Link],
    coupling: DeviceCoupling,
    margin_db: float = DEFAULT_PROTECTION_MARGIN_DB,
) -> List[Tuple[str, str]]:
    """Pairs of links that cannot operate concurrently.

    Two links conflict when either one's transmitter erodes the other's
    margin below ``margin_db``.  The output is an edge list over link
    names, ready for graph coloring / scheduling.
    """
    by_tx: Dict[str, str] = {link.tx.name: link.name for link in links}
    edges = set()
    for row in link_margins(links, coupling):
        if row.margin_db < margin_db:
            a = row.victim
            b = by_tx[row.aggressor]
            if a != b:
                edges.add(tuple(sorted((a, b))))
    return sorted(edges)


def greedy_schedule(
    links: Sequence[Link],
    coupling: DeviceCoupling,
    margin_db: float = DEFAULT_PROTECTION_MARGIN_DB,
) -> List[List[str]]:
    """Greedy coloring of the conflict graph into concurrent groups.

    Links in the same group can transmit simultaneously; the number of
    groups is the airtime-division factor the interference costs.
    """
    edges = set(conflict_graph(links, coupling, margin_db))
    groups: List[List[str]] = []
    for link in links:
        placed = False
        for group in groups:
            if all(tuple(sorted((link.name, member))) not in edges for member in group):
                group.append(link.name)
                placed = True
                break
        if not placed:
            groups.append([link.name])
    return groups


def coverage_map(
    device: RadioDevice,
    coupling_budget: LinkBudget,
    bounds: Tuple[float, float, float, float],
    resolution_m: float = 0.5,
    tracer=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SNR (dB) a probe receiver would see on a grid of positions.

    Uses the device's *current* active beam, an isotropic probe, and —
    when a tracer is given — all propagation paths.  Returns
    ``(xs, ys, snr)`` where ``snr[j, i]`` corresponds to
    ``(xs[i], ys[j])``.

    Positions co-located with the device (within half a grid cell) get
    ``+inf``; unreachable positions get ``-inf``.
    """
    x0, y0, x1, y1 = bounds
    if x1 <= x0 or y1 <= y0:
        raise ValueError("bounds must span a positive area")
    xs = np.arange(x0, x1 + resolution_m / 2, resolution_m)
    ys = np.arange(y0, y1 + resolution_m / 2, resolution_m)
    snr = np.full((ys.size, xs.size), -math.inf)
    from repro.analysis.dbmath import power_sum_db

    for j, y in enumerate(ys):
        for i, x in enumerate(xs):
            probe = Vec2(float(x), float(y))
            distance = device.position.distance_to(probe)
            if distance < resolution_m / 2:
                snr[j, i] = math.inf
                continue
            if tracer is None:
                rx = coupling_budget.received_power_dbm(
                    distance, device.tx_gain_dbi(probe), 0.0
                )
                snr[j, i] = rx - coupling_budget.noise_floor_dbm()
                continue
            paths = tracer.trace(device.position, probe)
            if not paths:
                continue
            contributions = []
            for path in paths:
                departure = device.position + Vec2.unit(path.departure_angle_rad())
                loss = coupling_budget.propagation_loss_db(path.length_m())
                loss += path.extra_loss_db()
                contributions.append(
                    coupling_budget.tx_power_dbm
                    + device.tx_gain_dbi(departure)
                    - loss
                    - coupling_budget.implementation_loss_db
                )
            snr[j, i] = power_sum_db(contributions) - coupling_budget.noise_floor_dbm()
    return xs, ys, snr


def recommended_tx_power_dbm(
    link: Link,
    coupling: DeviceCoupling,
    target_snr_db: float = 20.0,
    min_power_dbm: float = -10.0,
    max_power_dbm: float = 10.0,
) -> float:
    """Transmit power control per the paper's "Range" design principle.

    Section 5: "devices may need to adjust their transmit power to
    control interference even in quasi-static scenarios".  This
    computes the lowest conducted power that still gives the victim
    link ``target_snr_db`` (top-MCS threshold plus margin) — every dB
    shaved off the transmitter is a dB less side-lobe interference at
    everyone else.

    Returns a value clamped to the radio's ``[min, max]`` power range;
    a link that cannot reach the target even at full power gets
    ``max_power_dbm``.
    """
    if target_snr_db <= 0:
        raise ValueError("target SNR must be positive")
    current_power = link.tx.tx_power_dbm
    snr_at_current = coupling.snr_db(link.tx.name, link.rx.name)
    needed = current_power - (snr_at_current - target_snr_db)
    return float(min(max_power_dbm, max(min_power_dbm, needed)))


def apply_power_control(
    links: Sequence[Link],
    coupling: DeviceCoupling,
    target_snr_db: float = 20.0,
) -> Dict[str, float]:
    """Set every link's transmit power to the recommended minimum.

    Mutates the transmitter devices and invalidates the coupling cache.
    Returns the chosen powers by transmitter name.
    """
    chosen: Dict[str, float] = {}
    for link in links:
        power = recommended_tx_power_dbm(link, coupling, target_snr_db)
        chosen[link.tx.name] = power
    # Apply after computing everything (recommendations are based on
    # the original powers; SNR scales linearly with TX power).
    for link in links:
        link.tx.tx_power_dbm = chosen[link.tx.name]
    coupling.invalidate(*chosen)
    return chosen


def recommend_mac_behavior(device: RadioDevice) -> str:
    """Pick a MAC protection level from the device's pattern quality.

    The paper's design principle: in scenarios where devices with
    certain beam patterns do not interfere, others may cause
    collisions — so the MAC should adapt to the *individual device's*
    pattern.  The heuristic grades the active beam's side-lobe level:

    * clean (< -10 dB): aggressive spatial reuse, no RTS/CTS needed;
    * typical consumer (-10..-3 dB): RTS/CTS protection (what the
      D5000 does);
    * boundary/degraded (> -3 dB): full protection and a lowered CCA
      threshold — the device interferes (and is interfered with) far
      outside its nominal beam.
    """
    sll = device.active_beam.pattern.side_lobe_level_db()
    if sll < -10.0:
        return "aggressive-reuse"
    if sll <= -3.0:
        return "rts-cts"
    return "conservative"
