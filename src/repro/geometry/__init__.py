"""2D geometry substrate for the indoor 60 GHz scenarios.

All experiment setups in the paper are described on a floor plan: a
conference room with brick/glass/wood walls (Figure 4), links parallel
to a reflecting wall (Figure 5), and parallel links with varying
separation (Figure 6).  This package models those floor plans: points
and directions, wall segments with materials, obstacles, and rooms that
the ray tracer in :mod:`repro.phy.raytracing` operates on.

Angles follow the standard mathematical convention: radians measured
counter-clockwise from the +x axis.  Helper functions accept and return
degrees where that matches the paper's figures.
"""

from repro.geometry.units import (
    KMH_PER_MPS,
    deg_wrap_180,
    kmh_to_ms,
    mps_to_kmh,
)
from repro.geometry.vec import (
    Vec2,
    angle_between,
    deg_to_rad,
    normalize_angle,
    rad_to_deg,
)
from repro.geometry.materials import Material, MATERIALS
from repro.geometry.segments import Segment, segment_intersection
from repro.geometry.room import Obstacle, Room

__all__ = [
    "KMH_PER_MPS",
    "MATERIALS",
    "Material",
    "Obstacle",
    "Room",
    "Segment",
    "Vec2",
    "angle_between",
    "deg_to_rad",
    "deg_wrap_180",
    "kmh_to_ms",
    "mps_to_kmh",
    "normalize_angle",
    "rad_to_deg",
    "segment_intersection",
]
