"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is designed around one invariant: **merging per-cell
snapshots is deterministic and order-independent**, so a campaign's
``metrics`` manifest section is byte-identical whether the cells ran
serially or on N workers.  That dictates the merge semantics:

* counters — integer addition (commutative, associative);
* gauges — elementwise ``max`` (commutative, associative);
* histograms — fixed bucket bounds agreed up front, integer per-bucket
  count addition plus an integer observation count.  The ``sum`` field
  is float addition, which is only associative in exact arithmetic —
  the campaign runner therefore always merges cell snapshots in
  expansion order, making even the float field bit-stable.

Metric values must never encode wall-clock time; durations belong in
the trace (:mod:`repro.obs.trace`), never in merged metrics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Histogram:
    """Fixed-bucket histogram: ``bounds[i]`` is bucket i's upper edge.

    An observation lands in the first bucket whose bound is >= the
    value; values above the last bound land in the overflow bin, so
    ``counts`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds!r}")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value

    def to_dict(self) -> Dict:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Process-local metric store with deterministic snapshots."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Total mutation calls — the obs benchmark uses this to count
        #: how many instrumented sites fired during a scenario.
        self.ops = 0

    # -- recording -------------------------------------------------------------

    def add(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(value)
        self.ops += 1

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)
        self.ops += 1

    def observe(self, name: str, value: float, buckets: Sequence[float]) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(buckets)
            self.histograms[name] = hist
        elif hist.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} re-declared with different buckets: "
                f"{hist.bounds} vs {tuple(buckets)}"
            )
        hist.observe(value)
        self.ops += 1

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> Optional[Dict]:
        """JSON-ready snapshot with sorted keys; ``None`` when empty."""
        if not (self.counters or self.gauges or self.histograms):
            return None
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }

    def merge_snapshot(self, snap: Optional[Dict]) -> None:
        """Fold another registry's snapshot into this one.

        Counter/gauge/bucket merges are commutative and associative;
        only the histogram ``sum`` float depends on merge order, which
        is why callers that need byte-identity (the campaign runner)
        merge in a fixed canonical order.

        All histogram bucket bounds are validated against this
        registry *before* anything is mutated: a mismatch raises a
        deterministic ``ValueError`` (mismatched names in sorted
        order) and leaves the registry exactly as it was — a
        half-merged registry would silently corrupt every later
        snapshot.
        """
        if not snap:
            return
        mismatched = sorted(
            name
            for name, data in snap.get("histograms", {}).items()
            if name in self.histograms
            and list(self.histograms[name].bounds) != list(data["buckets"])
        )
        if mismatched:
            raise ValueError(
                "cannot merge snapshot: bucket bounds differ for "
                f"histogram(s) {mismatched}; registry left unmodified"
            )
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            prev = self.gauges.get(name)
            self.gauges[name] = value if prev is None else max(prev, value)
        for name, data in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = Histogram(data["buckets"])
                self.histograms[name] = hist
            for i, c in enumerate(data["counts"]):
                hist.counts[i] += int(c)
            hist.count += int(data["count"])
            hist.total += data["sum"]

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


__all__ = ["Histogram", "MetricsRegistry"]
