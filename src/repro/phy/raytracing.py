"""Image-method ray tracing for indoor 60 GHz propagation.

Section 4.3 of the paper shows that, contrary to the common quasi-
optical assumption, first- and even second-order wall reflections carry
enough energy to matter: lobes at positions B and F of the conference
room can only be explained by single and double bounces off the glass
and wooden walls.

The tracer enumerates propagation paths between two points using the
image method:

* zeroth order — the LOS path, if not blocked;
* first order — mirror the source across each wall, check that the
  reflection point lies on the wall and both legs are clear;
* second order — mirror the first-order images across every other
  wall and validate both reflection points.

Each path carries its total length, per-bounce reflection losses,
blockage penetration losses, and its departure/arrival angles, which
the link evaluation combines with the antenna patterns at both ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.geometry.room import Room
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2
from repro.phy.channel import LinkBudget, friis_path_loss_db, oxygen_absorption_db


@dataclass(frozen=True)
class PropagationPath:
    """One resolved propagation path between a TX and an RX point.

    Attributes:
        points: The polyline from TX to RX, including any reflection
            points (so LOS paths have 2 points, 1st order 3, ...).
        surfaces: The wall segment touched at each reflection point.
        reflection_loss_db: Sum of per-bounce reflection losses.
        penetration_loss_db: Sum of through-material losses on all legs.
    """

    points: Tuple[Vec2, ...]
    surfaces: Tuple[Segment, ...]
    reflection_loss_db: float
    penetration_loss_db: float

    @property
    def order(self) -> int:
        """Number of reflections (0 = line of sight)."""
        return len(self.surfaces)

    @property
    def is_los(self) -> bool:
        return self.order == 0

    def length_m(self) -> float:
        """Total unfolded path length."""
        total = 0.0
        for a, b in zip(self.points, self.points[1:]):
            total += a.distance_to(b)
        return total

    def departure_angle_rad(self) -> float:
        """Angle of the first leg leaving the transmitter (global frame)."""
        return (self.points[1] - self.points[0]).angle()

    def arrival_angle_rad(self) -> float:
        """Direction the signal arrives *from*, seen at the receiver.

        This is the bearing from the RX toward the last reflection
        point (or the TX for LOS) — the angle at which a rotating horn
        at the RX location would see this path's energy.
        """
        return (self.points[-2] - self.points[-1]).angle()

    def extra_loss_db(self) -> float:
        """Combined reflection + penetration loss of the path."""
        return self.reflection_loss_db + self.penetration_loss_db

    def received_power_dbm(
        self,
        budget: LinkBudget,
        tx_gain_dbi: float,
        rx_gain_dbi: float,
    ) -> float:
        """Received power over this path for given endpoint gains."""
        return budget.received_power_dbm(
            self.length_m(), tx_gain_dbi, rx_gain_dbi, self.extra_loss_db()
        )


class RayTracer:
    """Enumerates LOS/1st/2nd order paths between points in a room."""

    def __init__(self, room: Room, max_order: int = 2, max_penetration_db: float = 35.0):
        """
        Args:
            room: The environment.
            max_order: Highest reflection order to enumerate (0-2).
                The paper's design principle is that protocols should
                account for "up to two signal reflections" — beyond
                second order, 60 GHz energy is negligible indoors.
            max_penetration_db: Paths whose accumulated penetration
                loss exceeds this are dropped as below any usable
                signal level (keeps path lists small and honest).
        """
        if max_order not in (0, 1, 2):
            raise ValueError("max_order must be 0, 1, or 2")
        self._room = room
        self._max_order = max_order
        self._max_penetration = max_penetration_db

    @property
    def room(self) -> Room:
        return self._room

    def trace(self, tx: Vec2, rx: Vec2) -> List[PropagationPath]:
        """All propagation paths from ``tx`` to ``rx`` up to max order."""
        if tx.distance_to(rx) < 1e-9:
            raise ValueError("TX and RX positions coincide")
        paths: List[PropagationPath] = []
        with obs.span("phy.raytracing.trace"):
            los = self._trace_los(tx, rx)
            if los is not None:
                paths.append(los)
            if self._max_order >= 1:
                paths.extend(self._trace_first_order(tx, rx))
            if self._max_order >= 2:
                paths.extend(self._trace_second_order(tx, rx))
        if obs.STATE.metrics:
            obs.add("phy.raytracing.traces")
            obs.add("phy.raytracing.paths", len(paths))
        return paths

    def strongest_path(
        self,
        tx: Vec2,
        rx: Vec2,
        budget: LinkBudget,
        tx_gain_dbi: float = 0.0,
        rx_gain_dbi: float = 0.0,
    ) -> Optional[PropagationPath]:
        """Path with the highest received power, or None if none exist."""
        paths = self.trace(tx, rx)
        if not paths:
            return None
        return max(paths, key=lambda p: p.received_power_dbm(budget, tx_gain_dbi, rx_gain_dbi))

    # -- internals ----------------------------------------------------

    def _penetration_between(self, a: Vec2, b: Vec2, touched: Sequence[Segment]) -> Optional[float]:
        """Penetration loss of leg a->b, or None if above the cutoff."""
        loss = self._room.blockage_loss_db(a, b, ignore=touched)
        if loss > self._max_penetration:
            return None
        return loss

    def _trace_los(self, tx: Vec2, rx: Vec2) -> Optional[PropagationPath]:
        loss = self._penetration_between(tx, rx, ())
        if loss is None:
            return None
        return PropagationPath(
            points=(tx, rx), surfaces=(), reflection_loss_db=0.0, penetration_loss_db=loss
        )

    def _reflection_point(self, image: Vec2, target: Vec2, wall: Segment) -> Optional[Vec2]:
        """Where the image->target line crosses the wall, if on-segment."""
        d = target - image
        length = d.length()
        if length < 1e-12:
            return None
        # Solve intersection of the infinite image->target line with the
        # wall segment; the hit must lie within the segment.
        w = wall.b - wall.a
        denom = d.cross(w)
        if abs(denom) < 1e-12:
            return None
        qp = wall.a - image
        t = qp.cross(w) / denom
        u = qp.cross(d) / denom
        if t <= 1e-9 or t >= 1.0 - 1e-9:
            return None
        if u < 0.0 or u > 1.0:
            return None
        return image + d * t

    def _trace_first_order(self, tx: Vec2, rx: Vec2) -> List[PropagationPath]:
        paths: List[PropagationPath] = []
        for wall in self._room.surfaces:
            image = wall.mirror_point(tx)
            hit = self._reflection_point(image, rx, wall)
            if hit is None:
                continue
            # Both legs must be clear of other obstructions; the wall
            # itself legitimately touches the path at the bounce.
            leg1 = self._penetration_between(tx, hit, (wall,))
            if leg1 is None:
                continue
            leg2 = self._penetration_between(hit, rx, (wall,))
            if leg2 is None:
                continue
            paths.append(
                PropagationPath(
                    points=(tx, hit, rx),
                    surfaces=(wall,),
                    reflection_loss_db=wall.material.reflection_loss_db,
                    penetration_loss_db=leg1 + leg2,
                )
            )
        return paths

    def _trace_second_order(self, tx: Vec2, rx: Vec2) -> List[PropagationPath]:
        paths: List[PropagationPath] = []
        surfaces = self._room.surfaces
        for first in surfaces:
            image1 = first.mirror_point(tx)
            for second in surfaces:
                if second is first:
                    continue
                image2 = second.mirror_point(image1)
                # Unfold back to front: last bounce first.
                hit2 = self._reflection_point(image2, rx, second)
                if hit2 is None:
                    continue
                hit1 = self._reflection_point(image1, hit2, first)
                if hit1 is None:
                    continue
                leg1 = self._penetration_between(tx, hit1, (first,))
                if leg1 is None:
                    continue
                leg2 = self._penetration_between(hit1, hit2, (first, second))
                if leg2 is None:
                    continue
                leg3 = self._penetration_between(hit2, rx, (second,))
                if leg3 is None:
                    continue
                paths.append(
                    PropagationPath(
                        points=(tx, hit1, hit2, rx),
                        surfaces=(first, second),
                        reflection_loss_db=(
                            first.material.reflection_loss_db
                            + second.material.reflection_loss_db
                        ),
                        penetration_loss_db=leg1 + leg2 + leg3,
                    )
                )
        return paths


def path_loss_db(path: PropagationPath, frequency_hz: float) -> float:
    """Total propagation loss of a path (spreading + absorption + extra).

    Convenience for analyses that want loss rather than received power.
    """
    length = path.length_m()
    return (
        friis_path_loss_db(length, frequency_hz)
        + oxygen_absorption_db(length, frequency_hz)
        + path.extra_loss_db()
    )
