"""Angular energy profiles and reflection-lobe analysis (Figures 18-20).

Section 3.2: at each room location, the Vubiq receiver with a highly
directional horn is rotated through all directions on a programmable
stage; the incident signal strength per direction assembles into an
*angular profile*.  Lobes that point at neither the transmitter nor the
receiver of the link indicate wall reflections — the paper's evidence
that 60 GHz spatial reuse assumptions break.

:class:`AngularProfile` holds one such sweep; :func:`find_lobes`
extracts its lobes; :func:`classify_lobes` attributes each lobe to the
TX, the RX, or a reflection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.devices.base import RadioDevice
from repro.devices.rotation import RotationStage
from repro.devices.vubiq import VubiqReceiver
from repro.geometry.vec import Vec2, angle_between, normalize_angle
from repro.mac.frames import FrameKind
from repro.analysis.dbmath import linear_to_db_scalar, power_sum_db


@dataclass(frozen=True)
class AngularProfile:
    """Received power versus horn orientation at one location."""

    orientations_rad: np.ndarray
    power_dbm: np.ndarray
    location: Optional[Vec2] = None

    def __post_init__(self) -> None:
        if self.orientations_rad.shape != self.power_dbm.shape:
            raise ValueError("orientation and power arrays must align")
        if self.orientations_rad.size < 8:
            raise ValueError("angular profile too coarse")

    @property
    def relative_db(self) -> np.ndarray:  # replint: shape=(points,)
        """Profile normalized to its strongest direction."""
        return self.power_dbm - float(np.max(self.power_dbm))

    def power_toward(self, bearing_rad: float) -> float:
        """Measured power in the direction closest to a bearing."""
        diffs = np.abs(
            np.vectorize(normalize_angle)(self.orientations_rad - bearing_rad)
        )
        return float(self.power_dbm[int(np.argmin(diffs))])


@dataclass(frozen=True)
class Lobe:
    """One lobe of an angular profile."""

    bearing_rad: float
    power_dbm: float
    relative_db: float
    attribution: str = ""  # filled by classify_lobes

    @property
    def bearing_deg(self) -> float:
        return math.degrees(self.bearing_rad)


def measure_angular_profile(
    location: Vec2,
    devices: Sequence[RadioDevice],
    vubiq_factory,
    stage: Optional[RotationStage] = None,
    kind: FrameKind = FrameKind.DATA,
) -> AngularProfile:
    """Sweep a horn through all directions at a room location.

    Args:
        location: Where the rotating receiver stands.
        devices: Every transmitter active in the room (data frames from
            all of them contribute — the paper's profiles show both TX
            and RX lobes because ACKs flow back).
        vubiq_factory: Callable ``(position, boresight_rad) ->
            VubiqReceiver``; lets the caller wire in a ray tracer and
            budget once.
        stage: Rotation stage (default: 72 steps, i.e. 5-degree
            resolution).
        kind: Frame kind whose power is integrated.

    Returns:
        The assembled :class:`AngularProfile`.
    """
    stage = stage if stage is not None else RotationStage(steps=72)
    orientations = []
    powers = []
    for orientation in stage.orientations():
        vubiq: VubiqReceiver = vubiq_factory(location, orientation)
        contributions = [vubiq.received_power_dbm(dev, kind) for dev in devices]
        orientations.append(orientation)
        powers.append(power_sum_db(contributions))
    return AngularProfile(
        orientations_rad=np.asarray(orientations),
        power_dbm=np.asarray(powers),
        location=location,
    )


def measure_angular_profile_from_traces(
    location: Vec2,
    records,
    devices: Mapping[str, RadioDevice],
    vubiq_factory,
    stage: Optional[RotationStage] = None,
    capture_s: float = 1.5e-3,
    capture_start_s: float = 0.0,
    detector=None,
    extra_gain_db: float = 45.0,
    seed: int = 0,
) -> AngularProfile:
    """The paper's actual angular-profile pipeline, trace by trace.

    For every orientation of the rotation stage, render the Vubiq
    capture of a running link, detect frames, keep the data-class
    detections, and average their power — assembling the profile the
    way Section 3.2 describes ("measure the incident signal strength in
    each direction and assemble the result to an angular profile").

    Slower than :func:`measure_angular_profile` (one capture per
    orientation); tests validate the two agree.

    Args:
        location: Where the rotating receiver stands.
        records: Ground-truth frame timeline of the running link.
        devices: Station-name -> device map for rendering.
        vubiq_factory: ``(position, boresight_rad) -> VubiqReceiver``.
        stage: Rotation stage (default 72 steps).
        capture_s: Capture length per orientation.
        capture_start_s: Window start within the timeline.
        detector: Frame detector; the default threshold sits well above
            the scope noise.
        extra_gain_db: Additional front-end gain applied on top of the
            factory's receiver (angular sweeps need headroom for weak
            directions).
        seed: Noise seed.
    """
    import numpy as np

    from repro.core.frames import FrameDetector, classify_detected_frames

    stage = stage if stage is not None else RotationStage(steps=72)
    detector = detector if detector is not None else FrameDetector(
        threshold_v=0.06, min_duration_s=1.5e-6
    )
    rng = np.random.default_rng(seed)
    window = [
        r for r in records
        if r.start_s < capture_start_s + capture_s and r.end_s > capture_start_s
    ]
    orientations = []
    powers = []
    for orientation in stage.orientations():
        vubiq = vubiq_factory(location, orientation)
        vubiq.extra_gain_db += extra_gain_db
        trace = vubiq.capture(
            window, devices, duration_s=capture_s,
            start_s=capture_start_s, rng=rng,
        )
        vubiq.extra_gain_db -= extra_gain_db
        frames = detector.detect(trace)
        labels = classify_detected_frames(frames)
        kept = [f for f, l in zip(frames, labels) if l in ("data", "control", "ack")]
        orientations.append(orientation)
        if not kept:
            powers.append(float("nan"))
            continue
        amps = np.array([f.mean_amplitude_v for f in kept])
        powers.append(linear_to_db_scalar(float(np.mean(amps**2))))
    power_arr = np.asarray(powers)
    finite = np.isfinite(power_arr)
    floor = power_arr[finite].min() - 10.0 if finite.any() else -120.0
    power_arr[~finite] = floor
    return AngularProfile(
        orientations_rad=np.asarray(orientations),
        power_dbm=power_arr,
        location=location,
    )


def find_lobes(
    profile: AngularProfile,
    min_relative_db: float = -8.0,
    min_separation_rad: float = math.radians(15.0),
) -> List[Lobe]:
    """Extract the lobes of an angular profile.

    A lobe is a local maximum within ``min_relative_db`` of the profile
    peak; maxima closer than ``min_separation_rad`` to a stronger lobe
    are absorbed into it.  -8 dB matches the dynamic range of the
    paper's polar plots (their legends stop at -8 dB).
    """
    order = np.argsort(profile.orientations_rad)
    az = profile.orientations_rad[order]
    p = profile.power_dbm[order]
    rel = p - float(np.max(p))
    n = p.size
    candidates = []
    for i in range(n):
        left, right = p[(i - 1) % n], p[(i + 1) % n]
        if p[i] >= left and p[i] >= right and rel[i] >= min_relative_db:
            candidates.append(i)
    candidates.sort(key=lambda i: -p[i])
    lobes: List[Lobe] = []
    for i in candidates:
        if any(
            angle_between(az[i], lobe.bearing_rad) < min_separation_rad
            for lobe in lobes
        ):
            continue
        lobes.append(Lobe(bearing_rad=float(az[i]), power_dbm=float(p[i]), relative_db=float(rel[i])))
    return lobes


def classify_lobes(
    lobes: Sequence[Lobe],
    location: Vec2,
    endpoints: Mapping[str, Vec2],
    tolerance_rad: float = math.radians(15.0),
) -> List[Lobe]:
    """Attribute each lobe to a link endpoint or to a reflection.

    Args:
        lobes: Lobes from :func:`find_lobes`.
        location: The measurement location.
        endpoints: Named positions of the link devices, e.g.
            ``{"tx": ..., "rx": ...}``.
        tolerance_rad: Angular slack for matching a lobe to a device.

    Returns:
        New :class:`Lobe` objects with ``attribution`` set to the
        endpoint name, or ``"reflection"`` when no endpoint matches —
        the paper's indicator that walls are redirecting energy.
    """
    classified = []
    for lobe in lobes:
        attribution = "reflection"
        best = tolerance_rad
        for name, pos in endpoints.items():
            bearing = (pos - location).angle()
            diff = angle_between(lobe.bearing_rad, bearing)
            if diff <= best:
                attribution = name
                best = diff
        classified.append(
            Lobe(
                bearing_rad=lobe.bearing_rad,
                power_dbm=lobe.power_dbm,
                relative_db=lobe.relative_db,
                attribution=attribution,
            )
        )
    return classified


def reflection_lobes(classified: Sequence[Lobe]) -> List[Lobe]:
    """Just the lobes attributed to reflections."""
    return [lobe for lobe in classified if lobe.attribution == "reflection"]
