"""Data-aggregation analysis: frame-length statistics (Figures 9/10).

The key observation of Section 4.1: WiGig frame lengths are bimodal —
short (~5 us, one MPDU) or long (15-25 us, aggregated) — and the share
of long frames grows with TCP throughput.  Since the MCS stays constant
and the medium is already fully used, *aggregation alone* scales the
throughput from 171 to 934 mbps (a 5.4x gain).

The functions here accept anything with a ``duration_s`` attribute, so
they run both on ground-truth :class:`~repro.mac.frames.FrameRecord`
timelines and on trace-derived
:class:`~repro.core.frames.DetectedFrame` lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.analysis.cdf import EmpiricalCDF

#: Frames longer than this count as "long" (aggregated).  The paper
#: uses ~5 us; our single-MPDU frames are ~6 us, so the boundary sits
#: between one-MPDU and multi-MPDU durations.
LONG_FRAME_THRESHOLD_S = 8.0e-6


def _durations(frames: Iterable) -> List[float]:
    out = [float(f.duration_s) for f in frames]
    if not out:
        raise ValueError("no frames to analyze")
    return out


def frame_length_cdf(frames: Iterable) -> EmpiricalCDF:
    """Empirical CDF of frame durations (the curves of Figure 9)."""
    return EmpiricalCDF(_durations(frames))


def long_frame_fraction(
    frames: Iterable,
    threshold_s: float = LONG_FRAME_THRESHOLD_S,
) -> float:
    """Fraction of frames longer than the threshold (Figure 10)."""
    durations = _durations(frames)
    return sum(1 for d in durations if d > threshold_s) / len(durations)


def aggregation_gain(low_throughput_bps: float, high_throughput_bps: float) -> float:
    """Throughput multiple achieved by aggregation.

    The paper's headline: 171 -> 930 mbps is a 5.4x gain achieved "by
    aggregating only 25 us of data, which is 320x less than what
    802.11ac needs for just a 2x gain".
    """
    if low_throughput_bps <= 0:
        raise ValueError("baseline throughput must be positive")
    return high_throughput_bps / low_throughput_bps


@dataclass(frozen=True)
class AggregationReport:
    """Summary of one TCP operating point in the aggregation sweep."""

    label: str
    throughput_bps: float
    num_frames: int
    median_frame_s: float
    p95_frame_s: float
    long_fraction: float
    medium_usage: float

    @staticmethod
    def build(
        label: str,
        throughput_bps: float,
        frames: Sequence,
        medium_usage: float,
        threshold_s: float = LONG_FRAME_THRESHOLD_S,
    ) -> "AggregationReport":
        """Assemble the row printed by the Figure 9-11 benchmarks."""
        cdf = frame_length_cdf(frames)
        return AggregationReport(
            label=label,
            throughput_bps=throughput_bps,
            num_frames=cdf.n,
            median_frame_s=cdf.median(),
            p95_frame_s=cdf.quantile(0.95),
            long_fraction=long_frame_fraction(frames, threshold_s),
            medium_usage=medium_usage,
        )

    def row(self) -> str:
        """One formatted table row for benchmark output."""
        return (
            f"{self.label:>12}  tput={self.throughput_bps / 1e6:8.2f} mbps  "
            f"frames={self.num_frames:6d}  median={self.median_frame_s * 1e6:5.1f} us  "
            f"p95={self.p95_frame_s * 1e6:5.1f} us  long={self.long_fraction * 100:5.1f}%  "
            f"usage={self.medium_usage * 100:5.1f}%"
        )
