"""Failure-injection and adversarial-input tests.

Production use means weird inputs: clipped captures, saturated traces,
degenerate geometry, extreme couplings, and torture-scale simulations.
These tests pin down that the library degrades gracefully instead of
crashing or silently lying.
"""


import numpy as np
import pytest

from repro.core.frames import FrameDetector, estimate_periodicity_s
from repro.core.utilization import medium_usage_from_trace
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind, FrameRecord
from repro.mac.simulator import Medium, Simulator, Station, StaticCoupling
from repro.mac.wigig import WiGigLink
from repro.phy.signal import Emission, Trace, synthesize_trace


class TestCorruptedTraces:
    def test_clipped_trace_still_detects(self):
        """ADC clipping flattens peaks; detection must still work."""
        ems = [Emission(i * 100e-6, 40e-6, 5.0) for i in range(5)]
        trace = synthesize_trace(ems, duration_s=600e-6, noise_floor_v=0.01,
                                 rng=np.random.default_rng(0))
        clipped = Trace(
            samples=np.minimum(trace.samples, 1.0),
            sample_rate_hz=trace.sample_rate_hz,
        )
        frames = FrameDetector(threshold_v=0.1).detect(clipped)
        assert len(frames) == 5
        assert all(f.peak_amplitude_v <= 1.0 for f in frames)

    def test_dc_offset_breaks_auto_threshold_gracefully(self):
        """A DC-offset trace saturates the auto threshold: the detector
        returns either nothing or everything-as-one, never garbage."""
        ems = [Emission(100e-6, 40e-6, 0.5)]
        trace = synthesize_trace(ems, duration_s=300e-6, noise_floor_v=0.01,
                                 rng=np.random.default_rng(1))
        offset = Trace(samples=trace.samples + 0.3,
                       sample_rate_hz=trace.sample_rate_hz)
        frames = FrameDetector().detect(offset)
        assert len(frames) <= 1

    def test_fully_saturated_trace(self):
        trace = Trace(samples=np.full(10000, 0.8), sample_rate_hz=1e8)
        frames = FrameDetector(threshold_v=0.1).detect(trace)
        assert len(frames) == 1
        assert frames[0].duration_s == pytest.approx(trace.duration_s)
        assert medium_usage_from_trace(trace, threshold_v=0.1) == 1.0

    def test_all_zero_trace(self):
        trace = Trace(samples=np.zeros(10000), sample_rate_hz=1e8)
        assert FrameDetector(threshold_v=0.1).detect(trace) == []

    def test_single_sample_frames_rejected(self):
        samples = np.zeros(1000)
        samples[500] = 1.0  # one-sample glitch
        trace = Trace(samples=samples, sample_rate_hz=1e8)
        frames = FrameDetector(threshold_v=0.1, min_duration_s=1e-6).detect(trace)
        assert frames == []

    def test_periodicity_of_constant_starts(self):
        from repro.core.frames import DetectedFrame

        frames = [DetectedFrame(0.5, 1e-5, 0.5, 0.5) for _ in range(5)]
        # Identical start times: zero gaps, must not divide by zero.
        assert estimate_periodicity_s(frames) is None


class TestExtremeCouplings:
    def test_absurdly_strong_coupling(self):
        sim = Simulator(seed=1)
        medium = Medium(sim, StaticCoupling({("a", "b"): +20.0, ("b", "a"): +20.0}))
        medium.register(Station("a", Vec2(0, 0)))
        medium.register(Station("b", Vec2(1, 0)))
        results = []
        medium.transmit(
            FrameRecord(0.0, 1e-5, "a", "b", FrameKind.DATA, mcs_index=11),
            on_complete=lambda r, ok: results.append(ok),
        )
        sim.run_until(1e-3)
        assert results == [True]

    def test_total_isolation(self):
        sim = Simulator(seed=2)
        medium = Medium(sim, StaticCoupling({}, default_db=-300.0))
        medium.register(Station("a", Vec2(0, 0)))
        medium.register(Station("b", Vec2(1, 0)))
        results = []
        medium.transmit(
            FrameRecord(0.0, 1e-5, "a", "b", FrameKind.DATA, mcs_index=1),
            on_complete=lambda r, ok: results.append(ok),
        )
        sim.run_until(1e-3)
        assert results == [False]

    def test_queue_survives_channel_flapping(self):
        """The link must deliver everything across repeated outages."""
        sim = Simulator(seed=3)
        coupling = StaticCoupling({("tx", "rx"): -40.0, ("rx", "tx"): -40.0})
        medium = Medium(sim, coupling, capture_history=False)
        tx, rx = Station("tx", Vec2(0, 0)), Station("rx", Vec2(2, 0))
        medium.register(tx)
        medium.register(rx)
        link = WiGigLink(sim, medium, transmitter=tx, receiver=rx,
                         snr_hint_db=35.0, send_beacons=False)
        link.enqueue_mpdus(2000)

        def flap(down: bool):
            value = -150.0 if down else -40.0
            coupling.set("tx", "rx", value)
            coupling.set("rx", "tx", value)

        for i in range(1, 8):
            sim.schedule(i * 10e-3, lambda d=(i % 2 == 1): flap(d))
        sim.run_until(1.5)
        assert link.stats.mpdus_delivered == 2000
        assert link.queue_depth_mpdus == 0


class TestTortureScale:
    def test_many_stations_medium(self):
        """A dense deployment: 20 stations, all beaconing."""
        sim = Simulator(seed=4)
        medium = Medium(sim, StaticCoupling({}, default_db=-80.0))
        stations = []
        for i in range(20):
            st = Station(f"s{i}", Vec2(i * 0.5, 0))
            medium.register(st)
            stations.append(st)

        def beacon(i: int):
            medium.transmit(FrameRecord(
                sim.now, 6e-6, f"s{i}", "", FrameKind.BEACON))
            sim.schedule(1.1e-3, lambda: beacon(i))

        for i in range(20):
            sim.schedule(i * 50e-6, lambda i=i: beacon(i))
        sim.run_until(0.05)
        beacons = [r for r in medium.history if r.kind == FrameKind.BEACON]
        assert len(beacons) == pytest.approx(20 * 45, rel=0.1)

    def test_deep_event_nesting(self):
        """A chain of 10k immediate events must not recurse or stall."""
        sim = Simulator()
        count = [0]

        def step():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.0, step)

        sim.schedule(0.0, step)
        sim.run_until(1.0)
        assert count[0] == 10_000

    def test_huge_enqueue(self):
        sim = Simulator(seed=5)
        medium = Medium(sim, StaticCoupling(
            {("tx", "rx"): -40.0, ("rx", "tx"): -40.0}), capture_history=False)
        tx, rx = Station("tx", Vec2(0, 0)), Station("rx", Vec2(2, 0))
        medium.register(tx)
        medium.register(rx)
        link = WiGigLink(sim, medium, transmitter=tx, receiver=rx,
                         snr_hint_db=35.0, send_beacons=False)
        link.enqueue_mpdus(100_000)
        sim.run_until(0.2)
        # Tens of thousands of MPDUs per 0.2 s at full aggregation:
        # sane progress, no blow-up, queue accounting intact up to the
        # single aggregate that may still be in flight at the horizon.
        assert link.stats.mpdus_delivered > 30_000
        outstanding = 100_000 - link.stats.mpdus_delivered - link.queue_depth_mpdus
        assert 0 <= outstanding <= 12


class TestDegenerateGeometry:
    def test_nearly_collinear_room_walls(self):
        from repro.geometry.materials import get_material
        from repro.geometry.room import Room
        from repro.geometry.segments import Segment
        from repro.phy.raytracing import RayTracer

        # Two almost-parallel walls meeting at a glancing angle.
        walls = [
            Segment(Vec2(0, 0), Vec2(10, 0.0), get_material("metal")),
            Segment(Vec2(0, 1e-4), Vec2(10, 0.02), get_material("metal")),
        ]
        tracer = RayTracer(Room(walls), max_order=2)
        paths = tracer.trace(Vec2(1, 1), Vec2(9, 1))
        assert paths  # no crash, at least the LOS survives

    def test_zero_length_sweep_window(self):
        from repro.core.utilization import medium_usage_from_records

        with pytest.raises(ValueError):
            medium_usage_from_records([], 1.0, 1.0)
