"""Unit tests for the 60 GHz link budget and shadowing."""

import math

import numpy as np
import pytest

from repro.phy.channel import (
    LinkBudget,
    ShadowingProcess,
    SIXTY_GHZ,
    friis_path_loss_db,
    oxygen_absorption_db,
    thermal_noise_dbm,
)


class TestFriis:
    def test_sixty_ghz_one_meter(self):
        # 20log10(4 pi * 60.48e9 / c) ~ 68.1 dB
        assert friis_path_loss_db(1.0, SIXTY_GHZ) == pytest.approx(68.1, abs=0.2)

    def test_doubling_distance_costs_6db(self):
        a = friis_path_loss_db(2.0, SIXTY_GHZ)
        b = friis_path_loss_db(4.0, SIXTY_GHZ)
        assert b - a == pytest.approx(6.02, abs=0.01)

    def test_sixty_vs_two_point_four_ghz(self):
        diff = friis_path_loss_db(1.0, 60e9) - friis_path_loss_db(1.0, 2.4e9)
        assert diff == pytest.approx(20 * math.log10(60 / 2.4), abs=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            friis_path_loss_db(0.0, SIXTY_GHZ)
        with pytest.raises(ValueError):
            friis_path_loss_db(1.0, 0.0)


class TestOxygen:
    def test_peak_absorption_rate(self):
        # ~15 dB/km at the 60 GHz line center.
        assert oxygen_absorption_db(1000.0, 60.0e9) == pytest.approx(15.0, rel=0.01)

    def test_negligible_indoors(self):
        assert oxygen_absorption_db(20.0, SIXTY_GHZ) < 0.5

    def test_falls_off_frequency(self):
        assert oxygen_absorption_db(1000.0, 66e9) < oxygen_absorption_db(1000.0, 60e9)

    def test_zero_distance(self):
        assert oxygen_absorption_db(0.0) == 0.0


class TestNoise:
    def test_ktb_1p7ghz(self):
        # kTB over 1.76 GHz ~ -81.5 dBm; +7 dB NF ~ -74.5 dBm.
        assert thermal_noise_dbm(1.7e9, 7.0) == pytest.approx(-74.6, abs=0.5)

    def test_bandwidth_scaling(self):
        narrow = thermal_noise_dbm(1e6, 0.0)
        wide = thermal_noise_dbm(1e9, 0.0)
        assert wide - narrow == pytest.approx(30.0, abs=0.01)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)


class TestLinkBudget:
    def test_received_power_monotone_in_distance(self):
        b = LinkBudget()
        p1 = b.received_power_dbm(1.0, 17.0, 17.0)
        p5 = b.received_power_dbm(5.0, 17.0, 17.0)
        assert p5 < p1

    def test_excess_exponent_applies_beyond_1m(self):
        flat = LinkBudget(excess_exponent=0.0)
        steep = LinkBudget(excess_exponent=2.0)
        assert flat.propagation_loss_db(0.5) == pytest.approx(steep.propagation_loss_db(0.5))
        assert steep.propagation_loss_db(10.0) > flat.propagation_loss_db(10.0) + 19.0

    def test_snr_equals_power_minus_noise(self):
        b = LinkBudget()
        snr = b.snr_db(2.0, 17.0, 17.0)
        assert snr == pytest.approx(
            b.received_power_dbm(2.0, 17.0, 17.0) - b.noise_floor_dbm()
        )

    def test_extra_loss_subtracts(self):
        b = LinkBudget()
        assert b.received_power_dbm(2.0, 0, 0, extra_loss_db=10.0) == pytest.approx(
            b.received_power_dbm(2.0, 0, 0) - 10.0
        )

    def test_sinr_without_interference_is_snr(self):
        b = LinkBudget()
        signal = -50.0
        assert b.sinr_db(signal) == pytest.approx(signal - b.noise_floor_dbm())

    def test_sinr_with_strong_interference(self):
        b = LinkBudget()
        # Interference 30 dB above noise dominates: SINR ~ SIR.
        sinr = b.sinr_db(-40.0, interference_dbm=b.noise_floor_dbm() + 30.0)
        assert sinr == pytest.approx(-40.0 - (b.noise_floor_dbm() + 30.0), abs=0.1)

    def test_paper_mcs_ladder_anchors(self):
        """The calibrated budget puts 2 m links at 16-QAM and breaks
        links around 18-20 m (Figures 12/13)."""
        from repro.phy.mcs import select_mcs

        b = LinkBudget()
        snr_2m = b.snr_db(2.0, 17.0, 17.0)
        assert select_mcs(snr_2m).modulation == "16-QAM"
        snr_20m = b.snr_db(20.0, 17.0, 17.0)
        assert select_mcs(snr_20m) is None


class TestShadowing:
    def test_zero_std_is_constant(self):
        s = ShadowingProcess(std_db=0.0)
        assert s.advance(100.0) == 0.0

    def test_stationary_variance(self):
        rng = np.random.default_rng(4)
        s = ShadowingProcess(std_db=3.0, coherence_time_s=1.0, rng=rng)
        samples = [s.advance(t * 10.0) for t in range(1, 3000)]
        assert np.std(samples) == pytest.approx(3.0, rel=0.15)

    def test_correlation_over_short_intervals(self):
        rng = np.random.default_rng(5)
        s = ShadowingProcess(std_db=3.0, coherence_time_s=100.0, rng=rng)
        v0 = s.advance(0.001)
        v1 = s.advance(0.002)
        assert abs(v1 - v0) < 0.5  # barely moves within ~tau/1e5

    def test_time_must_not_go_backward(self):
        s = ShadowingProcess()
        s.advance(10.0)
        with pytest.raises(ValueError):
            s.advance(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ShadowingProcess(std_db=-1.0)
        with pytest.raises(ValueError):
            ShadowingProcess(coherence_time_s=0.0)
