"""Iperf-style TCP traffic over a WiGig link.

The paper controls the WiGig link's operating point by adjusting the
TCP window size in Iperf (Section 4.1, footnote 3): tiny windows
(~1 KB) produce kbps-range throughput and low medium usage; growing
windows walk the link through 171 -> 934 mbps, at which point the
Gigabit Ethernet interface at the docking station caps the rate.

:class:`IperfFlow` reproduces that control knob.  It keeps ``window``
bytes in flight: MPDUs are enqueued into the WiGig link while the
window has room, and credit returns one host-side RTT after the MAC
delivers a frame.  An AIMD mode (used in the reflection-interference
experiment of Figure 23) shrinks the effective window on loss events
so TCP throughput visibly reacts to interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mac.simulator import Simulator
from repro.mac.wigig import MPDU_BITS, WiGigLink

#: Throughput cap imposed by the Gigabit Ethernet interface at the
#: docking station (Section 4.1: "we do not observe results beyond
#: roughly 900 mbps").
GIGE_CAP_BPS = 940e6


@dataclass(frozen=True)
class TcpParameters:
    """Knobs of an Iperf-like TCP flow.

    Attributes:
        window_bytes: Socket window — the paper's control variable.
        host_rtt_s: Fixed round-trip component outside the 60 GHz hop
            (Ethernet leg, host stacks).  Dominates at small windows.
        aimd: Enable loss-reactive window halving (TCP congestion
            control); when False the window is a hard constant, which
            matches steady-state Iperf runs without loss.
        rate_limit_bps: Optional application-level pacing (models the
            kbps-range runs, where the paper used extreme window
            settings; a paced source is the cleaner equivalent).
        eth_rate_bps: Serialization rate of the Gigabit Ethernet hop
            feeding the dock.  This pacing is *the* mechanism behind
            the paper's aggregation findings: MPDUs trickle into the
            radio at most one per ~2.5 us, so the transmit queue only
            builds (and aggregation only kicks in) once the radio's
            single-MPDU service rate falls behind the Ethernet ingress
            — "WiGig only uses data aggregation if a connection
            requires high throughput" (Section 4.1).
    """

    window_bytes: float = 256 * 1024
    host_rtt_s: float = 600e-6
    aimd: bool = False
    rate_limit_bps: Optional[float] = None
    eth_rate_bps: float = 1.0e9

    def __post_init__(self) -> None:
        if self.window_bytes <= 0:
            raise ValueError("window must be positive")
        if self.host_rtt_s < 0:
            raise ValueError("host RTT must be non-negative")
        if self.rate_limit_bps is not None and self.rate_limit_bps <= 0:
            raise ValueError("rate limit must be positive when set")
        if self.eth_rate_bps <= 0:
            raise ValueError("Ethernet rate must be positive")


class IperfFlow:
    """A window-limited byte stream feeding a :class:`WiGigLink`.

    The flow measures its own goodput: :meth:`throughput_bps` divides
    acknowledged payload by elapsed time, like Iperf's reports.
    """

    def __init__(self, sim: Simulator, link: WiGigLink, params: TcpParameters = TcpParameters()):
        self.sim = sim
        self.link = link
        self.params = params
        self._window_mpdus = max(1, int(params.window_bytes * 8 / MPDU_BITS))
        self._cwnd_mpdus = float(self._window_mpdus)
        self._in_flight = 0
        self._delivered_bits = 0
        self._start_time = sim.now
        self._loss_events = 0
        self._last_sent_count = 0
        self._last_halve_time = -1.0
        # MPDUs allowed by the window but not yet serialized over the
        # Ethernet hop into the radio's queue.
        self._eth_backlog = 0
        self._eth_busy = False
        self._eth_interval = MPDU_BITS / params.eth_rate_bps
        # Samples of (time_s, cumulative_delivered_bits) for time series.
        self.delivery_log: List[Tuple[float, int]] = []
        link.on_delivery = self._on_delivery
        if params.rate_limit_bps is not None:
            self._paced_interval = MPDU_BITS / params.rate_limit_bps
            self.sim.schedule(self._paced_interval, self._paced_send)
        else:
            self._initial_fill()

    # -- metrics ---------------------------------------------------------

    @property
    def delivered_bits(self) -> int:
        return self._delivered_bits

    @property
    def loss_events(self) -> int:
        return self._loss_events

    def throughput_bps(self, now: Optional[float] = None) -> float:
        """Average goodput since the flow started, GigE-capped."""
        now = self.sim.now if now is None else now
        elapsed = now - self._start_time
        if elapsed <= 0:
            return 0.0
        return min(self._delivered_bits / elapsed, GIGE_CAP_BPS)

    def reset_counters(self) -> None:
        """Restart goodput accounting (e.g. after a warm-up phase)."""
        self._delivered_bits = 0
        self._start_time = self.sim.now
        self.delivery_log.clear()

    # -- window machinery ---------------------------------------------------

    def _effective_window(self) -> int:
        if self.params.aimd:
            return max(1, int(min(self._cwnd_mpdus, self._window_mpdus)))
        return self._window_mpdus

    def _credit_spacing_s(self) -> float:
        """Steady-state inter-MPDU spacing of a self-clocked window.

        A window of W MPDUs circulating over one RTT is uniformly
        spaced by RTT/W once TCP's ACK clock has smoothed it; keeping
        releases on this grid prevents artificial ingress bursts that
        would overstate aggregation at low throughput.
        """
        return self.params.host_rtt_s / self._window_mpdus

    def _initial_fill(self) -> None:
        """Inject the initial window spread over one RTT (slow start)."""
        spacing = self._credit_spacing_s()
        for i in range(self._effective_window()):
            self.sim.schedule(i * spacing, self._send_one)

    def _send_one(self) -> None:
        if self._in_flight < self._effective_window():
            self._in_flight += 1
            self._eth_backlog += 1
            self._pump_ethernet()

    def _fill_window(self) -> None:
        room = self._effective_window() - self._in_flight
        if room > 0:
            self._in_flight += room
            self._eth_backlog += room
            self._pump_ethernet()

    def _pump_ethernet(self) -> None:
        """Serialize window-released MPDUs over the GigE hop.

        One MPDU enters the radio queue per serialization interval, so
        the radio sees a smooth ingress at <= 1 Gbps rather than
        window-sized bursts.
        """
        if self._eth_busy or self._eth_backlog == 0:
            return
        self._eth_busy = True

        def deliver_one() -> None:
            self._eth_busy = False
            if self._eth_backlog > 0:
                self._eth_backlog -= 1
                self.link.enqueue_mpdus(1)
                self._pump_ethernet()

        self.sim.schedule(self._eth_interval, deliver_one)

    def _paced_send(self) -> None:
        # Application pacing: one MPDU per interval, window permitting.
        if self._in_flight < self._effective_window():
            self._in_flight += 1
            self.link.enqueue_mpdus(1)
        self.sim.schedule(self._paced_interval, self._paced_send)

    def _on_delivery(self, mpdus: int) -> None:
        self._delivered_bits += mpdus * MPDU_BITS
        self.delivery_log.append((self.sim.now, self._delivered_bits))
        if self.params.aimd:
            # Additive increase: one MPDU of window per window's worth
            # of deliveries.
            self._cwnd_mpdus += mpdus / max(1.0, self._cwnd_mpdus)
            # Loss detection: the link's retransmission counter moving
            # between deliveries marks a congestion event.  Like
            # NewReno, the window halves at most once per RTT no
            # matter how many frames that RTT lost.
            retx = self.link.stats.retransmissions
            if retx > self._last_sent_count:
                self._loss_events += retx - self._last_sent_count
                self._last_sent_count = retx
                if self.sim.now - self._last_halve_time > self.params.host_rtt_s:
                    self._cwnd_mpdus = max(1.0, self._cwnd_mpdus / 2.0)
                    self._last_halve_time = self.sim.now
        # Credit returns after the host-side RTT.  An aggregated frame
        # acknowledges several MPDUs at once; releasing their credits
        # on the self-clock grid (rather than all at once) models the
        # pacing of the returning TCP ACK stream.
        def release_one() -> None:
            self._in_flight = max(0, self._in_flight - 1)
            if self.params.rate_limit_bps is None:
                # Send up to two segments per returning credit: one
                # replaces the acknowledged segment, the second grows
                # occupancy into window room opened by additive
                # increase (or re-fills after a stall).
                self._send_one()
                self._send_one()

        spacing = self._credit_spacing_s()
        for i in range(mpdus):
            delay = self.params.host_rtt_s + i * spacing
            if delay > 0:
                self.sim.schedule(delay, release_one)
            else:
                release_one()
