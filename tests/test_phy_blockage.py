"""Unit tests for the human blockage model."""


import numpy as np
import pytest

from repro.geometry.vec import Vec2
from repro.phy.blockage import (
    HUMAN_SHADOW_DEPTH_DB,
    BlockageEvent,
    Blocker,
    blocked_duration_s,
    crossing_blocker,
    path_blockage_loss_db,
)

TX = Vec2(0.0, 0.0)
RX = Vec2(4.0, 0.0)


class TestPathLoss:
    def test_clear_of_path_is_zero(self):
        assert path_blockage_loss_db(Vec2(2.0, 2.0), TX, RX) == 0.0

    def test_on_path_is_full_shadow(self):
        assert path_blockage_loss_db(Vec2(2.0, 0.0), TX, RX) == HUMAN_SHADOW_DEPTH_DB

    def test_edge_region_ramps(self):
        # Body edge at 0.2 m; edge region extends 0.08 m beyond.
        loss = path_blockage_loss_db(Vec2(2.0, 0.24), TX, RX)
        assert 0.0 < loss < HUMAN_SHADOW_DEPTH_DB

    def test_beyond_endpoints_does_not_block(self):
        assert path_blockage_loss_db(Vec2(-1.0, 0.0), TX, RX) == 0.0
        assert path_blockage_loss_db(Vec2(5.0, 0.0), TX, RX) == 0.0

    def test_wider_body_blocks_farther_out(self):
        narrow = path_blockage_loss_db(Vec2(2.0, 0.3), TX, RX, width_m=0.4)
        wide = path_blockage_loss_db(Vec2(2.0, 0.3), TX, RX, width_m=0.8)
        assert wide > narrow

    def test_custom_shadow_depth(self):
        loss = path_blockage_loss_db(Vec2(2.0, 0.0), TX, RX, shadow_depth_db=30.0)
        assert loss == 30.0

    def test_degenerate_link(self):
        assert path_blockage_loss_db(Vec2(0, 0), TX, TX) == 0.0


class TestBlockerKinematics:
    def test_position_at_time(self):
        b = Blocker(start=Vec2(0, 0), velocity=Vec2(1.0, 0.0))
        assert b.position(2.5) == Vec2(2.5, 0.0)

    def test_crossing_blocker_reaches_link_at_lead_in(self):
        b = crossing_blocker(TX, RX, crossing_fraction=0.5, lead_in_s=1.0)
        at_crossing = b.position(1.0)
        assert at_crossing.distance_to(Vec2(2.0, 0.0)) < 1e-9

    def test_crossing_is_perpendicular(self):
        b = crossing_blocker(TX, RX, crossing_fraction=0.25)
        axis = (RX - TX).normalized()
        assert abs(b.velocity.normalized().dot(axis)) < 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            crossing_blocker(TX, RX, crossing_fraction=0.0)
        with pytest.raises(ValueError):
            crossing_blocker(TX, RX, speed_mps=0.0)


class TestEventProfile:
    def test_profile_has_single_shadow_pulse(self):
        b = crossing_blocker(TX, RX, crossing_fraction=0.5, lead_in_s=1.0)
        event = BlockageEvent(blocker=b, tx=TX, rx=RX)
        times, losses = event.profile(duration_s=2.0, step_s=5e-3)
        assert losses.max() == HUMAN_SHADOW_DEPTH_DB
        assert losses[0] == 0.0 and losses[-1] == 0.0
        # One contiguous blocked interval.
        blocked = losses > 1.0
        transitions = np.abs(np.diff(blocked.astype(int))).sum()
        assert transitions == 2

    def test_shadow_interval_centered_on_crossing(self):
        b = crossing_blocker(TX, RX, crossing_fraction=0.5, lead_in_s=1.0)
        event = BlockageEvent(blocker=b, tx=TX, rx=RX)
        interval = event.shadow_interval(duration_s=2.0)
        assert interval is not None
        lo, hi = interval
        assert lo < 1.0 < hi

    def test_shadow_duration_matches_analytic(self):
        b = crossing_blocker(TX, RX, crossing_fraction=0.5, lead_in_s=1.0)
        event = BlockageEvent(blocker=b, tx=TX, rx=RX)
        lo, hi = event.shadow_interval(duration_s=2.0, threshold_db=24.9)
        expected = blocked_duration_s(4.0)
        assert hi - lo == pytest.approx(expected, rel=0.25)

    def test_no_shadow_when_missing_the_link(self):
        b = Blocker(start=Vec2(2.0, 5.0), velocity=Vec2(1.0, 0.0))
        event = BlockageEvent(blocker=b, tx=TX, rx=RX)
        assert event.shadow_interval(duration_s=2.0) is None

    def test_analytic_duration_validation(self):
        with pytest.raises(ValueError):
            blocked_duration_s(4.0, speed_mps=0.0)


class TestBlockageExperiment:
    def test_failover_beats_no_failover(self):
        from repro.experiments.blockage import run_blockage_crossing

        plain = run_blockage_crossing(failover=False, with_wall=True, duration_s=2.0)
        rescued = run_blockage_crossing(failover=True, with_wall=True, duration_s=2.0)
        assert plain.outage_s(20e-3) > 0.2
        assert rescued.outage_s(20e-3) == 0.0
        assert rescued.retrain_count >= 1
        assert rescued.min_rate_bps() > 0

    def test_failover_needs_a_wall(self):
        from repro.experiments.blockage import run_blockage_crossing

        no_wall = run_blockage_crossing(failover=True, with_wall=False, duration_s=2.0)
        assert no_wall.outage_s(20e-3) > 0.2

    def test_link_recovers_after_crossing(self):
        from repro.experiments.blockage import run_blockage_crossing

        result = run_blockage_crossing(failover=False, with_wall=True, duration_s=2.5)
        t, rates = result.rate_series()
        assert rates[-1] == rates[0]  # back to the pre-crossing rate
