#!/usr/bin/env python3
"""Quickstart: build a 60 GHz link, inspect its beams, move traffic.

This walks the three layers of the library in ~60 lines:

1. device models — a Dell D5000 dock and an E7440 notebook with their
   consumer-grade phased arrays and beam codebooks;
2. beam training and pattern inspection — the imperfections the paper
   measures (side lobes, boundary degradation) are right there;
3. a discrete-event MAC simulation with Iperf-style TCP on top.

Run:  python examples/quickstart.py
"""

import math

from repro.experiments.common import build_wigig_link_setup
from repro.geometry.vec import Vec2
from repro.devices import make_d5000_dock, make_e7440_laptop
from repro.mac.frames import FrameKind


def main() -> None:
    # --- 1. Devices -------------------------------------------------
    dock = make_d5000_dock(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    laptop = make_e7440_laptop(position=Vec2(2.0, 0.0), orientation_rad=math.pi)
    print(f"dock:   {dock.array.num_elements}-element array, "
          f"{len(dock.codebook.directional_entries)} directional beams, "
          f"{dock.codebook.num_discovery_patterns} quasi-omni discovery patterns")

    # --- 2. Beam training and pattern inspection --------------------
    dock.train_toward(laptop.position)
    laptop.train_toward(dock.position)
    beam = dock.active_beam.pattern
    print(f"trained dock beam: peak {beam.peak_gain_dbi():.1f} dBi, "
          f"HPBW {beam.half_power_beam_width_deg():.1f} deg, "
          f"strongest side lobe {beam.side_lobe_level_db():.1f} dB")

    # The paper's boundary effect: steer 70 degrees off broadside.
    boundary = dock.codebook.best_entry_toward(math.radians(70.0))
    print(f"boundary beam (70 deg): peak {boundary.pattern.peak_gain_dbi():.1f} dBi, "
          f"side lobes {boundary.pattern.side_lobe_level_db():.1f} dB "
          f"(much stronger - Figure 17's 'rotated' case)")

    # --- 3. A TCP transfer over the simulated link ------------------
    setup = build_wigig_link_setup(distance_m=2.0, window_bytes=128 * 1024)
    setup.run(0.1)  # 100 ms of simulated time
    data_frames = [r for r in setup.medium.history if r.kind == FrameKind.DATA]
    print(f"TCP throughput: {setup.flow.throughput_bps() / 1e6:.0f} mbps "
          f"at MCS {setup.link.mcs.index} ({setup.link.mcs.label()})")
    print(f"data frames sent: {len(data_frames)}, "
          f"median duration {sorted(f.duration_s for f in data_frames)[len(data_frames) // 2] * 1e6:.1f} us, "
          f"aggregation up to {max(f.aggregated_mpdus for f in data_frames)} MPDUs/frame")


if __name__ == "__main__":
    main()
