"""Unit tests for the Iperf-style TCP model."""

import pytest

from repro.geometry.vec import Vec2
from repro.mac.simulator import Medium, Simulator, Station, StaticCoupling
from repro.mac.tcp import GIGE_CAP_BPS, IperfFlow, TcpParameters
from repro.mac.wigig import MPDU_BITS, WiGigLink


def make_flow(params, coupling_db=-40.0, seed=1):
    sim = Simulator(seed=seed)
    coupling = StaticCoupling({
        ("tx", "rx"): coupling_db,
        ("rx", "tx"): coupling_db,
    })
    medium = Medium(sim, coupling, capture_history=False)
    tx = Station("tx", Vec2(0, 0))
    rx = Station("rx", Vec2(2, 0))
    medium.register(tx)
    medium.register(rx)
    link = WiGigLink(sim, medium, transmitter=tx, receiver=rx,
                     snr_hint_db=35.0, send_beacons=False)
    flow = IperfFlow(sim, link, params)
    return sim, link, flow


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            TcpParameters(window_bytes=0)
        with pytest.raises(ValueError):
            TcpParameters(host_rtt_s=-1.0)
        with pytest.raises(ValueError):
            TcpParameters(rate_limit_bps=0.0)
        with pytest.raises(ValueError):
            TcpParameters(eth_rate_bps=0.0)


class TestWindowControl:
    def test_throughput_scales_with_window(self):
        results = {}
        for window in (8 * 1024, 32 * 1024):
            sim, link, flow = make_flow(TcpParameters(window_bytes=window))
            sim.run_until(0.2)
            results[window] = flow.throughput_bps()
        assert results[32 * 1024] > 2.5 * results[8 * 1024]

    def test_window_limited_throughput_matches_w_over_rtt(self):
        window = 8 * 1024
        params = TcpParameters(window_bytes=window, host_rtt_s=600e-6)
        sim, link, flow = make_flow(params)
        sim.run_until(0.3)
        # Far from saturation: throughput ~ window / (host RTT + small
        # radio service time).
        expected = window * 8 / params.host_rtt_s
        assert flow.throughput_bps() == pytest.approx(expected, rel=0.2)

    def test_gige_cap_enforced(self):
        sim, link, flow = make_flow(TcpParameters(window_bytes=1024 * 1024))
        sim.run_until(0.3)
        assert flow.throughput_bps() <= GIGE_CAP_BPS

    def test_large_windows_saturate(self):
        sim, link, flow = make_flow(TcpParameters(window_bytes=256 * 1024))
        sim.run_until(0.3)
        assert flow.throughput_bps() > 0.9e9


class TestPacedMode:
    def test_rate_limit_respected(self):
        params = TcpParameters(window_bytes=64 * 1024, rate_limit_bps=50e6)
        sim, link, flow = make_flow(params)
        sim.run_until(0.3)
        assert flow.throughput_bps() == pytest.approx(50e6, rel=0.15)

    def test_tiny_rate_sends_rarely(self):
        params = TcpParameters(window_bytes=1024, rate_limit_bps=40e3)
        sim, link, flow = make_flow(params)
        sim.run_until(0.3)
        # 40 kbps = one MPDU every 64 ms -> at most ~6 in 300 ms.
        assert link.stats.data_frames_sent <= 7


class TestAccounting:
    def test_delivered_bits_counted(self):
        sim, link, flow = make_flow(TcpParameters(window_bytes=16 * 1024))
        sim.run_until(0.1)
        assert flow.delivered_bits == link.stats.mpdus_delivered * MPDU_BITS

    def test_reset_counters(self):
        sim, link, flow = make_flow(TcpParameters(window_bytes=16 * 1024))
        sim.run_until(0.1)
        flow.reset_counters()
        assert flow.delivered_bits == 0
        sim.run_until(0.2)
        assert flow.delivered_bits > 0

    def test_delivery_log_monotone(self):
        sim, link, flow = make_flow(TcpParameters(window_bytes=16 * 1024))
        sim.run_until(0.1)
        times = [t for t, _ in flow.delivery_log]
        totals = [b for _, b in flow.delivery_log]
        assert times == sorted(times)
        assert totals == sorted(totals)

    def test_zero_elapsed_is_zero_throughput(self):
        sim, link, flow = make_flow(TcpParameters(window_bytes=16 * 1024))
        assert flow.throughput_bps() == 0.0


class TestAimd:
    def test_clean_link_aimd_matches_fixed(self):
        fixed = make_flow(TcpParameters(window_bytes=64 * 1024, aimd=False))
        aimd = make_flow(TcpParameters(window_bytes=64 * 1024, aimd=True))
        for sim, link, flow in (fixed, aimd):
            sim.run_until(0.3)
        assert aimd[2].throughput_bps() == pytest.approx(
            fixed[2].throughput_bps(), rel=0.15
        )

    def test_lossy_link_reduces_aimd_throughput(self):
        # SNR around the MCS-9 threshold: persistent losses.
        clean = make_flow(TcpParameters(window_bytes=256 * 1024, aimd=True),
                          coupling_db=-40.0)
        lossy = make_flow(TcpParameters(window_bytes=256 * 1024, aimd=True),
                          coupling_db=-73.5)
        for sim, link, flow in (clean, lossy):
            sim.run_until(0.3)
        assert lossy[2].throughput_bps() < 0.85 * clean[2].throughput_bps()
        assert lossy[2].loss_events > 0

    def test_aimd_recovers_after_loss_period(self):
        sim, link, flow = make_flow(TcpParameters(window_bytes=256 * 1024, aimd=True))
        # Inject a synthetic loss: halve cwnd directly via the link's
        # retransmission counter.
        sim.run_until(0.05)
        link.stats.retransmissions += 5
        sim.run_until(0.4)
        # Despite the event, long-run throughput approaches the cap.
        assert flow.throughput_bps() > 0.75e9
