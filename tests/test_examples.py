"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; these tests import each one
as a module and run its ``main()`` with output captured, asserting the
headline strings appear.
"""

import importlib.util
import pathlib
import sys


EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys, argv=None):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "trained dock beam" in out
        assert "TCP throughput" in out
        assert "MPDUs/frame" in out

    def test_beam_pattern_survey(self, capsys):
        out = run_example("beam_pattern_survey", capsys)
        assert "Figure 17 metrics" in out
        assert "Quasi-omni discovery patterns" in out

    def test_office_deployment(self, capsys):
        out = run_example("office_deployment", capsys)
        assert "CONFLICT" in out
        assert "OK" in out

    def test_interference_study(self, capsys):
        out = run_example("interference_study", capsys)
        assert "baseline" in out.lower()
        assert "Recommendation" in out or "No significant" in out

    def test_spatial_planning(self, capsys):
        out = run_example("spatial_planning", capsys)
        assert "conflict graph edges" in out
        assert "airtime division factor" in out
        assert "Coverage map" in out

    def test_nlos_rescue(self, capsys):
        out = run_example("nlos_rescue", capsys)
        assert "LOS lobe in angular profile: gone" in out
        assert "% of line-of-sight" in out

    def test_vehicular_pass(self, capsys):
        out = run_example("vehicular_pass", capsys)
        assert "Re-training overhead" in out
        assert "km/h" in out
        assert "overhead" in out
