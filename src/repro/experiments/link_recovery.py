"""Link-break detection and re-association (the full lifecycle).

The paper observes that long links "often break" (Figure 13) and that
devices then fall back to device discovery — the D5000 emits its
102.4 ms discovery sweep whenever disconnected.  This harness wires
together the pieces that make that lifecycle measurable:

1. a data-phase :class:`~repro.mac.wigig.WiGigLink` carrying TCP;
2. a :class:`~repro.mac.association.LinkSupervisor` that detects the
   break when a channel outage (e.g. a person standing in the path)
   kills deliveries;
3. an :class:`~repro.mac.association.AssociationManager` that runs the
   discovery -> A-BFT -> handshake sequence once the obstruction
   clears, after which traffic resumes.

The headline metric is the outage breakdown: how much of the downtime
is physics (the obstruction itself) versus protocol (detection delay +
waiting for the next discovery window + handshake).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.geometry.vec import Vec2
from repro.mac.association import AssociationManager, LinkSupervisor
from repro.mac.beam_training import SectorSweepTrainer
from repro.mac.coupling import DeviceCoupling
from repro.mac.simulator import Medium, Simulator
from repro.mac.tcp import IperfFlow, TcpParameters
from repro.mac.wigig import WiGigLink
from repro.phy.channel import LinkBudget


@dataclass
class RecoveryResult:
    """Timeline of one break/recovery cycle."""

    outage_start_s: float
    outage_end_s: float
    break_detected_s: Optional[float]
    reassociated_s: Optional[float]
    traffic_resumed_s: Optional[float]
    throughput_before_bps: float
    throughput_after_bps: float

    @property
    def detection_delay_s(self) -> Optional[float]:
        if self.break_detected_s is None:
            return None
        return self.break_detected_s - self.outage_start_s

    @property
    def protocol_recovery_s(self) -> Optional[float]:
        """Time from obstruction clearing to traffic flowing again."""
        if self.traffic_resumed_s is None:
            return None
        return self.traffic_resumed_s - self.outage_end_s

    @property
    def total_downtime_s(self) -> Optional[float]:
        if self.traffic_resumed_s is None:
            return None
        return self.traffic_resumed_s - self.outage_start_s


def run_break_and_recover(
    outage_start_s: float = 0.1,
    outage_duration_s: float = 0.25,
    total_s: float = 1.2,
    outage_loss_db: float = 60.0,
    seed: int = 20,
) -> RecoveryResult:
    """One full cycle: traffic -> outage -> break -> rediscovery -> traffic.

    The outage is modeled as a heavy blockage loss inserted into the
    coupling for its duration (a person standing in the path).
    """
    dock = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
    laptop = make_e7440_laptop(position=Vec2(2.5, 0), orientation_rad=math.pi)
    dock.train_toward(laptop.position)
    laptop.train_toward(dock.position)
    devices = {dock.name: dock, laptop.name: laptop}
    budget = LinkBudget()
    sim = Simulator(seed=seed)

    class OutageCoupling(DeviceCoupling):
        """DeviceCoupling with a switchable blockage penalty."""

        outage_active = False

        def coupling_db(self, tx, rx, control=False):
            base = super().coupling_db(tx, rx, control)
            if self.outage_active:
                return base - outage_loss_db
            return base

    coupling = OutageCoupling(devices, budget=budget)
    medium = Medium(sim, coupling, budget=budget, capture_history=False)
    stations = {name: dev.make_station() for name, dev in devices.items()}
    for st in stations.values():
        medium.register(st)

    state = {
        "link": None,
        "flow": None,
        "supervisor": None,
        "break_detected": None,
        "reassociated": None,
        "traffic_resumed": None,
        "tput_before": 0.0,
    }

    def start_traffic() -> None:
        link = WiGigLink(
            sim, medium,
            transmitter=stations[laptop.name],
            receiver=stations[dock.name],
            snr_hint_db=coupling.snr_db(laptop.name, dock.name),
            send_beacons=False,
        )
        flow = IperfFlow(sim, link, TcpParameters(window_bytes=64 * 1024))
        state["link"] = link
        state["flow"] = flow
        state["supervisor"] = LinkSupervisor(
            sim, link, on_break=on_break, check_interval_s=10e-3, dead_intervals=3
        )

        def watch_resume() -> None:
            if state["traffic_resumed"] is None and state["reassociated"] is not None:
                if flow.delivered_bits > 0:
                    state["traffic_resumed"] = sim.now
                    return
            if sim.now < total_s:
                sim.schedule(2e-3, watch_resume)

        if state["reassociated"] is not None:
            sim.schedule(2e-3, watch_resume)

    manager = AssociationManager(
        sim, medium, dock, [laptop], budget=budget,
        trainer=SectorSweepTrainer(budget=budget, rng=np.random.default_rng(seed)),
        on_associated=lambda station: on_reassociated(),
        rng=np.random.default_rng(seed + 1),
    )

    def on_break() -> None:
        state["break_detected"] = sim.now
        # Tear down: stop feeding the flow, fall back to discovery.
        manager.station_online(laptop.name)
        manager.start()

    def on_reassociated() -> None:
        state["reassociated"] = sim.now
        # Re-association retrained just this pair's beams.
        coupling.invalidate(dock.name, laptop.name)
        start_traffic()

    # Initial traffic phase.
    start_traffic()
    sim.schedule(max(0.0, outage_start_s - 1e-6), lambda: state.__setitem__(
        "tput_before", state["flow"].throughput_bps()))

    def outage_on() -> None:
        coupling.outage_active = True
        coupling.invalidate()

    def outage_off() -> None:
        coupling.outage_active = False
        coupling.invalidate()

    sim.schedule(outage_start_s, outage_on)
    sim.schedule(outage_start_s + outage_duration_s, outage_off)
    sim.run_until(total_s)

    tput_after = state["flow"].throughput_bps() if state["flow"] is not None else 0.0
    return RecoveryResult(
        outage_start_s=outage_start_s,
        outage_end_s=outage_start_s + outage_duration_s,
        break_detected_s=state["break_detected"],
        reassociated_s=state["reassociated"],
        traffic_resumed_s=state["traffic_resumed"],
        throughput_before_bps=state["tput_before"],
        throughput_after_bps=tput_after,
    )
