"""DES-time soundness pass (RL040-RL046)."""

import textwrap

from repro.lint.config import LintConfig
from repro.lint.flow import DES_RULES, PASS_NAMES, analyze_files

DES = ("des",)


def codes(findings):
    return [f.code for f in findings]


def analyze(*files, config=None):
    findings, _ = analyze_files(list(files), config or LintConfig(), passes=DES)
    return findings


def mac(src):
    """Wrap a snippet as an in-scope module (des_packages covers repro.mac)."""
    return ("src/repro/mac/toy.py", textwrap.dedent(src))


class TestRuleCatalog:
    def test_catalog_covers_rl040_to_rl046(self):
        assert sorted(DES_RULES) == [f"RL04{i}" for i in range(7)]

    def test_des_is_a_registered_pass(self):
        assert "des" in PASS_NAMES

    def test_out_of_scope_module_is_skipped(self):
        findings = analyze(
            (
                "src/repro/analysis/toy.py",
                "def f(sim):\n    sim.schedule(-1.0, f)\n",
            )
        )
        assert findings == []


class TestRL040DelaySoundness:
    def test_negative_constant_delay(self):
        findings = analyze(mac("""
            def f(sim, cb):
                sim.schedule(-1.0, cb)
        """))
        assert codes(findings) == ["RL040"]

    def test_nan_and_inf_literals(self):
        findings = analyze(mac("""
            import math
            def f(sim, cb):
                sim.schedule(float("nan"), cb)
                sim.schedule(math.inf, cb)
        """))
        assert codes(findings) == ["RL040", "RL040"]

    def test_unguarded_subtraction_flagged(self):
        findings = analyze(mac("""
            def f(sim, cb, deadline_s):
                sim.schedule(deadline_s - 1e-6, cb)
        """))
        assert codes(findings) == ["RL040"]
        assert "subtraction" in findings[0].message

    def test_max_clamp_discharges_subtraction(self):
        findings = analyze(mac("""
            def f(sim, cb, deadline_s):
                sim.schedule(max(0.0, deadline_s - 1e-6), cb)
        """))
        assert findings == []

    def test_positive_guard_discharges_local(self):
        findings = analyze(mac("""
            def f(sim, cb, a, b):
                delay = a - b
                if delay > 0:
                    sim.schedule(delay, cb)
        """))
        assert findings == []

    def test_risk_propagates_through_local_assignment(self):
        findings = analyze(mac("""
            def f(sim, cb, a, b):
                delay = a - b
                sim.schedule(delay, cb)
        """))
        assert codes(findings) == ["RL040"]

    def test_reassignment_clears_earlier_risk(self):
        findings = analyze(mac("""
            def f(sim, cb, a, b):
                delay = a - b
                delay = abs(a - b)
                sim.schedule(delay, cb)
        """))
        assert findings == []

    def test_sifs_timeout_chain_is_clean(self):
        findings = analyze(mac("""
            def f(sim, cb, sifs_s, ack_frame_s):
                sim.schedule(sifs_s + ack_frame_s + sifs_s, cb)
        """))
        assert findings == []

    def test_schedule_at_unary_minus(self):
        findings = analyze(mac("""
            def f(sim, cb, t):
                sim.schedule_at(-t, cb)
        """))
        assert codes(findings) == ["RL040"]

    def test_subtracting_a_negative_constant_is_safe(self):
        findings = analyze(mac("""
            def f(sim, cb, t):
                sim.schedule(t - -1.0, cb)
        """))
        assert findings == []


class TestRL041AccumulationDrift:
    def test_aug_assign_accumulator_in_loop(self):
        findings = analyze(mac("""
            def f(sim, cb, dt):
                t = 0.0
                for _ in range(10):
                    t += dt
                    sim.schedule_at(t, cb)
        """))
        assert "RL041" in codes(findings)

    def test_closed_form_is_clean(self):
        findings = analyze(mac("""
            def f(sim, cb, t0, dt):
                for k in range(10):
                    sim.schedule_at(t0 + k * dt, cb)
        """))
        assert findings == []

    def test_accumulation_outside_loop_is_clean(self):
        findings = analyze(mac("""
            def f(sim, cb, dt):
                t = 0.0
                t += dt
                sim.schedule_at(t, cb)
        """))
        assert "RL041" not in codes(findings)

    def test_unrelated_accumulator_is_clean(self):
        findings = analyze(mac("""
            def f(sim, cb, dt):
                total = 0.0
                for k in range(10):
                    total += dt
                    sim.schedule_at(k * dt, cb)
        """))
        assert findings == []


class TestRL042StaleNowCapture:
    def test_captured_now_read_in_lambda(self):
        findings = analyze(mac("""
            def f(sim, flow):
                start = sim.now
                sim.schedule(5.0, lambda: flow.stamp(start))
        """))
        assert codes(findings) == ["RL042"]

    def test_captured_now_read_in_nested_def(self):
        findings = analyze(mac("""
            def f(sim, flow):
                start = sim.now
                def fire():
                    flow.stamp(start)
                sim.schedule(5.0, fire)
        """))
        assert codes(findings) == ["RL042"]

    def test_zero_delay_capture_is_current(self):
        findings = analyze(mac("""
            def f(sim, flow):
                start = sim.now
                sim.schedule(0.0, lambda: flow.stamp(start))
        """))
        assert findings == []

    def test_epoch_pattern_rereading_now_is_clean(self):
        findings = analyze(mac("""
            def f(sim, flow, duration):
                start = sim.now
                def tick():
                    if sim.now - start < duration:
                        sim.schedule(1.0, tick)
                sim.schedule(1.0, tick)
        """))
        assert findings == []


class TestRL043HandlerPurity:
    def test_wall_clock_in_method_handler(self):
        findings = analyze(mac("""
            import time
            class Node:
                def __init__(self, sim):
                    self.sim = sim
                def start(self):
                    self.sim.schedule(1.0, self._fire)
                def _fire(self):
                    self.t = time.time()
        """))
        assert codes(findings) == ["RL043"]
        assert "time.time" in findings[0].message

    def test_global_rng_through_call_chain(self):
        findings = analyze(mac("""
            import random
            def jitter():
                return random.random()
            def handler():
                return jitter()
            def f(sim):
                sim.schedule(1.0, handler)
        """))
        assert codes(findings) == ["RL043"]
        assert "RNG" in findings[0].message

    def test_env_read_in_lambda(self):
        findings = analyze(mac("""
            import os
            def f(sim, flow):
                sim.schedule(1.0, lambda: flow.mark(os.getenv("MODE")))
        """))
        assert codes(findings) == ["RL043"]

    def test_pure_handler_is_clean(self):
        findings = analyze(mac("""
            class Node:
                def __init__(self, sim):
                    self.sim = sim
                def start(self):
                    self.sim.schedule(1.0, self._fire)
                def _fire(self):
                    self.t = self.sim.now
        """))
        assert findings == []

    def test_clock_module_exempt(self):
        clock = (
            "src/repro/obs/clock.py",
            "import time\ndef now_s():\n    return time.time()\n",
        )
        handler = mac("""
            from repro.obs.clock import now_s
            def handler():
                return now_s()
            def f(sim):
                sim.schedule(1.0, handler)
        """)
        assert analyze(clock, handler) == []

    def test_unscheduled_impure_function_is_not_flagged(self):
        findings = analyze(mac("""
            import time
            def telemetry():
                return time.time()
        """))
        assert findings == []


class TestRL044CacheInvalidation:
    def test_move_then_snr_without_invalidation(self):
        findings = analyze(mac("""
            def f(device, coupling, pos):
                device.position = pos
                return coupling.snr_db(device.name)
        """))
        assert codes(findings) == ["RL044"]

    def test_invalidation_discharges_obligation(self):
        findings = analyze(mac("""
            def f(device, coupling, pos):
                device.position = pos
                coupling.invalidate(device.name)
                return coupling.snr_db(device.name)
        """))
        assert findings == []

    def test_beam_pattern_write_counts(self):
        findings = analyze(mac("""
            def f(device, coupling, pattern):
                device.data_pattern = pattern
                return coupling.coupling_db(device.name, "ap")
        """))
        assert codes(findings) == ["RL044"]

    def test_init_is_exempt(self):
        findings = analyze(mac("""
            class Node:
                def __init__(self, coupling, pos):
                    self.position = pos
                    self.snr = coupling.snr_db("n")
        """))
        assert findings == []


class TestRL045ZeroDelaySelfReschedule:
    def test_zero_delay_self_reschedule_method(self):
        findings = analyze(mac("""
            class Node:
                def __init__(self, sim):
                    self.sim = sim
                def _poll(self):
                    self.sim.schedule(0.0, self._poll)
        """))
        assert codes(findings) == ["RL045"]

    def test_zero_delay_self_reschedule_function(self):
        findings = analyze(mac("""
            def poll(sim):
                sim.schedule(0, poll)
        """))
        assert codes(findings) == ["RL045"]

    def test_positive_delay_self_reschedule_is_clean(self):
        findings = analyze(mac("""
            class Node:
                def __init__(self, sim):
                    self.sim = sim
                def _poll(self):
                    self.sim.schedule(1e-3, self._poll)
        """))
        assert findings == []

    def test_zero_delay_other_callback_is_clean(self):
        findings = analyze(mac("""
            class Node:
                def __init__(self, sim):
                    self.sim = sim
                def _poll(self):
                    self.sim.schedule(0.0, self._drain)
                def _drain(self):
                    pass
        """))
        assert findings == []

    def test_schedule_at_now_self_reschedule(self):
        findings = analyze(mac("""
            class Node:
                def __init__(self, sim):
                    self.sim = sim
                def _poll(self):
                    self.sim.schedule_at(self.sim.now, self._poll)
        """))
        assert codes(findings) == ["RL045"]


class TestRL046TimeEqualityAndTiebreak:
    def test_float_equality_on_now(self):
        findings = analyze(mac("""
            def f(sim, deadline):
                if sim.now == deadline:
                    return True
        """))
        assert codes(findings) == ["RL046"]

    def test_equality_on_captured_now_local(self):
        findings = analyze(mac("""
            def f(sim, deadline):
                t = sim.now
                return t != deadline
        """))
        assert codes(findings) == ["RL046"]

    def test_ordering_comparison_is_clean(self):
        findings = analyze(mac("""
            def f(sim, deadline):
                return sim.now >= deadline
        """))
        assert findings == []

    def test_heappush_without_counter_tiebreak(self):
        findings = analyze(mac("""
            import heapq
            def f(queue, t, cb):
                heapq.heappush(queue, (t, cb))
        """))
        assert codes(findings) == ["RL046"]

    def test_heappush_with_counter_is_clean(self):
        findings = analyze(mac("""
            import heapq
            def f(queue, t, counter, cb):
                heapq.heappush(queue, (t, next(counter), cb))
        """))
        assert findings == []


class TestDeterminism:
    def test_findings_are_stable_across_runs(self):
        files = [
            mac("""
                import time
                def f(sim, cb, a, b):
                    sim.schedule(a - b, cb)
                def handler():
                    return time.time()
                def g(sim):
                    sim.schedule(1.0, handler)
                def h(sim, deadline):
                    if sim.now == deadline:
                        sim.schedule(0, h)
            """)
        ]
        first = [(f.code, f.path, f.line, f.col) for f in analyze(*files)]
        second = [(f.code, f.path, f.line, f.col) for f in analyze(*files)]
        assert first and first == second
