"""Hour-scale link stability and beam realignments (Figure 14).

Figure 14 shows roughly 80 minutes of a static short link: the
interface bit rate is mostly constant but occasionally steps, and each
step coincides with a change of the frame amplitudes seen at the Vubiq
— the signature of a *beam pattern realignment*.  The paper concludes
that rate adaptation and beam selection are a joint process in the
D5000.

The model: the device occasionally re-runs beam training (triggered by
small SNR dips of a slow shadowing process) and may settle on a
neighboring codebook entry.  The new beam changes (a) the link gain —
hence the reported rate — and (b) the gain toward the Vubiq receiver —
hence the observed amplitude.  The two therefore move at the same
instants but not necessarily in the same direction, reproducing the
paper's counterintuitive footnote 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.devices.vubiq import VubiqReceiver
from repro.geometry.vec import Vec2
from repro.mac.frames import FrameKind
from repro.phy.antenna import open_waveguide
from repro.phy.channel import LinkBudget, ShadowingProcess
from repro.phy.mcs import select_mcs


@dataclass(frozen=True)
class LongRunSample:
    """One point of the Figure 14 time series."""

    time_s: float
    link_rate_bps: float
    laptop_amplitude_dbm: float
    dock_amplitude_dbm: float
    beam_index: int
    realigned: bool


def run_long_term(
    duration_s: float = 80 * 60.0,
    sample_period_s: float = 30.0,
    distance_m: float = 2.0,
    seed: int = 0,
    realign_snr_drop_db: float = 1.2,
) -> List[LongRunSample]:
    """Simulate the 80-minute static-link observation.

    A realignment is triggered whenever the instantaneous shadowing
    falls more than ``realign_snr_drop_db`` below its value at the last
    training; training then re-picks the best beam under a freshly
    perturbed gain estimate, sometimes landing on a different entry.
    """
    rng = np.random.default_rng(seed)
    dock = make_d5000_dock(position=Vec2(0.0, 0.0), orientation_rad=0.0)
    laptop = make_e7440_laptop(position=Vec2(distance_m, 0.0), orientation_rad=math.pi)
    dock.train_toward(laptop.position)
    laptop.train_toward(dock.position)
    budget = LinkBudget()
    shadow = ShadowingProcess(std_db=2.0, coherence_time_s=240.0, rng=rng)
    vubiq = VubiqReceiver(
        position=Vec2(distance_m / 2.0, 0.8),
        antenna=open_waveguide(),
        budget=budget,
    ).pointed_at(laptop.position)

    def current_snr() -> float:
        tx_gain = laptop.tx_gain_dbi(dock.position, FrameKind.DATA)
        rx_gain = dock.tx_gain_dbi(laptop.position, FrameKind.DATA)
        return budget.snr_db(distance_m, tx_gain, rx_gain) + shadow.value_db

    samples: List[LongRunSample] = []
    snr_at_training = current_snr()
    t = 0.0
    entries = laptop.codebook.directional_entries
    while t < duration_s:
        shadow.advance(t)
        snr = current_snr()
        realigned = False
        if abs(snr - snr_at_training) > realign_snr_drop_db:
            # Re-train under a noisy gain estimate: evaluate the top
            # candidates with measurement noise and pick the winner.
            bearing = laptop.bearing_to(dock.position)
            scored = sorted(
                entries,
                key=lambda e: e.pattern.gain_dbi(bearing) + float(rng.normal(0.0, 1.5)),
                reverse=True,
            )
            if scored[0] is not laptop.active_beam:
                # Only a *realized* pattern change counts: adjacent
                # codebook entries can quantize to identical weights.
                changed = not np.array_equal(
                    scored[0].pattern.gains_dbi,
                    laptop.active_beam.pattern.gains_dbi,
                )
                laptop.select_beam(scored[0])
                realigned = changed
            snr_at_training = current_snr()
        mcs = select_mcs(current_snr())
        rate = mcs.phy_rate_bps if mcs is not None else 0.0
        samples.append(
            LongRunSample(
                time_s=t,
                link_rate_bps=rate,
                laptop_amplitude_dbm=vubiq.received_power_dbm(laptop, FrameKind.DATA),
                dock_amplitude_dbm=vubiq.received_power_dbm(dock, FrameKind.DATA),
                beam_index=laptop.active_beam.index,
                realigned=realigned,
            )
        )
        t += sample_period_s
    return samples


def realignment_times(samples: List[LongRunSample]) -> List[float]:
    """Times at which the beam changed."""
    return [s.time_s for s in samples if s.realigned]


def rate_change_times(samples: List[LongRunSample]) -> List[float]:
    """Times at which the reported rate stepped."""
    times = []
    for prev, cur in zip(samples, samples[1:]):
        if cur.link_rate_bps != prev.link_rate_bps:
            times.append(cur.time_s)
    return times


def amplitude_change_times(
    samples: List[LongRunSample],
    threshold_db: float = 0.5,
) -> List[float]:
    """Times at which the laptop frame amplitude visibly moved."""
    times = []
    for prev, cur in zip(samples, samples[1:]):
        if abs(cur.laptop_amplitude_dbm - prev.laptop_amplitude_dbm) > threshold_db:
            times.append(cur.time_s)
    return times
