"""Tests for the deterministic fallback RNG streams (repro.seeding)."""

import warnings

import numpy as np
import pytest

from repro.phy.channel import ShadowingProcess
from repro.phy.signal import Emission, synthesize_trace
from repro.seeding import FallbackSeedWarning, fallback_rng


class TestFallbackRng:
    def test_each_call_yields_independent_stream(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackSeedWarning)
            a = fallback_rng("test")
            b = fallback_rng("test")
        assert not np.array_equal(a.standard_normal(16), b.standard_normal(16))

    def test_warns_with_owner_name(self):
        with pytest.warns(FallbackSeedWarning, match="my-component"):
            fallback_rng("my-component")


class TestShadowingFallback:
    def test_default_instances_are_not_correlated(self):
        # Two default-constructed processes model *different* links and
        # must not replay one identical stream.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackSeedWarning)
            s1 = ShadowingProcess(std_db=3.0)
            s2 = ShadowingProcess(std_db=3.0)
        v1 = [s1.advance(t * 10.0) for t in range(1, 50)]
        v2 = [s2.advance(t * 10.0) for t in range(1, 50)]
        assert v1 != v2

    def test_missing_rng_is_surfaced(self):
        with pytest.warns(FallbackSeedWarning, match="ShadowingProcess"):
            ShadowingProcess(std_db=3.0)

    def test_explicit_rng_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", FallbackSeedWarning)
            ShadowingProcess(std_db=3.0, rng=np.random.default_rng(1))


class TestSynthesizeTraceFallback:
    def test_default_noise_draws_are_independent(self):
        em = Emission(start_s=1e-4, duration_s=2e-4, amplitude_v=0.5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackSeedWarning)
            t1 = synthesize_trace([em], duration_s=1e-3, noise_floor_v=0.01)
            t2 = synthesize_trace([em], duration_s=1e-3, noise_floor_v=0.01)
        assert not np.array_equal(t1.samples, t2.samples)

    def test_missing_rng_is_surfaced(self):
        em = Emission(start_s=1e-4, duration_s=2e-4, amplitude_v=0.5)
        with pytest.warns(FallbackSeedWarning, match="synthesize_trace"):
            synthesize_trace([em], duration_s=1e-3, noise_floor_v=0.01)

    def test_explicit_rng_does_not_warn(self):
        em = Emission(start_s=1e-4, duration_s=2e-4, amplitude_v=0.5)
        with warnings.catch_warnings():
            warnings.simplefilter("error", FallbackSeedWarning)
            synthesize_trace(
                [em],
                duration_s=1e-3,
                noise_floor_v=0.01,
                rng=np.random.default_rng(2),
            )
