"""60 GHz link budget: path loss, absorption, noise, SNR.

The 20-40 dB extra attenuation of 60 GHz links relative to legacy ISM
bands (Section 2, "Transmission Characteristics") comes straight out of
the Friis equation — the frequency-squared term — plus the oxygen
absorption peak around 60 GHz.  :class:`LinkBudget` combines transmit
power, antenna gains, distance, and extra per-path losses into a
received power and SNR that :mod:`repro.phy.mcs` maps to a data rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.dbmath import (
    amplitude_to_db_scalar,
    db_to_linear_scalar,
    linear_to_db_scalar,
    log_distance_loss_db,
)
from repro import obs
from repro.phy.antenna import SPEED_OF_LIGHT
from repro.seeding import fallback_rng

#: Center frequencies of the devices under test (Section 3.1): both the
#: D5000 and the Air-3c operate on channel centers 60.48 and 62.64 GHz.
SIXTY_GHZ = 60.48e9
CHANNEL_2_HZ = 60.48e9
CHANNEL_3_HZ = 62.64e9

#: Modulated bandwidth of the devices under test (Section 3.1).
DEVICE_BANDWIDTH_HZ = 1.7e9

#: Boltzmann constant, J/K.
BOLTZMANN = 1.380649e-23

#: Reference temperature for thermal noise, K.
T0_KELVIN = 290.0


def friis_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Free-space path loss in dB (positive number).

    ``FSPL = 20 log10(4 pi d f / c)``.  At 60 GHz and 1 m this is about
    68 dB — some 28 dB worse than at 2.4 GHz, which is the fundamental
    reason the devices need directional antennas.
    """
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return amplitude_to_db_scalar(
        4.0 * math.pi * distance_m * frequency_hz / SPEED_OF_LIGHT
    )


def oxygen_absorption_db(distance_m: float, frequency_hz: float = SIXTY_GHZ) -> float:
    """Atmospheric (oxygen) absorption loss over a path, in dB.

    The O2 resonance near 60 GHz costs roughly 15 dB/km at the peak,
    falling off a few GHz away.  Negligible indoors (<0.3 dB at 20 m)
    but included for correctness and for the range experiments.
    """
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    # Coarse Lorentzian fit to the 60 GHz O2 line (peak 15 dB/km,
    # half-width ~3 GHz) — adequate for indoor-scale corrections.
    offset_ghz = abs(frequency_hz - 60.0e9) / 1e9
    specific_db_per_km = 15.0 / (1.0 + (offset_ghz / 3.0) ** 2)
    return specific_db_per_km * distance_m / 1000.0


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 7.0) -> float:
    """Receiver noise floor in dBm for a given bandwidth.

    kTB over 1.7 GHz is about -81.5 dBm; a 7 dB consumer-grade noise
    figure puts the floor near -74.5 dBm.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    ktb_watts = BOLTZMANN * T0_KELVIN * bandwidth_hz
    return linear_to_db_scalar(ktb_watts * 1e3) + noise_figure_db


@dataclass(frozen=True)
class LinkBudget:
    """Static parameters of one directional 60 GHz link.

    Attributes:
        tx_power_dbm: Conducted transmit power.  Consumer 60 GHz radios
            transmit around 10 dBm conducted (EIRP limits are met
            through antenna gain).
        frequency_hz: Carrier frequency.
        bandwidth_hz: Modulated bandwidth (1.7 GHz for the devices
            under test).
        noise_figure_db: Receiver noise figure.
        implementation_loss_db: Catch-all for filter, impairment, and
            housing losses.  Consumer 60 GHz modules burn a double-
            digit margin here: with 16 dB the model reports 16-QAM 5/8
            (and never the top MCS) on 2 m links, exactly like the
            D5000 in Figure 12.
        excess_exponent: Additional distance exponent on top of free
            space (total path-loss exponent = 2 + excess).  Wideband
            60 GHz links lose SNR somewhat faster than Friis predicts
            (frequency-selective fading, beam decoherence); 0.5 plus
            the implementation loss places the paper's link-break
            cliff in its observed 10-17 m band and its MCS-vs-distance
            ladder (Figure 12) at the right rungs.  Applied only
            beyond 1 m.
    """

    tx_power_dbm: float = 10.0
    frequency_hz: float = SIXTY_GHZ
    bandwidth_hz: float = DEVICE_BANDWIDTH_HZ
    noise_figure_db: float = 7.0
    implementation_loss_db: float = 16.0
    excess_exponent: float = 0.5

    def noise_floor_dbm(self) -> float:
        """Thermal noise floor including the receiver noise figure."""
        return thermal_noise_dbm(self.bandwidth_hz, self.noise_figure_db)

    def propagation_loss_db(self, distance_m: float) -> float:
        """Total distance-dependent loss of one path (no antennas)."""
        loss = friis_path_loss_db(distance_m, self.frequency_hz)
        loss += oxygen_absorption_db(distance_m, self.frequency_hz)
        if distance_m > 1.0:
            loss += log_distance_loss_db(self.excess_exponent, distance_m)
        return loss

    def received_power_dbm(
        self,
        distance_m: float,
        tx_gain_dbi: float,
        rx_gain_dbi: float,
        extra_loss_db: float = 0.0,
    ) -> float:
        """Received power over a single path.

        ``extra_loss_db`` carries reflection losses, blockage
        penetration, shadowing draws, etc.
        """
        return (
            self.tx_power_dbm
            + tx_gain_dbi
            + rx_gain_dbi
            - self.propagation_loss_db(distance_m)
            - self.implementation_loss_db
            - extra_loss_db
        )

    def snr_db(
        self,
        distance_m: float,
        tx_gain_dbi: float,
        rx_gain_dbi: float,
        extra_loss_db: float = 0.0,
    ) -> float:
        """Signal-to-noise ratio of a single-path link."""
        if obs.STATE.metrics:
            obs.add("phy.channel.snr_evals")
        return (
            self.received_power_dbm(distance_m, tx_gain_dbi, rx_gain_dbi, extra_loss_db)
            - self.noise_floor_dbm()
        )

    def sinr_db(
        self,
        signal_dbm: float,
        interference_dbm: Optional[float] = None,
    ) -> float:
        """SINR given received signal and (optional) interference power."""
        noise_lin = db_to_linear_scalar(self.noise_floor_dbm())
        interf_lin = (
            0.0 if interference_dbm is None else db_to_linear_scalar(interference_dbm)
        )
        return signal_dbm - linear_to_db_scalar(noise_lin + interf_lin)


class ShadowingProcess:
    """Temporally correlated log-normal shadowing.

    The paper observes that even "static" links fluctuate — the range
    cliff lands anywhere between 10 and 17 m across experiments, and
    long runs show occasional amplitude changes (Figures 13, 14).  A
    slowly varying AR(1) shadowing term reproduces that run-to-run and
    minute-to-minute variability.
    """

    def __init__(
        self,
        std_db: float = 2.5,
        coherence_time_s: float = 60.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if std_db < 0:
            raise ValueError("shadowing std must be non-negative")
        if coherence_time_s <= 0:
            raise ValueError("coherence time must be positive")
        self._std = std_db
        self._tau = coherence_time_s
        # Without rng, draw a distinct deterministic fallback stream
        # (shadowing on different links must stay independent) and warn
        # so seeded experiments that forget to thread their rng are
        # surfaced, not silently masked.
        self._rng = rng if rng is not None else fallback_rng("ShadowingProcess")
        self._value = self._rng.normal(0.0, std_db) if std_db > 0 else 0.0
        self._time = 0.0

    @property
    def value_db(self) -> float:
        """Current shadowing value in dB (zero-mean)."""
        return self._value

    def advance(self, now_s: float) -> float:
        """Advance the process to an absolute time and return its value."""
        dt = now_s - self._time
        if dt < 0:
            raise ValueError("time must be non-decreasing")
        if dt > 0 and self._std > 0:
            rho = math.exp(-dt / self._tau)
            innovation_std = self._std * math.sqrt(max(0.0, 1.0 - rho * rho))
            self._value = rho * self._value + self._rng.normal(0.0, innovation_std)
            if obs.STATE.metrics:
                obs.add("phy.channel.shadowing_steps")
        self._time = now_s
        return self._value
