"""Unit tests for the 802.11ad MCS table and rate selection."""

import pytest

from repro.phy.mcs import (
    CONTROL_MCS,
    MAX_OBSERVED_MCS_INDEX,
    MCS_TABLE,
    frame_error_probability,
    mcs_by_index,
    select_mcs,
)


class TestTable:
    def test_twelve_entries(self):
        assert len(MCS_TABLE) == 12

    def test_rates_monotonic(self):
        rates = [m.phy_rate_bps for m in MCS_TABLE]
        assert rates == sorted(rates)

    def test_thresholds_monotonic(self):
        thresholds = [m.min_snr_db for m in MCS_TABLE]
        assert thresholds == sorted(thresholds)

    def test_paper_rates_present(self):
        """Figure 12 annotates exactly these single-carrier rates."""
        rates_gbps = {round(m.phy_rate_gbps, 3) for m in MCS_TABLE}
        for expected in (1.155, 1.54, 1.925, 2.31, 3.85):
            assert expected in rates_gbps

    def test_labels(self):
        assert mcs_by_index(8).label() == "QPSK, 3/4"
        assert mcs_by_index(11).label() == "16-QAM, 5/8"

    def test_control_mcs_by_index_zero(self):
        assert mcs_by_index(0) is CONTROL_MCS

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError):
            mcs_by_index(42)


class TestSelection:
    def test_high_snr_caps_at_observed_max(self):
        """The paper never observed the top MCS (16-QAM 3/4)."""
        best = select_mcs(60.0)
        assert best.index == MAX_OBSERVED_MCS_INDEX
        assert best.label() == "16-QAM, 5/8"

    def test_uncapped_selection_reaches_top(self):
        best = select_mcs(60.0, max_index=12)
        assert best.index == 12

    def test_low_snr_returns_none(self):
        assert select_mcs(-5.0) is None

    def test_backoff_is_applied(self):
        mcs1 = MCS_TABLE[0]
        # Just below threshold+backoff: not selectable.
        assert select_mcs(mcs1.min_snr_db + 1.9, backoff_db=2.0) is None
        assert select_mcs(mcs1.min_snr_db + 2.1, backoff_db=2.0) is not None

    def test_selection_monotone_in_snr(self):
        prev_rate = 0.0
        for snr in range(0, 40, 2):
            mcs = select_mcs(float(snr))
            rate = mcs.phy_rate_bps if mcs else 0.0
            assert rate >= prev_rate
            prev_rate = rate


class TestFrameErrorModel:
    def test_far_above_threshold_is_lossless(self):
        mcs = mcs_by_index(8)
        assert frame_error_probability(mcs.min_snr_db + 40, mcs) == 0.0

    def test_far_below_threshold_always_fails(self):
        mcs = mcs_by_index(8)
        assert frame_error_probability(mcs.min_snr_db - 40, mcs) == 1.0

    def test_half_at_threshold(self):
        mcs = mcs_by_index(8)
        assert frame_error_probability(mcs.min_snr_db, mcs) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        mcs = mcs_by_index(6)
        fers = [frame_error_probability(s, mcs) for s in range(-5, 25)]
        assert all(a >= b for a, b in zip(fers, fers[1:]))

    def test_steepness_validation(self):
        with pytest.raises(ValueError):
            frame_error_probability(10.0, mcs_by_index(1), steepness_db=0.0)
