"""Unit tests for the sector-level-sweep beam training protocol."""

import math

import numpy as np
import pytest

from repro.devices.d5000 import make_d5000_dock, make_e7440_laptop
from repro.experiments.reflection_range import (
    DOCK_POSITION,
    LAPTOP_POSITION,
    build_reflection_room,
)
from repro.geometry.vec import Vec2
from repro.mac.beam_training import SBIFS_S, SSW_FRAME_S, SectorSweepTrainer
from repro.phy.raytracing import RayTracer


def make_pair(distance=2.0):
    dock = make_d5000_dock(position=Vec2(0, 0), orientation_rad=0.0)
    laptop = make_e7440_laptop(position=Vec2(distance, 0), orientation_rad=math.pi)
    return dock, laptop


class TestBasicTraining:
    def test_training_succeeds_on_short_link(self):
        dock, laptop = make_pair()
        result = SectorSweepTrainer().train(dock, laptop)
        assert result.success
        assert result.link_snr_db is not None

    def test_chosen_sectors_applied_to_devices(self):
        dock, laptop = make_pair()
        result = SectorSweepTrainer().train(dock, laptop)
        assert dock.active_beam.index == result.initiator_sector
        assert laptop.active_beam.index == result.responder_sector

    def test_near_oracle_performance(self):
        """SLS lands within a few dB of the exhaustive best pair."""
        dock, laptop = make_pair()
        trainer = SectorSweepTrainer(rng=np.random.default_rng(1))
        result = trainer.train(dock, laptop)
        oracle = trainer.oracle_snr_db(dock, laptop)
        assert oracle - result.link_snr_db < 4.0

    def test_training_duration_matches_protocol(self):
        dock, laptop = make_pair()
        result = SectorSweepTrainer().train(dock, laptop)
        sectors = len(dock.codebook.directional_entries) + len(
            laptop.codebook.directional_entries
        )
        expected = sectors * (SSW_FRAME_S + SBIFS_S) + 2 * SSW_FRAME_S
        assert result.duration_s == pytest.approx(expected)
        # The paper-scale number: a full 32+32 sweep takes ~1 ms.
        assert 0.5e-3 < result.duration_s < 2e-3

    def test_all_sectors_heard_on_short_link(self):
        dock, laptop = make_pair()
        result = SectorSweepTrainer().train(dock, laptop)
        assert result.initiator_sweep.heard == 32
        assert result.responder_sweep.heard == 32

    def test_deterministic_given_seed(self):
        r1 = SectorSweepTrainer(rng=np.random.default_rng(7)).train(*make_pair())
        r2 = SectorSweepTrainer(rng=np.random.default_rng(7)).train(*make_pair())
        assert r1.initiator_sector == r2.initiator_sector
        assert r1.responder_sector == r2.responder_sector


class TestImperfections:
    def test_noise_occasionally_misleads_selection(self):
        """With heavy estimation noise the chosen sector varies —
        the churn behind Figure 14's realignments."""
        sectors = set()
        for seed in range(12):
            dock, laptop = make_pair()
            trainer = SectorSweepTrainer(
                snr_noise_std_db=4.0, rng=np.random.default_rng(seed)
            )
            result = trainer.train(dock, laptop)
            sectors.add((result.initiator_sector, result.responder_sector))
        assert len(sectors) >= 2

    def test_long_link_hears_fewer_sectors(self):
        dock, laptop = make_pair(distance=12.0)
        result = SectorSweepTrainer().train(dock, laptop)
        # Off-axis sectors fall below the control-PHY sensitivity.
        assert result.initiator_sweep.heard < 32

    def test_training_fails_when_out_of_range(self):
        dock, laptop = make_pair(distance=200.0)
        result = SectorSweepTrainer().train(dock, laptop)
        assert not result.success
        assert result.initiator_sector is None


class TestMultipathTraining:
    def test_blocked_los_trains_onto_reflection(self):
        """The Figure 5 scenario: SLS converges onto the wall bounce."""
        room = build_reflection_room(blocked=True)
        tracer = RayTracer(room, max_order=2)
        dock = make_d5000_dock(position=DOCK_POSITION, orientation_rad=0.0)
        laptop = make_e7440_laptop(position=LAPTOP_POSITION, orientation_rad=math.pi)
        trainer = SectorSweepTrainer(tracer=tracer)
        result = trainer.train(laptop, dock)
        assert result.success
        # The chosen beams steer into the wall's half plane, not at the
        # (blocked) straight line.
        steer = laptop.active_beam.steering_azimuth_rad
        # Laptop local frame faces the dock; the wall is below (y < 0),
        # which maps to positive local azimuth for the laptop at 180
        # degrees orientation.
        assert abs(math.degrees(steer)) > 10.0
        assert result.link_snr_db > 3.0

    def test_fully_shielded_training_fails(self):
        from repro.geometry.materials import get_material
        from repro.geometry.room import Room
        from repro.geometry.segments import Segment

        wall = Segment(Vec2(1.0, -5.0), Vec2(1.0, 5.0), get_material("metal"))
        tracer = RayTracer(Room([wall]), max_order=0)
        dock, laptop = make_pair()
        result = SectorSweepTrainer(tracer=tracer).train(dock, laptop)
        assert not result.success
