"""Frame extraction and classification from amplitude traces.

The measurement rig cannot decode frames (undersampled I/Q), so the
paper recovers frame-level structure purely from the envelope:

* a frame is a contiguous run of samples above a detection threshold;
* frames from different devices are separated by their average
  amplitude (Section 3.2: the notebook's direct-path frames are
  stronger than the dock's reflected ones);
* frame periodicity identifies beacons and discovery sweeps (Table 1);
* gaps between frames group them into bursts (the 2 ms TXOPs).

This module implements those steps.  It is deliberately independent of
the simulator: it consumes :class:`~repro.phy.signal.Trace` objects and
nothing else, exactly like the authors' Matlab scripts consumed scope
exports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.signal import Trace


@dataclass(frozen=True)
class DetectedFrame:
    """A frame recovered from a trace by threshold detection."""

    start_s: float
    duration_s: float
    mean_amplitude_v: float
    peak_amplitude_v: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class FrameDetector:
    """Threshold-based frame extraction.

    Args:
        threshold_v: Detection threshold.  When None, it is set
            automatically to ``auto_factor`` times the trace's median
            amplitude — the median is dominated by noise samples as
            long as the medium is not saturated.
        auto_factor: Multiplier for the automatic threshold.
        min_duration_s: Discard detections shorter than this (noise
            spikes).
        merge_gap_s: Merge detections separated by less than this —
            envelope ripple inside one frame must not split it.
    """

    def __init__(
        self,
        threshold_v: Optional[float] = None,
        auto_factor: float = 4.0,
        min_duration_s: float = 1.0e-6,
        merge_gap_s: float = 0.5e-6,
    ):
        if threshold_v is not None and threshold_v <= 0:
            raise ValueError("threshold must be positive")
        if auto_factor <= 1.0:
            raise ValueError("auto_factor must exceed 1")
        self.threshold_v = threshold_v
        self.auto_factor = auto_factor
        self.min_duration_s = min_duration_s
        self.merge_gap_s = merge_gap_s

    def resolve_threshold(self, trace: Trace) -> float:
        """The detection threshold used for a given trace."""
        if self.threshold_v is not None:
            return self.threshold_v
        return self.auto_factor * float(np.median(trace.samples))

    def detect(self, trace: Trace) -> List[DetectedFrame]:
        """Extract frames from a trace."""
        threshold = self.resolve_threshold(trace)
        above = trace.samples >= threshold
        if not above.any():
            return []
        # Find run boundaries of the boolean mask.
        edges = np.flatnonzero(np.diff(above.astype(np.int8)))
        starts = list(edges[~above[edges]] + 1)
        ends = list(edges[above[edges]] + 1)
        if above[0]:
            starts.insert(0, 0)
        if above[-1]:
            ends.append(above.size)
        rate = trace.sample_rate_hz
        merge_gap_samples = int(round(self.merge_gap_s * rate))
        merged: List[Tuple[int, int]] = []
        for s, e in zip(starts, ends):
            if merged and s - merged[-1][1] <= merge_gap_samples:
                merged[-1] = (merged[-1][0], e)
            else:
                merged.append((s, e))
        min_samples = max(1, int(round(self.min_duration_s * rate)))
        frames = []
        for s, e in merged:
            if e - s < min_samples:
                continue
            chunk = trace.samples[s:e]
            frames.append(
                DetectedFrame(
                    start_s=trace.start_s + s / rate,
                    duration_s=(e - s) / rate,
                    mean_amplitude_v=float(np.mean(chunk)),
                    peak_amplitude_v=float(np.max(chunk)),
                )
            )
        return frames


def split_sources_by_amplitude(
    frames: Sequence[DetectedFrame],
    iterations: int = 20,
) -> Tuple[List[DetectedFrame], List[DetectedFrame]]:
    """Separate frames of two devices by mean amplitude (2-means).

    Reproduces the paper's trick of placing the down-converter so the
    notebook arrives on the direct path and the dock via a reflection:
    "the average amplitude of the notebook frames is larger ... and we
    can easily separate them."

    Returns:
        ``(strong, weak)`` — frames of the higher- and lower-amplitude
        cluster respectively.  If all frames have identical amplitude,
        everything lands in ``strong``.
    """
    if not frames:
        return [], []
    amps = np.array([f.mean_amplitude_v for f in frames])
    lo, hi = float(amps.min()), float(amps.max())
    if math.isclose(lo, hi, rel_tol=1e-9, abs_tol=1e-12):
        return list(frames), []
    c_low, c_high = lo, hi
    for _ in range(iterations):
        assign_high = np.abs(amps - c_high) < np.abs(amps - c_low)
        if assign_high.all() or (~assign_high).all():
            break
        new_high = float(amps[assign_high].mean())
        new_low = float(amps[~assign_high].mean())
        if math.isclose(new_high, c_high) and math.isclose(new_low, c_low):
            break
        c_high, c_low = new_high, new_low
    assign_high = np.abs(amps - c_high) < np.abs(amps - c_low)
    strong = [f for f, is_hi in zip(frames, assign_high) if is_hi]
    weak = [f for f, is_hi in zip(frames, assign_high) if not is_hi]
    return strong, weak


def estimate_periodicity_s(
    frames: Sequence[DetectedFrame],
    tolerance: float = 0.25,
) -> Optional[float]:
    """Estimate the repeat interval of a periodic frame stream.

    Takes the median inter-start gap and validates that the majority of
    gaps are within ``tolerance`` (relative) of it; returns None if the
    stream is not convincingly periodic.  This is how the Table 1
    periodicities are extracted from captures of idle links.
    """
    if len(frames) < 3:
        return None
    starts = np.array(sorted(f.start_s for f in frames))
    gaps = np.diff(starts)
    median = float(np.median(gaps))
    if median <= 0:
        return None
    close = np.abs(gaps - median) <= tolerance * median
    if close.mean() < 0.5:
        return None
    return float(np.mean(gaps[close]))


def group_bursts(
    frames: Sequence[DetectedFrame],
    gap_threshold_s: float = 50e-6,
) -> List[List[DetectedFrame]]:
    """Group frames into bursts separated by idle gaps.

    The WiGig data phase is burst-structured (max 2 ms per burst,
    Section 4.1); a gap longer than ``gap_threshold_s`` ends a burst.
    """
    if gap_threshold_s <= 0:
        raise ValueError("gap threshold must be positive")
    ordered = sorted(frames, key=lambda f: f.start_s)
    bursts: List[List[DetectedFrame]] = []
    for frame in ordered:
        if bursts and frame.start_s - bursts[-1][-1].end_s <= gap_threshold_s:
            bursts[-1].append(frame)
        else:
            bursts.append([frame])
    return bursts


def burst_durations_s(bursts: Sequence[Sequence[DetectedFrame]]) -> List[float]:
    """On-air span of each burst (first frame start to last frame end)."""
    return [b[-1].end_s - b[0].start_s for b in bursts if b]


def classify_detected_frames(
    frames: Sequence[DetectedFrame],
    timing=None,
) -> List[str]:
    """Label detected frames by duration, the way the paper did by eye.

    The WiGig frame classes occupy separable duration bands:

    * ``"ack"`` — ~2 us acknowledgments;
    * ``"control"`` — 3-8 us: RTS/CTS, beacons, single-MPDU data (the
      envelope cannot tell these apart; the paper used position within
      the burst and periodicity for the final call);
    * ``"data"`` — 8-30 us aggregated data frames;
    * ``"discovery"`` — ~1 ms sweeps;
    * ``"unknown"`` — anything else.

    Returns one label per input frame, in order.
    """
    from repro.mac.frames import WIGIG_TIMING

    timing = timing if timing is not None else WIGIG_TIMING
    labels = []
    for frame in frames:
        d = frame.duration_s
        if d < 0.6 * timing.beacon_frame_s:
            labels.append("ack")
        elif d <= timing.min_data_frame_s + 3e-6:
            labels.append("control")
        elif d <= timing.max_data_frame_s * 1.25:
            labels.append("data")
        elif abs(d - timing.discovery_frame_s) <= 0.4 * timing.discovery_frame_s:
            labels.append("discovery")
        else:
            labels.append("unknown")
    return labels
