"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

The export format is the JSON *object* flavor of the trace-event
spec: ``{"traceEvents": [...], "displayTimeUnit": "ms", ...}``.  Each
span is a complete event (``ph="X"``) with microsecond ``ts``/``dur``;
process-name metadata events (``ph="M"``) label pid 0 as the campaign
parent and pid ``shard+1`` as that shard's worker timeline.

:func:`validate_trace` is the exporter schema the CI smoke test
checks emitted traces against — it returns a list of human-readable
problems (empty means valid Perfetto input).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

PathLike = Union[str, pathlib.Path]

TRACE_FILENAME = "trace.json"

#: Event types the exporter emits (complete span, counter, metadata).
_KNOWN_PHASES = ("X", "C", "M")


def build_trace_doc(events: List[Dict], label: str = "") -> Dict:
    """Wrap raw events in a Perfetto-loadable trace-event document.

    Adds ``process_name`` metadata for every pid present so the
    Perfetto UI shows "campaign" / "shard N" track groups instead of
    bare pids.
    """
    events = [dict(e) for e in events]
    for event in events:
        event.setdefault("pid", 0)
        event.setdefault("tid", 0)
    pids = sorted({int(e["pid"]) for e in events})
    metadata = []
    for pid in pids:
        name = "campaign" if pid == 0 else f"shard {pid - 1}"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    doc = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }
    if label:
        doc["otherData"] = {"campaign": label}
    return doc


def validate_trace(doc: Dict) -> List[str]:
    """Check a trace document against the exporter schema.

    Returns a list of problems; an empty list means the document is
    well-formed Perfetto input.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"trace document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an int")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: tid must be an int")
        if phase in ("X", "C"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
        if phase == "M" and event.get("name") == "process_name":
            args = event.get("args", {})
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: process_name metadata missing args.name")
        if len(problems) >= 50:
            problems.append("... (truncated)")
            break
    return problems


def write_trace(path: PathLike, events: List[Dict], label: str = "") -> pathlib.Path:
    """Write a trace-event JSON file; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = build_trace_doc(events, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return path


def read_trace(path: PathLike) -> Dict:
    """Load a trace-event JSON document written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


__all__ = [
    "TRACE_FILENAME",
    "build_trace_doc",
    "read_trace",
    "validate_trace",
    "write_trace",
]
