"""Call-graph construction over the project symbol table.

Resolves call expressions to :class:`~repro.lint.flow.symbols.FunctionInfo`
entries so the interprocedural passes can follow units and RNG taint
across module boundaries.  Resolution is deliberately conservative —
an unresolvable call simply produces no edge (and therefore no
finding), never a guess.

Handled shapes:

* plain calls to module-level functions, local or from-imported
  (including names re-exported through ``__init__.py``);
* attribute calls through an imported module (``channel.snr_db(...)``);
* constructor calls (``LinkBudget(...)`` resolves to ``__init__``);
* ``self.method(...)`` inside a method, walking base classes;
* method calls on locals with statically-known constructor types
  (``x = LinkBudget(...)`` then ``x.snr_db(...)``);
* ``functools.partial(fn, ...)`` — an edge of kind ``"partial"`` to
  ``fn`` (the eventual call site is untracked, the reference is);
* decorated functions — the decorated name still resolves to its def.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.flow.symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable


@dataclass
class CallSite:
    """One resolved call edge."""

    caller: Optional[FunctionInfo]  #: None for module-level code
    module: str  #: module the call appears in
    node: ast.Call
    callee: FunctionInfo
    kind: str = "call"  #: "call" | "partial"
    #: True when the callee's leading ``self`` is implicitly bound
    #: (method call on an instance or a constructor call).
    bound: bool = False


@dataclass
class CallGraph:
    sites: List[CallSite] = field(default_factory=list)
    by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)
    by_callee: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        self.sites.append(site)
        key = site.caller.qualname if site.caller else f"{site.module}:<module>"
        self.by_caller.setdefault(key, []).append(site)
        self.by_callee.setdefault(site.callee.qualname, []).append(site)

    def calls_from(self, qualname: str) -> List[CallSite]:
        return self.by_caller.get(qualname, [])

    def callers_of(self, qualname: str) -> List[CallSite]:
        return self.by_callee.get(qualname, [])

    def reachable_from(self, qualname: str, limit: int = 512) -> List[str]:
        """Transitive callee qualnames from a function (BFS, bounded).

        Used by the --vec worklist to attribute profile hotness: a
        scalar loop is hot if *anything it calls into* is instrumented
        hot, not just its own module.  Deterministic order (BFS over
        call sites in source order); ``limit`` bounds pathological
        graphs, dropping the deepest entries.
        """
        seen = {qualname}
        order: List[str] = []
        queue = [qualname]
        while queue and len(order) < limit:
            current = queue.pop(0)
            for site in self.by_caller.get(current, []):
                callee = site.callee.qualname
                if callee not in seen:
                    seen.add(callee)
                    order.append(callee)
                    queue.append(callee)
        return order

    @property
    def edge_count(self) -> int:
        return len(self.sites)


def _local_constructor_types(
    func_node: ast.AST, resolver: "CallResolver", module: ModuleInfo
) -> Dict[str, ClassInfo]:
    """Map local names to classes for ``x = ClassName(...)`` assignments."""
    out: Dict[str, ClassInfo] = {}
    for node in ast.walk(func_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or not isinstance(node.value, ast.Call):
            continue
        dotted = resolver.dotted_callee(node.value.func, module)
        if not dotted:
            continue
        cls = resolver.table.class_info(dotted)
        if cls is not None:
            out[target.id] = cls
    return out


class CallResolver:
    """Resolves call expressions against a :class:`SymbolTable`."""

    def __init__(self, table: SymbolTable):
        self.table = table

    def dotted_callee(self, func: ast.AST, module: ModuleInfo) -> str:
        """Canonical dotted name of a call target ('' if unresolvable)."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in module.functions or name in module.classes:
                return f"{module.name}.{name}"
            origin = module.imports.origin_of(name)
            if origin:
                return origin
            return ""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            mod_origin = module.imports.module_of(base)
            if mod_origin:
                return f"{mod_origin}.{func.attr}"
            name_origin = module.imports.origin_of(base)
            if name_origin:
                return f"{name_origin}.{func.attr}"
            # Same-module class attribute (ClassName.method).
            if base in module.classes:
                return f"{module.name}.{base}.{func.attr}"
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            inner = func.value
            if isinstance(inner.value, ast.Name):
                mod_origin = module.imports.module_of(inner.value.id)
                if mod_origin:
                    return f"{mod_origin}.{inner.attr}.{func.attr}"
        return ""

    def resolve(
        self,
        call: ast.Call,
        module: ModuleInfo,
        caller: Optional[FunctionInfo],
        local_types: Optional[Dict[str, ClassInfo]] = None,
    ) -> Optional[Tuple[FunctionInfo, str, bool]]:
        """Resolve a call to (callee, kind, bound) or None."""
        func = call.func
        # functools.partial(fn, ...) — reference edge to fn.
        dotted = self.dotted_callee(func, module)
        if dotted in ("functools.partial", "partial") and call.args:
            target = self.dotted_callee(call.args[0], module) or (
                call.args[0].id
                if isinstance(call.args[0], ast.Name)
                else ""
            )
            if target:
                fn = self.table.function(
                    target if "." in target else f"{module.name}.{target}"
                )
                if fn is not None:
                    return fn, "partial", fn.is_method
            return None
        # self.method(...) within a method.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and caller is not None
            and caller.class_name is not None
        ):
            cls = self.table.class_info(f"{caller.module}.{caller.class_name}")
            if cls is not None:
                fn = self.table.method_on(cls, func.attr)
                if fn is not None:
                    return fn, "call", True
            return None
        # method call on a local with a known constructor type.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and local_types
            and func.value.id in local_types
        ):
            fn = self.table.method_on(local_types[func.value.id], func.attr)
            if fn is not None:
                return fn, "call", True
        if dotted:
            fn = self.table.function(dotted)
            if fn is not None:
                bound = fn.name == "__init__" or (
                    fn.is_method and isinstance(func, ast.Attribute)
                )
                return fn, "call", bound
        return None


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call in every module into a :class:`CallGraph`."""
    graph = CallGraph()
    resolver = CallResolver(table)
    for module in table.modules.values():
        # Module-level calls.
        class _TopLevel(ast.NodeVisitor):
            def visit_FunctionDef(self, node):  # do not descend
                pass

            visit_AsyncFunctionDef = visit_FunctionDef

            def visit_ClassDef(self, node):
                pass

            def visit_Call(self, node, _module=module):
                resolved = resolver.resolve(node, _module, None)
                if resolved is not None:
                    fn, kind, bound = resolved
                    graph.add(
                        CallSite(
                            caller=None,
                            module=_module.name,
                            node=node,
                            callee=fn,
                            kind=kind,
                            bound=bound,
                        )
                    )
                self.generic_visit(node)

        _TopLevel().visit(module.tree)
        all_functions = list(module.functions.values())
        for cls in module.classes.values():
            all_functions.extend(cls.methods.values())
        for fn in all_functions:
            local_types = _local_constructor_types(fn.node, resolver, module)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolver.resolve(node, module, fn, local_types)
                if resolved is None:
                    continue
                callee, kind, bound = resolved
                graph.add(
                    CallSite(
                        caller=fn,
                        module=module.name,
                        node=node,
                        callee=callee,
                        kind=kind,
                        bound=bound,
                    )
                )
    return graph


def bind_arguments(
    site: CallSite,
) -> Tuple[Dict[str, ast.AST], bool]:
    """Map callee parameter names to argument expressions at a site.

    Returns ``(bound, exhaustive)``; ``exhaustive`` is False when the
    call uses ``*args``/``**kwargs`` so absence of a parameter in the
    mapping proves nothing.
    """
    params = site.callee.call_params if site.bound else site.callee.params
    bound: Dict[str, ast.AST] = {}
    exhaustive = True
    positional = []
    for arg in site.node.args:
        if isinstance(arg, ast.Starred):
            exhaustive = False
        else:
            positional.append(arg)
    for param, arg in zip(params, positional):
        bound[param.name] = arg
    for kw in site.node.keywords:
        if kw.arg is None:  # **kwargs
            exhaustive = False
        else:
            bound[kw.arg] = kw.value
    return bound, exhaustive
