"""Single-pass AST rule engine for the domain-aware linter.

The engine parses each file once and walks the tree once.  Rules
register the node types they care about; the walker dispatches every
node to the interested rules while maintaining an ancestor stack so
rules can ask questions like "which function am I inside?" without a
second traversal.

Findings carry a *fingerprint* — a short hash of (rule code, file,
enclosing scope, normalized source line, column) — which is what the
committed baseline matches against.  Fingerprints survive unrelated
edits that only move a line vertically, but change when the offending
line itself changes, so a baseline entry cannot silently cover new
code.  The scope and column components keep otherwise-identical lines
in different functions (or different columns of one line) from
colliding into interchangeable baseline entries.

Inline suppressions use ``# replint: disable=RL003`` (comma-separated
codes, or ``all``) on the first line of the flagged statement.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.lint.config import LintConfig

#: Code used for files the engine cannot parse at all.
PARSE_ERROR_CODE = "RL000"

_SUPPRESS_RE = re.compile(r"#\s*replint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    line_text: str = ""
    #: Enclosing scope ("Class.method", "function", or "" at module
    #: level) — part of the fingerprint so identical lines in
    #: different scopes stay distinct baseline entries.
    context: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes (code, file, scope, normalized line text, column) — the
        line *number* is deliberately excluded so a finding keeps its
        fingerprint when unrelated edits move it vertically.
        """
        normalized = " ".join(self.line_text.split())
        digest = hashlib.sha256(
            f"{self.code}|{self.path}|{self.context}|{normalized}|{self.col}".encode(
                "utf-8"
            )
        )
        return digest.hexdigest()[:16]

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        # "scope" duplicates "context" under the name the v2 baseline
        # format uses, so external tooling can correlate JSON findings
        # with baseline entries without knowing the historical alias.
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "context": self.context,
            "scope": self.context,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """Per-file state shared by every rule during the single pass."""

    def __init__(
        self,
        rel_path: str,
        module: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
    ):
        self.rel_path = rel_path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.findings: List[Finding] = []
        self.suppressed_count = 0
        #: Ancestors of the node currently being visited (outermost
        #: first; the node itself is not included).
        self.stack: List[ast.AST] = []
        self._suppressions = self._parse_suppressions()

    def _parse_suppressions(self) -> Dict[int, frozenset]:
        out: Dict[int, frozenset] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                codes = frozenset(
                    c.strip().upper() for c in match.group(1).split(",") if c.strip()
                )
                out[lineno] = codes
        return out

    def enclosing_function(self) -> Optional[ast.AST]:
        """Nearest enclosing function/lambda of the current node."""
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return node
        return None

    def scope_name(self) -> str:
        """Dotted class/function scope of the current node ("" at top level)."""
        parts = [
            node.name
            for node in self.stack
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        return ".".join(parts)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, lineno: int, code: str) -> bool:
        codes = self._suppressions.get(lineno)
        if codes is None:
            return False
        return code.upper() in codes or "ALL" in codes

    def report(self, node: ast.AST, code: str, message: str) -> None:
        """Record a finding unless it is suppressed or configured away."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if code in self.config.disable:
            return
        if self.config.is_ignored(self.rel_path, code):
            return
        if self.is_suppressed(lineno, code):
            self.suppressed_count += 1
            return
        self.findings.append(
            Finding(
                path=self.rel_path,
                line=lineno,
                col=col + 1,
                code=code,
                message=message,
                line_text=self.line_text(lineno),
                context=self.scope_name(),
            )
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``, ``summary``, and ``node_types`` (the AST
    node classes they want dispatched) and implement :meth:`visit`.
    ``begin_file`` runs before the walk (e.g. to scan imports);
    ``applies_to`` lets a rule exclude whole modules cheaply.
    """

    code: str = "RL000"
    name: str = "base"
    summary: str = ""
    node_types: Tuple[type, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def begin_file(self, ctx: FileContext) -> None:
        pass

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        raise NotImplementedError

    def end_file(self, ctx: FileContext) -> None:
        pass


#: Rule registry: code -> rule class, populated by :func:`register`.
RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


@dataclass
class ImportMap:
    """Module/function aliases a rule cares about, scanned per file.

    Maps are keyed by the local name; values are the canonical dotted
    origin (e.g. ``{"np": "numpy", "rnd": "random"}`` or for from-
    imports ``{"default_rng": "numpy.random.default_rng"}``).
    """

    modules: Dict[str, str] = field(default_factory=dict)
    names: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def scan(cls, tree: ast.Module) -> "ImportMap":
        out = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        out.modules[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    out.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return out

    def module_of(self, local: str) -> Optional[str]:
        return self.modules.get(local)

    def origin_of(self, local: str) -> Optional[str]:
        return self.names.get(local)


def _dispatch_table(
    rules: Sequence[Rule],
) -> Dict[type, List[Rule]]:
    table: Dict[type, List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            table.setdefault(node_type, []).append(rule)
    return table


def run_rules(ctx: FileContext, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run the single-pass walk over an already-parsed file context."""
    if rules is None:
        rules = [cls() for cls in RULES.values()]
    active = [r for r in rules if r.code not in ctx.config.disable and r.applies_to(ctx)]
    for rule in active:
        rule.begin_file(ctx)
    table = _dispatch_table(active)

    def walk(node: ast.AST) -> None:
        for rule in table.get(type(node), ()):
            rule.visit(node, ctx)
        ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            walk(child)
        ctx.stack.pop()

    walk(ctx.tree)
    for rule in active:
        rule.end_file(ctx)
    ctx.findings.sort(key=Finding.sort_key)
    return ctx.findings


def module_name_for(rel_path: pathlib.PurePath) -> str:
    """Dotted module name of a file path (``src`` prefixes stripped)."""
    parts = list(rel_path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    while parts and parts[0] in ("src", ".", ""):
        parts = parts[1:]
    return ".".join(parts)


def lint_source(
    source: str,
    module: str = "snippet",
    rel_path: str = "snippet.py",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint a source string — the entry point used by the rule tests."""
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    ctx = FileContext(rel_path, module, source, tree, config)
    return run_rules(ctx)


def iter_python_files(
    paths: Iterable[pathlib.Path], config: LintConfig
) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, excluded-filtered list."""
    out: List[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    unique = sorted(set(out))
    kept = []
    for path in unique:
        posix = path.as_posix()
        if any(fnmatch.fnmatch(posix, pat) for pat in config.exclude):
            continue
        kept.append(path)
    return kept


def lint_path(
    path: pathlib.Path, root: pathlib.Path, config: LintConfig
) -> List[Finding]:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = pathlib.Path(path.name)
    rel_posix = rel.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=rel_posix,
                line=1,
                col=1,
                code=PARSE_ERROR_CODE,
                message=f"could not read file: {exc}",
            )
        ]
    return lint_source(source, module_name_for(rel), rel_posix, config)


def _lint_file_job(item: Tuple[str, str, LintConfig]) -> List[Finding]:
    """Worker for ``--jobs``: lint one file in a pool process."""
    # The rule registry is populated by importing the package; a
    # spawn-started worker unpickles this module without that side
    # effect, so trigger it explicitly.
    import repro.lint  # noqa: F401

    path_str, root_str, config = item
    return lint_path(pathlib.Path(path_str), pathlib.Path(root_str), config)


def lint_paths(
    paths: Iterable[pathlib.Path],
    root: pathlib.Path,
    config: LintConfig,
    jobs: int = 1,
) -> List[Finding]:
    """Lint every python file under ``paths``; deterministic order.

    ``jobs > 1`` fans files out to a process pool.  Findings are
    re-sorted after the merge, so the output is byte-identical for any
    worker count; a broken pool degrades to the serial path.
    """
    files = iter_python_files(list(paths), config)
    findings: List[Finding] = []
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        items = [(str(path), str(root), config) for path in files]
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for chunk in pool.map(_lint_file_job, items):
                    findings.extend(chunk)
        except BrokenProcessPool:
            findings = []
            for item in items:
                findings.extend(_lint_file_job(item))
    else:
        for path in files:
            findings.extend(lint_path(path, root, config))
    findings.sort(key=Finding.sort_key)
    return findings
