"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.dbmath import db_to_linear, linear_to_db, power_sum_db
from repro.core.frames import DetectedFrame, group_bursts, split_sources_by_amplitude
from repro.core.utilization import medium_usage_from_records
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2, normalize_angle
from repro.phy.channel import LinkBudget, friis_path_loss_db
from repro.phy.mcs import MCS_TABLE, frame_error_probability, select_mcs

finite = st.floats(allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
angles = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


class TestDbMathProperties:
    @given(st.floats(min_value=-200, max_value=200))
    def test_db_roundtrip(self, x):
        assert float(linear_to_db(db_to_linear(x))) == pytest_approx(x)

    @given(st.lists(st.floats(min_value=-100, max_value=30), min_size=1, max_size=10))
    def test_power_sum_at_least_max(self, values):
        total = power_sum_db(values)
        assert total >= max(values) - 1e-9

    @given(st.lists(st.floats(min_value=-100, max_value=30), min_size=1, max_size=10))
    def test_power_sum_bounded_by_max_plus_10logn(self, values):
        total = power_sum_db(values)
        assert total <= max(values) + 10 * math.log10(len(values)) + 1e-9

    @given(
        st.lists(st.floats(min_value=-100, max_value=30), min_size=1, max_size=8),
        st.floats(min_value=-20, max_value=20),
    )
    def test_power_sum_shift_invariance(self, values, shift):
        shifted = power_sum_db([v + shift for v in values])
        assert shifted == pytest_approx(power_sum_db(values) + shift, abs_tol=1e-6)


class TestVectorProperties:
    @given(angles, angles, angles, angles)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert a.distance_to(b) == pytest_approx(b.distance_to(a))

    @given(angles, angles, st.floats(min_value=-10, max_value=10))
    def test_rotation_preserves_norm(self, x, y, theta):
        v = Vec2(x, y)
        assert v.rotated(theta).length() == pytest_approx(v.length(), abs_tol=1e-6)

    @given(st.floats(min_value=-100, max_value=100))
    def test_normalize_angle_range(self, a):
        out = normalize_angle(a)
        assert -math.pi < out <= math.pi + 1e-12

    @given(angles, angles, angles, angles, angles, angles)
    def test_mirror_preserves_distance_to_line(self, ax, ay, bx, by, px, py):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        if a.distance_to(b) < 1e-3:
            return
        s = Segment(a, b)
        p = Vec2(px, py)
        m = s.mirror_point(p)
        # Mirror image is equidistant from both segment endpoints.
        assert p.distance_to(a) == pytest_approx(m.distance_to(a), abs_tol=1e-6)
        assert p.distance_to(b) == pytest_approx(m.distance_to(b), abs_tol=1e-6)


class TestCdfProperties:
    @given(st.lists(small_floats, min_size=1, max_size=50))
    def test_cdf_monotone(self, samples):
        cdf = EmpiricalCDF(samples)
        xs = sorted(samples)
        values = [cdf(x) for x in xs]
        assert values == sorted(values)

    @given(st.lists(small_floats, min_size=1, max_size=50))
    def test_cdf_bounds(self, samples):
        cdf = EmpiricalCDF(samples)
        assert cdf(min(samples) - 1) == 0.0
        assert cdf(max(samples)) == 1.0

    @given(
        st.lists(small_floats, min_size=1, max_size=50),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_quantile_inverse(self, samples, q):
        cdf = EmpiricalCDF(samples)
        assert cdf(cdf.quantile(q)) >= q - 1e-12


class TestChannelProperties:
    @given(st.floats(min_value=0.1, max_value=1000.0))
    def test_friis_monotone(self, d):
        assert friis_path_loss_db(d * 2, 60e9) > friis_path_loss_db(d, 60e9)

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=-10, max_value=30),
        st.floats(min_value=-10, max_value=30),
    )
    def test_snr_monotone_in_gain(self, d, g1, g2):
        b = LinkBudget()
        assert b.snr_db(d, g1 + 1.0, g2) > b.snr_db(d, g1, g2)

    @given(st.floats(min_value=-30, max_value=60))
    def test_mcs_selection_never_violates_threshold(self, snr):
        mcs = select_mcs(snr, backoff_db=2.0)
        if mcs is not None:
            assert snr >= mcs.min_snr_db + 2.0

    @given(st.floats(min_value=-30, max_value=60), st.sampled_from(MCS_TABLE))
    def test_fer_in_unit_interval(self, snr, mcs):
        fer = frame_error_probability(snr, mcs)
        assert 0.0 <= fer <= 1.0


@st.composite
def detected_frames(draw, max_frames=20):
    n = draw(st.integers(min_value=0, max_value=max_frames))
    frames = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=1e-6, max_value=1e-3))
        duration = draw(st.floats(min_value=1e-6, max_value=1e-4))
        amp = draw(st.floats(min_value=0.01, max_value=1.0))
        frames.append(DetectedFrame(t, duration, amp, amp))
        t += duration
    return frames


class TestFrameAnalysisProperties:
    @given(detected_frames())
    def test_usage_in_unit_interval(self, frames):
        usage = medium_usage_from_records(frames, 0.0, 1.0)
        assert 0.0 <= usage <= 1.0

    @given(detected_frames(), st.floats(min_value=0.0, max_value=1e-4))
    def test_bridging_never_decreases_usage(self, frames, bridge):
        plain = medium_usage_from_records(frames, 0.0, 1.0)
        bridged = medium_usage_from_records(frames, 0.0, 1.0, bridge_gap_s=bridge)
        assert bridged >= plain - 1e-12

    @given(detected_frames())
    def test_burst_partition_is_complete(self, frames):
        bursts = group_bursts(frames, gap_threshold_s=50e-6)
        flattened = [f for b in bursts for f in b]
        assert len(flattened) == len(frames)
        assert {id(f) for f in flattened} == {id(f) for f in frames}

    @given(detected_frames())
    def test_bursts_are_time_ordered(self, frames):
        bursts = group_bursts(frames, gap_threshold_s=50e-6)
        for burst in bursts:
            starts = [f.start_s for f in burst]
            assert starts == sorted(starts)

    @given(detected_frames(max_frames=15))
    def test_source_split_is_partition(self, frames):
        strong, weak = split_sources_by_amplitude(frames)
        assert len(strong) + len(weak) == len(frames)
        if strong and weak:
            assert min(f.mean_amplitude_v for f in strong) >= max(
                f.mean_amplitude_v for f in weak
            ) - 1e-12


def pytest_approx(value, abs_tol=1e-9):
    import pytest

    return pytest.approx(value, abs=abs_tol)
