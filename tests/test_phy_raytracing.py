"""Unit tests for the image-method ray tracer."""

import math

import pytest

from repro.geometry.materials import get_material
from repro.geometry.room import Obstacle, Room
from repro.geometry.segments import Segment
from repro.geometry.vec import Vec2
from repro.phy.channel import LinkBudget
from repro.phy.raytracing import RayTracer, path_loss_db


def single_wall_room(material="metal", y=-1.0):
    wall = Segment(Vec2(-10, y), Vec2(10, y), get_material(material))
    return Room([wall]), wall


class TestLos:
    def test_clear_los_found(self):
        room, _ = single_wall_room()
        paths = RayTracer(room, max_order=0).trace(Vec2(0, 0), Vec2(4, 0))
        assert len(paths) == 1
        assert paths[0].is_los
        assert paths[0].length_m() == pytest.approx(4.0)

    def test_blocked_los_dropped(self):
        room, _ = single_wall_room()
        room.add_obstacle(Obstacle.plate(Vec2(2, -0.5), Vec2(2, 0.5), material="metal"))
        paths = RayTracer(room, max_order=0).trace(Vec2(0, 0), Vec2(4, 0))
        assert paths == []

    def test_thin_material_penetrates_with_loss(self):
        room, _ = single_wall_room()
        room.add_obstacle(Obstacle.plate(Vec2(2, -0.5), Vec2(2, 0.5), material="drywall"))
        paths = RayTracer(room, max_order=0, max_penetration_db=20.0).trace(
            Vec2(0, 0), Vec2(4, 0)
        )
        assert len(paths) == 1
        assert paths[0].penetration_loss_db == pytest.approx(
            get_material("drywall").penetration_loss_db
        )

    def test_coincident_endpoints_raise(self):
        room, _ = single_wall_room()
        with pytest.raises(ValueError):
            RayTracer(room).trace(Vec2(0, 0), Vec2(0, 0))


class TestFirstOrder:
    def test_mirror_geometry(self):
        room, wall = single_wall_room(y=-1.0)
        paths = RayTracer(room, max_order=1).trace(Vec2(0, 0), Vec2(4, 0))
        refl = [p for p in paths if p.order == 1]
        assert len(refl) == 1
        path = refl[0]
        # Specular bounce at the midpoint of the ground projection.
        bounce = path.points[1]
        assert bounce.x == pytest.approx(2.0)
        assert bounce.y == pytest.approx(-1.0)
        # Unfolded length: straight line to the image point.
        assert path.length_m() == pytest.approx(math.hypot(4.0, 2.0))

    def test_reflection_loss_carried(self):
        room, wall = single_wall_room(material="brick")
        paths = RayTracer(room, max_order=1).trace(Vec2(0, 0), Vec2(4, 0))
        refl = [p for p in paths if p.order == 1][0]
        assert refl.reflection_loss_db == get_material("brick").reflection_loss_db

    def test_reflection_point_must_lie_on_wall(self):
        # A short wall whose extension would host the bounce but whose
        # segment does not: no reflection path.
        wall = Segment(Vec2(10, -1), Vec2(12, -1), get_material("metal"))
        room = Room([wall])
        paths = RayTracer(room, max_order=1).trace(Vec2(0, 0), Vec2(4, 0))
        assert all(p.order == 0 for p in paths)

    def test_departure_and_arrival_angles(self):
        room, _ = single_wall_room(y=-1.0)
        paths = RayTracer(room, max_order=1).trace(Vec2(0, 0), Vec2(4, 0))
        refl = [p for p in paths if p.order == 1][0]
        # Leaves downward-forward, arrives from downward-backward.
        assert refl.departure_angle_rad() == pytest.approx(math.atan2(-1, 2))
        assert refl.arrival_angle_rad() == pytest.approx(math.atan2(-1, -2))

    def test_blocked_reflection_dropped(self):
        room, _ = single_wall_room()
        # Plate hanging low enough to cut the descending reflected leg
        # (which passes (1, -0.5)) while leaving the y=0 LOS clear.
        room.add_obstacle(Obstacle.plate(Vec2(1, -0.9), Vec2(1, -0.2), material="metal"))
        paths = RayTracer(room, max_order=1).trace(Vec2(0, 0), Vec2(4, 0))
        assert all(p.order == 0 for p in paths)
        assert any(p.is_los for p in paths)


class TestSecondOrder:
    def test_parallel_walls_double_bounce(self):
        top = Segment(Vec2(-10, 1), Vec2(10, 1), get_material("metal"))
        bottom = Segment(Vec2(-10, -1), Vec2(10, -1), get_material("metal"))
        room = Room([top, bottom])
        paths = RayTracer(room, max_order=2).trace(Vec2(0, 0), Vec2(6, 0))
        orders = sorted(p.order for p in paths)
        assert orders.count(2) >= 2  # up-down and down-up
        double = [p for p in paths if p.order == 2][0]
        assert double.reflection_loss_db == pytest.approx(
            2 * get_material("metal").reflection_loss_db
        )

    def test_second_order_longer_than_first(self):
        top = Segment(Vec2(-10, 1), Vec2(10, 1), get_material("metal"))
        bottom = Segment(Vec2(-10, -1), Vec2(10, -1), get_material("metal"))
        room = Room([top, bottom])
        paths = RayTracer(room, max_order=2).trace(Vec2(0, 0), Vec2(6, 0))
        first = min(p.length_m() for p in paths if p.order == 1)
        second = min(p.length_m() for p in paths if p.order == 2)
        assert second > first

    def test_max_order_limits_enumeration(self):
        top = Segment(Vec2(-10, 1), Vec2(10, 1), get_material("metal"))
        bottom = Segment(Vec2(-10, -1), Vec2(10, -1), get_material("metal"))
        room = Room([top, bottom])
        paths = RayTracer(room, max_order=1).trace(Vec2(0, 0), Vec2(6, 0))
        assert all(p.order <= 1 for p in paths)

    def test_invalid_max_order(self):
        room, _ = single_wall_room()
        with pytest.raises(ValueError):
            RayTracer(room, max_order=3)


class TestPowerRanking:
    def test_strongest_path_is_los_when_clear(self):
        room, _ = single_wall_room()
        tracer = RayTracer(room, max_order=2)
        best = tracer.strongest_path(Vec2(0, 0), Vec2(4, 0), LinkBudget())
        assert best is not None and best.is_los

    def test_strongest_path_is_reflection_when_blocked(self):
        room, _ = single_wall_room()
        room.add_obstacle(Obstacle.plate(Vec2(2, -0.3), Vec2(2, 0.5), material="absorber"))
        tracer = RayTracer(room, max_order=2)
        best = tracer.strongest_path(Vec2(0, 0), Vec2(4, 0), LinkBudget())
        assert best is not None and best.order == 1

    def test_no_paths_returns_none(self):
        room, _ = single_wall_room()
        # A full-height plate at x=1 cuts both the LOS (at (1, 0)) and
        # the descending reflected leg (at (1, -0.5)).
        room.add_obstacle(Obstacle.plate(Vec2(1, -1.0), Vec2(1, 1.0), material="metal"))
        tracer = RayTracer(room, max_order=1)
        assert tracer.strongest_path(Vec2(0, 0), Vec2(4, 0), LinkBudget()) is None

    def test_path_loss_combines_terms(self):
        room, _ = single_wall_room(material="brick")
        paths = RayTracer(room, max_order=1).trace(Vec2(0, 0), Vec2(4, 0))
        refl = [p for p in paths if p.order == 1][0]
        loss = path_loss_db(refl, 60.48e9)
        from repro.phy.channel import friis_path_loss_db

        assert loss == pytest.approx(
            friis_path_loss_db(refl.length_m(), 60.48e9)
            + refl.extra_loss_db(),
            abs=0.2,  # oxygen term is tiny at this range
        )
