"""Physical-layer substrate: antennas, channel, ray tracing, MCS, traces.

Everything the paper's devices do below the MAC lives here:

* :mod:`repro.phy.antenna` — phased antenna arrays with realistic,
  consumer-grade imperfections (few elements, coarse phase shifters),
  plus the horn antennas of the measurement rig.
* :mod:`repro.phy.codebook` — predefined beam codebooks: directional
  steering entries and the quasi-omni discovery sweep.
* :mod:`repro.phy.channel` — 60 GHz link budget: Friis free-space loss,
  oxygen absorption, shadowing, noise floor, SNR.
* :mod:`repro.phy.raytracing` — 2D image-method propagation in rooms,
  up to second-order reflections.
* :mod:`repro.phy.mcs` — the 802.11ad single-carrier MCS table and SNR
  driven rate selection.
* :mod:`repro.phy.signal` — synthesis of the amplitude-envelope traces
  an undersampling oscilloscope records, which the analysis pipeline in
  :mod:`repro.core` consumes.
"""

from repro.phy.antenna import (
    AntennaPattern,
    HornAntenna,
    IrregularPlanarArray,
    PhasedArray,
    UniformLinearArray,
    UniformRectangularArray,
)
from repro.phy.codebook import Codebook, CodebookEntry
from repro.phy.channel import LinkBudget, SIXTY_GHZ, friis_path_loss_db, oxygen_absorption_db
from repro.phy.mcs import MCS, MCS_TABLE, select_mcs
from repro.phy.blockage import BlockageEvent, Blocker, crossing_blocker
from repro.phy.raytracing import PropagationPath, RayTracer

__all__ = [
    "AntennaPattern",
    "BlockageEvent",
    "Blocker",
    "crossing_blocker",
    "Codebook",
    "CodebookEntry",
    "HornAntenna",
    "IrregularPlanarArray",
    "LinkBudget",
    "MCS",
    "MCS_TABLE",
    "PhasedArray",
    "PropagationPath",
    "RayTracer",
    "SIXTY_GHZ",
    "UniformLinearArray",
    "UniformRectangularArray",
    "friis_path_loss_db",
    "oxygen_absorption_db",
    "select_mcs",
]
